//! Hot-path dispatch cost: generic `NullTiming` vs the `Arc<dyn Timing>`
//! adapter.
//!
//! The pool is generic over its cost model, so the uninstrumented
//! configuration monomorphizes to bare lock/steal code; the same code built
//! over [`DynTiming`](cpool::DynTiming) pays an Arc deref plus a virtual
//! call per charge. This bench measures both on the two paths that matter:
//! the uncontended local add/remove pair and the single-element steal.
//! `BENCH_hotpath.json` (repo root) pins the same comparison from the
//! `hotpath` bench binary; the measured loops are shared through
//! [`bench::hotpath`] so the two stay in sync.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use bench::hotpath::{
    add_remove_op, batch_roundtrip_op, block_pool_with, bursty_op, magazine_pool_with,
    per_element_roundtrip_op, pool_with, steal_op, AsyncHandoff, Handoff, BATCH_SIZES,
    HANDOFF_SETTLE, MAGAZINE_DEPTHS,
};
use cpool::{DynTiming, NullTiming, WaitStrategy};

fn benches(c: &mut Criterion) {
    let pool = pool_with(1, NullTiming::new());
    let mut op = add_remove_op(&pool);
    c.bench_function("hotpath/add_remove/generic", |b| b.iter(&mut op));

    let adapter: DynTiming = Arc::new(NullTiming::new());
    let pool = pool_with(1, adapter);
    let mut op = add_remove_op(&pool);
    c.bench_function("hotpath/add_remove/dyn", |b| b.iter(&mut op));

    let pool = pool_with(2, NullTiming::new());
    let mut op = steal_op(&pool);
    c.bench_function("hotpath/steal/generic", |b| b.iter(&mut op));

    let adapter: DynTiming = Arc::new(NullTiming::new());
    let pool = pool_with(2, adapter);
    let mut op = steal_op(&pool);
    c.bench_function("hotpath/steal/dyn", |b| b.iter(&mut op));

    // The block-segment twin of the generic steal: the batch-typed
    // transfer layer hands the element over in a recycled block + shell.
    let pool = block_pool_with(2, NullTiming::new());
    let mut op = steal_op(&pool);
    c.bench_function("hotpath/steal_block/generic", |b| b.iter(&mut op));

    // Producer→blocked-consumer wakeup latency: the settle sleep puts the
    // consumer into its steady idle state (backoff cap / parked) before
    // each measured add. NOTE: criterion measures the whole round here —
    // settle included — so compare the park/block pair against each other,
    // not against the committed JSON medians (whose rounds exclude the
    // settle).
    for (name, wait) in [("park", WaitStrategy::Park), ("block", WaitStrategy::Block)] {
        let mut handoff = Handoff::new(wait);
        c.bench_function(format!("hotpath/handoff/{name}"), |b| {
            b.iter(|| handoff.round(HANDOFF_SETTLE))
        });
    }

    // The waker-based consumer on the same rig: vs `handoff/block`, this
    // prices the waker round trip (same notifier, same steal).
    let mut handoff = AsyncHandoff::new();
    c.bench_function("hotpath/handoff/async", |b| b.iter(|| handoff.round(HANDOFF_SETTLE)));
    drop(handoff);

    // Handle-local magazine caches: the `add_remove/generic` pair served
    // entirely from the handle's two-magazine cache (zero shared RMWs in
    // the steady state), swept over magazine depths.
    for depth in MAGAZINE_DEPTHS {
        let pool = magazine_pool_with(1, depth, NullTiming::new());
        let mut op = add_remove_op(&pool);
        c.bench_function(format!("hotpath/magazine_add_remove/{depth}"), |b| b.iter(&mut op));
    }

    // Bursty churn: alternating add-heavy/remove-heavy bursts force the
    // depot exchange path; the plain-pool twin is the baseline.
    let pool = pool_with(1, NullTiming::new());
    let mut op = bursty_op(&pool);
    c.bench_function("hotpath/bursty/plain", |b| b.iter(&mut op));
    let pool = magazine_pool_with(1, 32, NullTiming::new());
    let mut op = bursty_op(&pool);
    c.bench_function("hotpath/bursty/magazine32", |b| b.iter(&mut op));

    // Batched vs per-element element traffic; each iteration moves `batch`
    // elements, so compare per-size pairs (the bin twin normalizes to
    // ns/element for the committed JSON).
    for batch in BATCH_SIZES {
        let pool = pool_with(1, NullTiming::new());
        let mut op = batch_roundtrip_op(&pool, batch);
        c.bench_function(format!("hotpath/batch_add_remove/batched/{batch}"), |b| b.iter(&mut op));

        let pool = pool_with(1, NullTiming::new());
        let mut op = per_element_roundtrip_op(&pool, batch);
        c.bench_function(format!("hotpath/batch_add_remove/per_element/{batch}"), |b| {
            b.iter(&mut op)
        });
    }
}

criterion_group! {
    name = hotpath;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(hotpath);
