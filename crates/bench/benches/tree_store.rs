//! Ablation: locked vs. atomic round counters in the tree search.
//!
//! The paper locks every tree node ("the round counters ... must be
//! accessed with locks"); `NodeStoreKind::Atomic` replaces each visit's
//! lock round-trip with two acquire loads and one `fetch_max`. This bench
//! quantifies the difference on the pure search path (uncontended) — the
//! contended difference shows up in the `contention` bench.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use cpool::prelude::*;
use cpool::search::{ProbeOutcome, SearchEnv, SearchPolicy, TreeSearch};
use cpool::segment::steal_count;

struct CountsEnv {
    counts: Vec<usize>,
    me: SegIdx,
}

impl SearchEnv for CountsEnv {
    fn segments(&self) -> usize {
        self.counts.len()
    }

    fn my_segment(&self) -> SegIdx {
        self.me
    }

    fn try_steal(&mut self, victim: SegIdx) -> ProbeOutcome {
        let take = steal_count(self.counts[victim.index()]);
        if take == 0 {
            ProbeOutcome::Empty
        } else {
            self.counts[victim.index()] -= take;
            self.counts[self.me.index()] += take - 1;
            ProbeOutcome::Stolen { stolen: take }
        }
    }

    fn charge_tree_node(&mut self, _node: usize) {}

    fn should_abort(&mut self) -> bool {
        false
    }
}

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_store/full_search");
    for &n in &[16usize, 64, 256] {
        for store in [NodeStoreKind::Locked, NodeStoreKind::Atomic] {
            group.bench_with_input(
                BenchmarkId::new(format!("{store:?}").to_lowercase(), n),
                &n,
                |b, &n| {
                    let policy = TreeSearch::with_store(n, store);
                    b.iter_batched(
                        || {
                            let mut counts = vec![0usize; n];
                            counts[n - 1] = 64;
                            (
                                policy.init_state(SegIdx::new(0), n, 7),
                                CountsEnv { counts, me: SegIdx::new(0) },
                            )
                        },
                        |(mut state, mut env)| {
                            std::hint::black_box(policy.search(&mut state, &mut env))
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = tree_store;
    // Trimmed sampling: these are comparative microbenchmarks, not
    // absolute-latency measurements.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_stores
}
criterion_main!(tree_store);
