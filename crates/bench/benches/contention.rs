//! Microbenchmark: whole-pool throughput under thread contention.
//!
//! Runs a fixed combined operation budget (the paper's trial shape) on real
//! threads at raw machine speed and reports elapsed time per budget — i.e.
//! contended throughput of the full add/remove/steal machinery for each
//! search policy, plus the locked/atomic segment ablation. A second group
//! pits the hand-rolled lock-free primitives against the retired mutex-shim
//! design on the same multi-threaded push+pop kernel (shared with the
//! `contention` binary through [`bench::contention`], so these numbers and
//! the committed `BENCH_contention.json` measure identical code).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::contention::{bag_round, steal_churn_round, Bag, MutexQueue};
use cpool::prelude::*;
use cpool::segment::{AtomicCounter, LockedCounter, Segment};
use cpool::transfer::FreeList;
use crossbeam_queue::{ArrayQueue, SegQueue, Stack};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::OpBudget;

const THREADS: usize = 4;
const OPS: u64 = 20_000;

fn run_budget<S: Segment<Item = ()>>(kind: PolicyKind) {
    let pool: Pool<S, DynPolicy> =
        PoolBuilder::new(THREADS).seed(9).node_store(NodeStoreKind::Locked).build_policy(kind);
    pool.fill_evenly(20 * THREADS);
    let budget = Arc::new(OpBudget::new(OPS));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mut handle = pool.register();
            let budget = Arc::clone(&budget);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64);
                while budget.take() {
                    // Sparse mix (40% adds): the steal-heavy regime where
                    // policies differ.
                    if rng.gen_bool(0.4) {
                        handle.add(());
                    } else {
                        let _ = handle.try_remove();
                    }
                }
            });
        }
    });
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention/sparse_mix_4_threads");
    group.throughput(Throughput::Elements(OPS));
    group.sample_size(10);
    for kind in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("locked_segments", kind.to_string()),
            &kind,
            |b, &kind| b.iter(|| run_budget::<LockedCounter>(kind)),
        );
        group.bench_with_input(
            BenchmarkId::new("atomic_segments", kind.to_string()),
            &kind,
            |b, &kind| b.iter(|| run_budget::<AtomicCounter>(kind)),
        );
    }
    group.finish();
}

/// The primitive matrix: `THREADS` real threads hammering one shared
/// container with push+pop pairs. `mutex_shim` is the before row.
fn bench_primitives(c: &mut Criterion) {
    const PAIRS: u64 = 20_000;
    let mut group = c.benchmark_group(format!("contention/primitives_{THREADS}_threads"));
    group.throughput(Throughput::Elements(PAIRS));
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter(MutexQueue::NAME), |b| {
        b.iter(|| bag_round::<MutexQueue>(THREADS, PAIRS))
    });
    group.bench_function(BenchmarkId::from_parameter(<FreeList<u64> as Bag>::NAME), |b| {
        b.iter(|| bag_round::<FreeList<u64>>(THREADS, PAIRS))
    });
    group.bench_function(BenchmarkId::from_parameter(<Stack<u64> as Bag>::NAME), |b| {
        b.iter(|| bag_round::<Stack<u64>>(THREADS, PAIRS))
    });
    group.bench_function(BenchmarkId::from_parameter(<SegQueue<u64> as Bag>::NAME), |b| {
        b.iter(|| bag_round::<SegQueue<u64>>(THREADS, PAIRS))
    });
    group.bench_function(BenchmarkId::from_parameter(<ArrayQueue<u64> as Bag>::NAME), |b| {
        b.iter(|| bag_round::<ArrayQueue<u64>>(THREADS, PAIRS))
    });
    group.finish();
}

/// `steal_half` under churn: a thief runs the two-phase transfer against
/// one segment while a producer churns add/remove traffic on the same
/// segment — one row per element-segment representation (shared with the
/// `contention` binary's `churn/*` rows through
/// [`bench::contention::steal_churn_round`]).
fn bench_steal_churn(c: &mut Criterion) {
    const CHURN_OPS: u64 = 20_000;
    let mut group = c.benchmark_group("contention/steal_half_under_churn");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("vec"), |b| {
        b.iter(|| steal_churn_round::<VecSegment<u64>>(CHURN_OPS))
    });
    group.bench_function(BenchmarkId::from_parameter("block"), |b| {
        b.iter(|| steal_churn_round::<BlockSegment<u64>>(CHURN_OPS))
    });
    group.bench_function(BenchmarkId::from_parameter("lf"), |b| {
        b.iter(|| steal_churn_round::<LfSegment<u64>>(CHURN_OPS))
    });
    group.bench_function(BenchmarkId::from_parameter("lane4"), |b| {
        b.iter(|| steal_churn_round::<LaneSegment<VecSegment<u64>, 4>>(CHURN_OPS))
    });
    group.finish();
}

criterion_group!(contention, bench_contention, bench_primitives, bench_steal_churn);
criterion_main!(contention);
