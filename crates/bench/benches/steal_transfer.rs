//! Microbenchmark: the steal→refill **transfer** itself, occupancy ×
//! block size.
//!
//! [`bench::hotpath::transfer_op`] isolates the two phases every
//! successful probe pays — drain ⌈n/2⌉ from the victim, deposit into the
//! thief — from the search around them. Since the transfer layer became
//! batch-typed, a block segment moves whole block *handles* (O(n/B)
//! pointer moves, shell recycled through the pool's free list) where the
//! vec segment moves every element; this bench pins that comparison across
//! occupancies and block sizes. Throughput is per element moved, so all
//! cells compare directly; `bin/hotpath.rs --quick` smoke-runs the same
//! kernels in CI and the full binary records them in `BENCH_hotpath.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::hotpath::{
    block_pool_with, filled_block_segment, filled_vec_segment, pool_with, steal_reserve_op,
    transfer_elements, transfer_op, RESERVE_SIZES, TRANSFER_BLOCK_SIZES, TRANSFER_OCCUPANCIES,
};
use cpool::NullTiming;

fn bench_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("steal_transfer");
    for &occ in &TRANSFER_OCCUPANCIES {
        group.throughput(Throughput::Elements(transfer_elements(occ) as u64));

        group.bench_with_input(BenchmarkId::new("vec", occ), &occ, |b, &occ| {
            let seg = filled_vec_segment(occ);
            let mut op = transfer_op(&seg);
            b.iter(&mut op);
        });

        for &bs in &TRANSFER_BLOCK_SIZES {
            group.bench_with_input(
                BenchmarkId::new(format!("block/{bs}"), occ),
                &occ,
                |b, &occ| {
                    let seg = filled_block_segment(occ, bs);
                    let mut op = transfer_op(&seg);
                    b.iter(&mut op);
                },
            );
        }
    }
    group.finish();

    // The pool-level twin: reserve-building steals (one search + two-phase
    // transfer moves half a reserve and banks it), per element through the
    // pool, vec vs block transfer currency.
    let mut group = c.benchmark_group("steal_reserve");
    for &reserve in &RESERVE_SIZES {
        group.throughput(Throughput::Elements(reserve as u64));
        group.bench_with_input(BenchmarkId::new("vec", reserve), &reserve, |b, &reserve| {
            let pool = pool_with(2, NullTiming::new());
            let mut op = steal_reserve_op(&pool, reserve);
            b.iter(&mut op);
        });
        group.bench_with_input(BenchmarkId::new("block", reserve), &reserve, |b, &reserve| {
            let pool = block_pool_with(2, NullTiming::new());
            let mut op = steal_reserve_op(&pool, reserve);
            b.iter(&mut op);
        });
    }
    group.finish();
}

criterion_group! {
    name = steal_transfer;
    // Trimmed sampling: these are comparative microbenchmarks, not
    // absolute-latency measurements.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_transfers
}
criterion_main!(steal_transfer);
