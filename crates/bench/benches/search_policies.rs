//! Microbenchmark: one cold search per policy on crafted occupancy.
//!
//! Drives each search policy through a minimal in-memory [`SearchEnv`] so
//! nothing but the search logic itself is measured. The scenario is the
//! paper's worst case for the linear search: the only stocked victim is
//! ring-farthest from the searcher, so linear crawls n-1 probes, the tree
//! jumps in O(log n), and random probes ~n times in expectation.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use cpool::prelude::*;
use cpool::search::{ProbeOutcome, SearchEnv, SearchPolicy};
use cpool::segment::steal_count;

/// A heap-allocated occupancy vector posing as a pool.
struct CountsEnv {
    counts: Vec<usize>,
    me: SegIdx,
    probes: u64,
}

impl SearchEnv for CountsEnv {
    fn segments(&self) -> usize {
        self.counts.len()
    }

    fn my_segment(&self) -> SegIdx {
        self.me
    }

    fn try_steal(&mut self, victim: SegIdx) -> ProbeOutcome {
        self.probes += 1;
        let n = self.counts[victim.index()];
        let take = steal_count(n);
        if take == 0 {
            ProbeOutcome::Empty
        } else {
            self.counts[victim.index()] -= take;
            self.counts[self.me.index()] += take - 1;
            ProbeOutcome::Stolen { stolen: take }
        }
    }

    fn charge_tree_node(&mut self, _node: usize) {}

    fn should_abort(&mut self) -> bool {
        false
    }
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search/cold_far_victim");
    for &n in &[4usize, 16, 64, 256] {
        for kind in PolicyKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.to_string(), n), &n, |b, &n| {
                let policy = kind.build(n, NodeStoreKind::Locked);
                b.iter_batched(
                    || {
                        let mut counts = vec![0usize; n];
                        counts[n - 1] = 64; // ring-farthest victim from segment 0
                        let state = policy.init_state(SegIdx::new(0), n, 7);
                        (state, CountsEnv { counts, me: SegIdx::new(0), probes: 0 })
                    },
                    |(mut state, mut env)| {
                        let outcome = policy.search(&mut state, &mut env);
                        std::hint::black_box((outcome, env.probes))
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = search_policies;
    // Trimmed sampling: these are comparative microbenchmarks, not
    // absolute-latency measurements.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_search
}
criterion_main!(search_policies);
