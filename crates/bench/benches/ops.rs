//! Microbenchmark: raw add/remove latency per segment representation.
//!
//! The paper's undelayed Butterfly baseline was ~70 µs per add and ~110 µs
//! per remove; on modern hardware the same operations are nanoseconds.
//! This bench records our substrate's baseline so EXPERIMENTS.md can state
//! the scaling factor explicitly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cpool::segment::{AtomicCounter, BlockSegment, LockedCounter, Segment, VecSegment};
use cpool::transfer::TransferBatch;

fn bench_counting<S: Segment<Item = ()>>(c: &mut Criterion, name: &str) {
    let mut group = c.benchmark_group(format!("ops/{name}"));
    group.bench_function("add", |b| {
        let seg = S::new();
        b.iter(|| seg.add(()));
    });
    group.bench_function("remove", |b| {
        let seg = S::new();
        b.iter_batched(
            || seg.add_bulk(S::Batch::from_vec(vec![(); 1024])),
            |()| {
                for _ in 0..1024 {
                    std::hint::black_box(seg.try_remove());
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_element<S: Segment<Item = u64>>(c: &mut Criterion, name: &str) {
    let mut group = c.benchmark_group(format!("ops/{name}"));
    group.bench_function("add", |b| {
        let seg = S::new();
        let mut i = 0u64;
        b.iter(|| {
            seg.add(i);
            i += 1;
        });
    });
    group.bench_function("add_remove_pair", |b| {
        let seg = S::new();
        b.iter(|| {
            seg.add(7);
            std::hint::black_box(seg.try_remove());
        });
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_counting::<LockedCounter>(c, "locked_counter");
    bench_counting::<AtomicCounter>(c, "atomic_counter");
    bench_element::<VecSegment<u64>>(c, "vec_segment");
    bench_element::<BlockSegment<u64>>(c, "block_segment");
}

criterion_group! {
    name = ops;
    // Trimmed sampling: these are comparative microbenchmarks, not
    // absolute-latency measurements.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(ops);
