//! Microbenchmark: the cost of `steal_half` as a function of victim size.
//!
//! For counting segments a steal is O(1) regardless of size; for element
//! segments the block representation should beat the flat deque at large
//! sizes (it moves whole blocks instead of draining elements).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use cpool::segment::{BlockSegment, LockedCounter, Segment, VecSegment};
use cpool::transfer::CountBatch;

fn bench_steals(c: &mut Criterion) {
    let mut group = c.benchmark_group("steal_half");
    for &size in &[2usize, 16, 128, 1024, 8192] {
        group.throughput(Throughput::Elements(size as u64));

        group.bench_with_input(BenchmarkId::new("counting", size), &size, |b, &size| {
            let seg = LockedCounter::new();
            b.iter_batched(
                || seg.add_bulk(CountBatch::of(size)),
                |()| std::hint::black_box(seg.steal_half()),
                BatchSize::SmallInput,
            );
        });

        group.bench_with_input(BenchmarkId::new("vec", size), &size, |b, &size| {
            let seg: VecSegment<u64> = VecSegment::new();
            b.iter_batched(
                || seg.add_bulk((0..size as u64).collect()),
                |()| std::hint::black_box(seg.steal_half()),
                BatchSize::SmallInput,
            );
        });

        group.bench_with_input(BenchmarkId::new("block", size), &size, |b, &size| {
            let seg: BlockSegment<u64> = BlockSegment::with_block_size(64);
            b.iter_batched(
                // add_bulk_vec chunks at the segment's own block size;
                // from_vec would silently rebuild 16-element blocks.
                || seg.add_bulk_vec((0..size as u64).collect()),
                |()| std::hint::black_box(seg.steal_half()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = steal;
    // Trimmed sampling: these are comparative microbenchmarks, not
    // absolute-latency measurements.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_steals
}
criterion_main!(steal);
