//! # Benchmark harness
//!
//! One binary per figure/table of Kotz & Ellis (1989) plus criterion
//! microbenchmarks. The binaries are thin CLI wrappers over
//! [`harness::figures`]; shared plumbing (artifact writing, scale parsing)
//! lives here.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig2` | Figure 2 (op time vs job mix) |
//! | `fig3`–`fig6` | Figures 3–6 (segment-size traces) |
//! | `fig7` | Figure 7, errata applied (elements stolen per steal) |
//! | `tab_compare` | §4.1/§4.3 algorithm comparison table |
//! | `delay_sweep` | §4.3 remote-delay sweep |
//! | `ttt_speedup` | §4.4 application speedups |
//! | `run_all` | everything above, writing `target/experiments/` |
//!
//! Common flags: `--procs N --ops N --trials N --seed N` (defaults are the
//! paper's 16/5000/10), plus `--quick` for a fast smoke-scale run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use harness::cli::Args;
use harness::csv::{experiments_dir, write_csv};
use harness::figures::Scale;

/// Shared measurement kernels for the hot-path dispatch comparison.
///
/// The criterion bench (`benches/hotpath.rs`) and the JSON-emitting binary
/// (`src/bin/hotpath.rs`) must measure literally the same code, or the
/// committed `BENCH_hotpath.json` baseline and the criterion numbers drift
/// apart — so both build their loops from these functions.
pub mod hotpath {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    use cpool::future::exec::{block_on, Fleet};
    use cpool::{
        BlockSegment, Handle, LaneSegment, LfSegment, LinearSearch, Pool, PoolBuilder, PoolOps,
        RemoveError, Segment, Timing, VecSegment, WaitStrategy,
    };

    /// The pool configuration both hot-path benchmarks measure.
    pub type HotPool<T> = Pool<VecSegment<u64>, LinearSearch, T>;

    /// The block-organized twin: same protocol, transfers move whole block
    /// handles through the batch-typed layer instead of flat vectors.
    pub type BlockHotPool<T> = Pool<BlockSegment<u64>, LinearSearch, T>;

    /// Batch sizes the batched-vs-per-element comparison sweeps.
    pub const BATCH_SIZES: [usize; 3] = [1, 8, 64];

    /// Occupancies the steal-transfer sweep measures (elements resident in
    /// the victim when the steal fires; the transfer moves ⌈n/2⌉).
    pub const TRANSFER_OCCUPANCIES: [usize; 3] = [64, 1024, 8192];

    /// Block sizes the steal-transfer sweep crosses with each occupancy.
    pub const TRANSFER_BLOCK_SIZES: [usize; 3] = [16, 64, 256];

    /// Builds the measured pool over the given cost model.
    pub fn pool_with<T: Timing>(segments: usize, timing: T) -> HotPool<T> {
        PoolBuilder::new(segments).seed(1).timing(timing).build()
    }

    /// Builds the block-segment twin of [`pool_with`].
    pub fn block_pool_with<T: Timing>(segments: usize, timing: T) -> BlockHotPool<T> {
        PoolBuilder::new(segments).seed(1).timing(timing).build()
    }

    /// Builds the fully lock-free twin of [`pool_with`]: same protocol,
    /// segments answer from CAS-reserved occupancy over a lock-free queue.
    pub fn lf_pool_with<T: Timing>(
        segments: usize,
        timing: T,
    ) -> Pool<LfSegment<u64>, LinearSearch, T> {
        PoolBuilder::new(segments).seed(1).timing(timing).build()
    }

    /// Builds the sharded-lane twin of [`pool_with`] (`K = 4` mutex lanes
    /// per segment, affinity-routed).
    pub fn lane_pool_with<T: Timing>(
        segments: usize,
        timing: T,
    ) -> Pool<LaneSegment<VecSegment<u64>, 4>, LinearSearch, T> {
        PoolBuilder::new(segments).seed(1).timing(timing).build()
    }

    /// Magazine depths the handle-cache sweep measures (elements per
    /// magazine; each handle holds two).
    pub const MAGAZINE_DEPTHS: [usize; 3] = [8, 32, 128];

    /// Builds the magazine-enabled twin of [`pool_with`]: identical pool,
    /// but every handle carries a two-magazine cache of `depth` elements
    /// per magazine, so the steady-state add→remove pair never touches the
    /// shared segment (see `cpool::magazine`).
    pub fn magazine_pool_with<T: Timing>(segments: usize, depth: usize, timing: T) -> HotPool<T> {
        PoolBuilder::new(segments).seed(1).handle_cache(depth).timing(timing).build()
    }

    /// Operations per burst in the bursty churn kernel.
    pub const BURSTY_BURST_OPS: u64 = 256;

    /// Alternating add-heavy/remove-heavy bursts from one handle — the
    /// magazine-churn pattern: an add burst fills magazines and pushes
    /// full ones to the depot, the following remove burst drains and raids
    /// them back, so the measured cost includes the exchange machinery,
    /// not just the pure-hit steady state. Runs identically on a plain
    /// pool (the baseline) and a magazine pool. ns per operation; removes
    /// that find the pool empty count (their abort cost is part of the
    /// pattern's real price).
    pub fn bursty_op<S, T>(pool: &Pool<S, LinearSearch, T>) -> impl FnMut() + '_
    where
        S: Segment<Item = u64>,
        T: Timing,
    {
        use workload::{BurstyStream, Op, OpStream};
        let mut handle = pool.register();
        let mut stream = BurstyStream::nine_to_one(BURSTY_BURST_OPS, 0x1CD5);
        move || match stream.next_op() {
            Op::Add => handle.add(7),
            Op::Remove => {
                std::hint::black_box(handle.try_remove().ok());
            }
        }
    }

    /// One uncontended local add immediately removed: the fast path.
    /// Build the pool with 1 segment.
    pub fn add_remove_op<S, T>(pool: &Pool<S, LinearSearch, T>) -> impl FnMut() + '_
    where
        S: Segment<Item = u64>,
        T: Timing,
    {
        let mut handle = pool.register();
        move || {
            handle.add(7);
            std::hint::black_box(handle.try_remove().expect("just added"));
        }
    }

    /// A remove that must steal: the victim holds exactly one element, so
    /// every iteration runs the full search + two-phase transfer with no
    /// refill. Build the pool with 2 segments.
    pub fn steal_op<S, T>(pool: &Pool<S, LinearSearch, T>) -> impl FnMut() + '_
    where
        S: Segment<Item = u64>,
        T: Timing,
    {
        let mut thief = pool.register(); // home segment 0
        let mut victim = pool.register(); // home segment 1
        move || {
            victim.add(7);
            std::hint::black_box(thief.try_remove().expect("victim has an element"));
        }
    }

    /// Reserve sizes the reserve-building steal cycle sweeps.
    pub const RESERVE_SIZES: [usize; 3] = [16, 64, 512];

    /// A reserve-building steal cycle — the paper's actual protocol shape,
    /// where a steal moves half a segment and banks a reserve — amortized
    /// per element. Each iteration: the victim deposits `reserve` elements
    /// in one batch; the thief's batched remove runs **one** search +
    /// two-phase steal (⌈reserve/2⌉ elements through the typed transfer
    /// layer: one kept, the rest refilled into the thief's segment) and
    /// serves the remainder of its batch from that refilled reserve; the
    /// victim then drains its own residue. `reserve` elements flow through
    /// the pool per iteration — normalize ns by that count. Build the pool
    /// with 2 segments.
    pub fn steal_reserve_op<S, T>(
        pool: &Pool<S, LinearSearch, T>,
        reserve: usize,
    ) -> impl FnMut() + '_
    where
        S: Segment<Item = u64>,
        T: Timing,
    {
        let mut thief = pool.register(); // home segment 0
        let mut victim = pool.register(); // home segment 1
        move || {
            victim.add_batch(0..reserve as u64);
            let got = thief.try_remove_batch(reserve / 2);
            assert_eq!(got.len(), reserve / 2, "one steal serves the whole batch");
            for item in got {
                std::hint::black_box(item);
            }
            for item in victim.try_remove_batch(reserve / 2) {
                std::hint::black_box(item);
            }
        }
    }

    /// One steal→refill transfer hop at a pinned occupancy: `steal_half`
    /// drains ⌈occupancy/2⌉ elements into the segment family's batch
    /// currency and `add_bulk` deposits them straight back, restoring the
    /// occupancy exactly — the two phases every successful probe pays,
    /// isolated from the search. For a block segment this moves block
    /// handles (and recycles the batch shell); for a vec segment it moves
    /// the elements through a recycled vector.
    ///
    /// Normalize by [`transfer_elements`] to report ns per element moved.
    pub fn transfer_op<S: Segment<Item = u64>>(seg: &S) -> impl FnMut() + '_ {
        move || {
            let batch = seg.steal_half();
            seg.add_bulk(batch);
        }
    }

    /// Elements one [`transfer_op`] iteration moves at `occupancy`.
    pub fn transfer_elements(occupancy: usize) -> usize {
        cpool::segment::steal_count(occupancy)
    }

    /// A block segment pre-filled to `occupancy` with the given block size.
    pub fn filled_block_segment(occupancy: usize, block_size: usize) -> BlockSegment<u64> {
        let seg = BlockSegment::with_block_size(block_size);
        for i in 0..occupancy as u64 {
            seg.add(i);
        }
        seg
    }

    /// A vec segment pre-filled to `occupancy` (the flat-transfer baseline).
    pub fn filled_vec_segment(occupancy: usize) -> VecSegment<u64> {
        let seg = VecSegment::new();
        for i in 0..occupancy as u64 {
            seg.add(i);
        }
        seg
    }

    /// `batch` elements added with one `add_batch` and removed with one
    /// `try_remove_batch`: one segment lock (and one per-batch timer/probe
    /// charge) per direction. Build the pool with 1 segment.
    pub fn batch_roundtrip_op<T: Timing>(pool: &HotPool<T>, batch: usize) -> impl FnMut() + '_ {
        let mut handle = pool.register();
        move || {
            handle.add_batch(0..batch as u64);
            let got = handle.try_remove_batch(batch);
            assert_eq!(got.len(), batch, "local batch must be served in full");
            std::hint::black_box(got.into_vec());
        }
    }

    /// The same element traffic as [`batch_roundtrip_op`], moved one
    /// element at a time — the loop every batch-less caller writes. Build
    /// the pool with 1 segment.
    pub fn per_element_roundtrip_op<T: Timing>(
        pool: &HotPool<T>,
        batch: usize,
    ) -> impl FnMut() + '_ {
        let mut handle = pool.register();
        move || {
            for i in 0..batch as u64 {
                handle.add(i);
            }
            for _ in 0..batch {
                std::hint::black_box(handle.try_remove().expect("just added"));
            }
        }
    }

    /// How long an idle consumer is given to settle into its wait before
    /// the producer adds: long enough for `Park`'s exponential backoff to
    /// reach its cap and for `Block` to actually park the thread, so each
    /// measured round starts from the strategy's steady idle state.
    pub const HANDOFF_SETTLE: Duration = Duration::from_micros(400);

    /// A producer→blocked-consumer handoff rig: one consumer thread waits
    /// in a blocking `remove(wait)` on an otherwise-empty two-segment pool
    /// while the producer (the caller) stays registered but idle, so the
    /// wait never turns into a terminal abort.
    ///
    /// [`round`](Self::round) measures the latency from the producer's
    /// `add` to the consumer observing the element — the number the
    /// `Park`-vs-[`Block`](WaitStrategy::Block) comparison is about:
    /// polling backoff discovers the element only when its current sleep
    /// expires, while the notifier wakes the parked consumer on the add
    /// edge.
    pub struct Handoff {
        pool: HotPool<cpool::NullTiming>,
        producer: Handle<VecSegment<u64>, LinearSearch>,
        received: Arc<AtomicU64>,
        sent: u64,
        consumer: Option<JoinHandle<()>>,
    }

    impl Handoff {
        /// Spawns the consumer, waiting under `wait`.
        pub fn new(wait: WaitStrategy) -> Self {
            let pool = pool_with(2, cpool::NullTiming::new());
            let producer = pool.register();
            let mut consumer_handle = pool.register();
            let received = Arc::new(AtomicU64::new(0));
            let received_consumer = Arc::clone(&received);
            let consumer = std::thread::spawn(move || loop {
                match consumer_handle.remove_with_attempts(wait, usize::MAX) {
                    Ok(v) => {
                        std::hint::black_box(v);
                        received_consumer.fetch_add(1, Ordering::Release);
                    }
                    Err(RemoveError::Closed) => break,
                    Err(_) => {}
                }
            });
            Handoff { pool, producer, received, sent: 0, consumer: Some(consumer) }
        }

        /// One measured handoff: settle, add, and time until the consumer
        /// acknowledges receipt. The settle sleep is excluded from the
        /// returned duration.
        pub fn round(&mut self, settle: Duration) -> Duration {
            std::thread::sleep(settle);
            self.sent += 1;
            let t0 = Instant::now();
            self.producer.add(self.sent);
            while self.received.load(Ordering::Acquire) < self.sent {
                std::hint::spin_loop();
            }
            t0.elapsed()
        }

        /// Runs `rounds` handoffs and returns the median latency in
        /// nanoseconds (the median filters scheduler outliers; individual
        /// park/unpark round trips are noisy).
        pub fn median_ns(&mut self, rounds: usize) -> f64 {
            let mut samples: Vec<u64> =
                (0..rounds).map(|_| self.round(HANDOFF_SETTLE).as_nanos() as u64).collect();
            samples.sort_unstable();
            samples[samples.len() / 2] as f64
        }
    }

    impl Drop for Handoff {
        fn drop(&mut self) {
            // Close-on-drop is the shutdown path under test everywhere
            // else: the consumer drains out with `Closed` and joins.
            self.pool.close();
            if let Some(consumer) = self.consumer.take() {
                let _ = consumer.join();
            }
        }
    }

    /// The async twin of [`Handoff`]: the consumer thread awaits
    /// `remove_async` futures (`block_on` parks it between polls), so the
    /// measured latency is add edge → waker delivery → re-poll → steal,
    /// against `Block`'s add edge → unpark → retry. The delta between the
    /// `handoff/block` and `handoff/async` rows is therefore the price of
    /// the waker round trip itself — same notifier, same steal.
    pub struct AsyncHandoff {
        pool: HotPool<cpool::NullTiming>,
        producer: Handle<VecSegment<u64>, LinearSearch>,
        received: Arc<AtomicU64>,
        sent: u64,
        consumer: Option<JoinHandle<()>>,
    }

    impl AsyncHandoff {
        /// Spawns the awaiting consumer.
        pub fn new() -> Self {
            let pool = pool_with(2, cpool::NullTiming::new());
            let producer = pool.register();
            let consumer_handle = pool.register();
            let received = Arc::new(AtomicU64::new(0));
            let received_consumer = Arc::clone(&received);
            let consumer = std::thread::spawn(move || loop {
                match block_on(consumer_handle.remove_async()) {
                    Ok(v) => {
                        std::hint::black_box(v);
                        received_consumer.fetch_add(1, Ordering::Release);
                    }
                    Err(RemoveError::Closed) => break,
                    Err(_) => {}
                }
            });
            AsyncHandoff { pool, producer, received, sent: 0, consumer: Some(consumer) }
        }

        /// One measured handoff; see [`Handoff::round`].
        pub fn round(&mut self, settle: Duration) -> Duration {
            std::thread::sleep(settle);
            self.sent += 1;
            let t0 = Instant::now();
            self.producer.add(self.sent);
            while self.received.load(Ordering::Acquire) < self.sent {
                std::hint::spin_loop();
            }
            t0.elapsed()
        }

        /// Median handoff latency in nanoseconds; see [`Handoff::median_ns`].
        pub fn median_ns(&mut self, rounds: usize) -> f64 {
            let mut samples: Vec<u64> =
                (0..rounds).map(|_| self.round(HANDOFF_SETTLE).as_nanos() as u64).collect();
            samples.sort_unstable();
            samples[samples.len() / 2] as f64
        }
    }

    impl Default for AsyncHandoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Drop for AsyncHandoff {
        fn drop(&mut self) {
            self.pool.close();
            if let Some(consumer) = self.consumer.take() {
                let _ = consumer.join();
            }
        }
    }

    /// Fleet sizes the one-thread-drives-N throughput sweep measures.
    pub const ASYNC_DRIVE_SIZES: [usize; 3] = [64, 1024, 4096];

    /// One-thread-drives-N throughput: spawn `n` `remove_async` futures,
    /// pend them all on the empty pool, feed exactly `n` elements, and
    /// drive the fleet dry from the one driver thread. Returns the median
    /// ns per element over `rounds` — the number that shows how the
    /// single-threaded dispatch loop (wake dedup, ready-queue swap,
    /// re-poll, steal) scales with the count of concurrently pending
    /// futures.
    pub fn async_drive_median_ns(n: usize, rounds: usize) -> f64 {
        let pool = pool_with(2, cpool::NullTiming::new());
        let mut producer = pool.register();
        let frontend = pool.register();
        let mut samples: Vec<u64> = (0..rounds)
            .map(|_| {
                let mut fleet = Fleet::new();
                for _ in 0..n {
                    fleet.spawn(frontend.remove_async());
                }
                let ready = fleet.poll_ready(|_, _| {});
                assert_eq!(ready, 0, "pool is empty: every future pends");
                let t0 = Instant::now();
                for v in 0..n as u64 {
                    producer.add(v);
                }
                fleet.drive(|_, result| {
                    std::hint::black_box(result.expect("fed exactly n elements"));
                });
                (t0.elapsed().as_nanos() / n as u128) as u64
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2] as f64
    }
}

/// Shared measurement kernels for the multi-threaded contention matrix.
///
/// The criterion bench (`benches/contention.rs`) and the JSON-emitting
/// binary (`src/bin/contention.rs`) share these so the committed
/// `BENCH_contention.json` baseline and the criterion numbers measure the
/// same code. Two matrices:
///
/// * **Primitive matrix** — real threads hammering one shared container
///   with push+pop pairs: the retired mutex-shim design
///   ([`MutexQueue`](contention::MutexQueue), a `Mutex<VecDeque>`) against
///   the three hand-rolled lock-free structures in `crossbeam-queue`
///   ([`Stack`](crossbeam_queue::Stack) — the free-list primitive,
///   [`SegQueue`](crossbeam_queue::SegQueue),
///   [`ArrayQueue`](crossbeam_queue::ArrayQueue)).
/// * **Pool matrix** — the whole add/remove/steal machinery, threads ×
///   segments × workload mix × vec/block segment representation.
pub mod contention {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use std::time::Instant;

    use cpool::transfer::FreeList;
    use cpool::{
        BlockSegment, LaneSegment, LfSegment, LinearSearch, Pool, PoolBuilder, Segment,
        TransferBatch, VecSegment,
    };
    use crossbeam_queue::{ArrayQueue, SegQueue, Stack};
    use parking_lot::Mutex;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use workload::OpBudget;

    /// Thread counts both matrices sweep.
    pub const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

    /// Elements pre-loaded per participating thread before the clock
    /// starts, so pops essentially never observe an empty container and
    /// the loop measures push/pop cost, not empty-retry spinning.
    pub const PREFILL_PER_THREAD: usize = 16;

    /// Workload mixes the pool matrix crosses: fraction of operations that
    /// are adds. 40% is the steal-heavy regime where remote traffic
    /// dominates; 60% keeps segments populated so local paths dominate.
    pub const MIXES: [(&str, f64); 2] = [("sparse40", 0.4), ("dense60", 0.6)];

    /// A concurrent multiset of `u64`s — the least common denominator of
    /// the retired mutex shim and its lock-free replacements, so one kernel
    /// measures all four.
    pub trait Bag: Send + Sync {
        /// Row label used in result names.
        const NAME: &'static str;
        /// Creates a bag that can hold at least `capacity` elements.
        fn with_capacity(capacity: usize) -> Self;
        /// Inserts one element.
        fn push(&self, value: u64);
        /// Removes some element, or `None` if empty.
        fn pop(&self) -> Option<u64>;
    }

    /// The "before" row: the design of the retired `crossbeam-queue` shim —
    /// a `parking_lot::Mutex` around a `VecDeque`, every operation through
    /// the lock.
    pub struct MutexQueue(Mutex<VecDeque<u64>>);

    impl Bag for MutexQueue {
        const NAME: &'static str = "mutex_shim";
        fn with_capacity(capacity: usize) -> Self {
            MutexQueue(Mutex::new(VecDeque::with_capacity(capacity)))
        }
        fn push(&self, value: u64) {
            self.0.lock().push_back(value);
        }
        fn pop(&self) -> Option<u64> {
            self.0.lock().pop_front()
        }
    }

    impl Bag for FreeList<u64> {
        const NAME: &'static str = "free_list";
        fn with_capacity(capacity: usize) -> Self {
            // Sized past the kernel's peak occupancy so `put` never drops
            // (a dropped element would starve the paired pop).
            FreeList::new(capacity)
        }
        fn push(&self, value: u64) {
            self.put(value);
        }
        fn pop(&self) -> Option<u64> {
            self.take()
        }
    }

    impl Bag for Stack<u64> {
        const NAME: &'static str = "treiber_stack";
        fn with_capacity(_capacity: usize) -> Self {
            Stack::new()
        }
        fn push(&self, value: u64) {
            Stack::push(self, value);
        }
        fn pop(&self) -> Option<u64> {
            Stack::pop(self)
        }
    }

    impl Bag for SegQueue<u64> {
        const NAME: &'static str = "seg_queue";
        fn with_capacity(_capacity: usize) -> Self {
            SegQueue::new()
        }
        fn push(&self, value: u64) {
            SegQueue::push(self, value);
        }
        fn pop(&self) -> Option<u64> {
            SegQueue::pop(self)
        }
    }

    impl Bag for ArrayQueue<u64> {
        const NAME: &'static str = "array_queue";
        fn with_capacity(capacity: usize) -> Self {
            ArrayQueue::new(capacity)
        }
        fn push(&self, value: u64) {
            // Sized so the kernel never fills the queue; spin defensively
            // rather than silently dropping an element if it ever does.
            let mut value = value;
            while let Err(back) = ArrayQueue::push(self, value) {
                value = back;
                std::thread::yield_now();
            }
        }
        fn pop(&self) -> Option<u64> {
            ArrayQueue::pop(self)
        }
    }

    /// Runs `threads` workers each performing `pairs` push+pop pairs
    /// against one shared bag and returns wall-clock nanoseconds per pair
    /// (per-thread latency: constant under perfect scaling, growing under
    /// contention). Occupancy hovers at the prefill level throughout, so
    /// every pop finds an element.
    ///
    /// Each worker times its own window (start barrier → last pair) and
    /// the slowest worker's clock is the cell — timing from the
    /// coordinating thread would race the workers on an oversubscribed
    /// host, where the coordinator can be scheduled last.
    pub fn bag_round<B: Bag>(threads: usize, pairs: u64) -> f64 {
        let bag = B::with_capacity(PREFILL_PER_THREAD * threads + threads + 8);
        for i in 0..(PREFILL_PER_THREAD * threads) as u64 {
            bag.push(i);
        }
        let start = Barrier::new(threads);
        let slowest_ns = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let (bag, start, slowest_ns) = (&bag, &start, &slowest_ns);
                s.spawn(move || {
                    start.wait();
                    let t0 = Instant::now();
                    for i in 0..pairs {
                        bag.push(t as u64 * pairs + i);
                        while bag.pop().is_none() {
                            // Can only happen transiently; yield rather
                            // than spin so an oversubscribed host lets the
                            // in-flight operation finish.
                            std::thread::yield_now();
                        }
                    }
                    slowest_ns.fetch_max(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        });
        slowest_ns.load(Ordering::Relaxed) as f64 / pairs as f64
    }

    /// Runs a shared budget of `ops` mixed add/remove operations over a
    /// whole pool from `threads` registered processes and returns
    /// wall-clock nanoseconds per operation. `segments < threads` forces
    /// processes to share home segments (maximum lock contention);
    /// `segments == threads` is the paper's per-processor shape.
    pub fn pool_round<S: Segment<Item = u64>>(
        threads: usize,
        segments: usize,
        add_fraction: f64,
        ops: u64,
    ) -> f64 {
        let pool: Pool<S, LinearSearch> = PoolBuilder::new(segments).seed(9).build();
        pool.fill_evenly_with(PREFILL_PER_THREAD * segments, |i| i as u64);
        let budget = OpBudget::new(ops);
        let start = Barrier::new(threads);
        let slowest_ns = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let mut handle = pool.register();
                let (budget, start, slowest_ns) = (&budget, &start, &slowest_ns);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    start.wait();
                    let t0 = Instant::now();
                    while budget.take() {
                        if rng.gen_bool(add_fraction) {
                            handle.add(t as u64);
                        } else {
                            let _ = handle.try_remove();
                        }
                    }
                    // Deregister before reporting: a straggler searching an
                    // empty pool aborts only once every *registered*
                    // process is searching (§3.2), so a worker that kept
                    // its handle while idling here could strand the last
                    // searcher.
                    drop(handle);
                    slowest_ns.fetch_max(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        });
        slowest_ns.load(Ordering::Relaxed) as f64 / ops as f64
    }

    /// The pool matrix's vec-segment cell.
    pub fn pool_round_vec(threads: usize, segments: usize, add_fraction: f64, ops: u64) -> f64 {
        pool_round::<VecSegment<u64>>(threads, segments, add_fraction, ops)
    }

    /// The pool matrix's block-segment cell.
    pub fn pool_round_block(threads: usize, segments: usize, add_fraction: f64, ops: u64) -> f64 {
        pool_round::<BlockSegment<u64>>(threads, segments, add_fraction, ops)
    }

    /// The pool matrix's fully lock-free segment cell.
    pub fn pool_round_lf(threads: usize, segments: usize, add_fraction: f64, ops: u64) -> f64 {
        pool_round::<LfSegment<u64>>(threads, segments, add_fraction, ops)
    }

    /// The pool matrix's sharded-lane cell at the default lane count
    /// (`K = 4` mutex lanes over vec deques).
    pub fn pool_round_lane(threads: usize, segments: usize, add_fraction: f64, ops: u64) -> f64 {
        pool_round::<LaneSegment<VecSegment<u64>, 4>>(threads, segments, add_fraction, ops)
    }

    /// Lane counts the `LaneSegment` sweep measures (`K = 1` is the
    /// degenerate single-lane case — pure adapter overhead over the inner
    /// mutex segment).
    pub const LANE_COUNTS: [usize; 4] = [1, 2, 4, 8];

    /// The lane sweep's cell: [`pool_round`] over
    /// `LaneSegment<VecSegment<u64>, K>` for a runtime-chosen `K`. Lane
    /// counts are const generics, so the sweep dispatches to one
    /// monomorphization per entry in [`LANE_COUNTS`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in [`LANE_COUNTS`].
    pub fn pool_round_lane_k(
        k: usize,
        threads: usize,
        segments: usize,
        add_fraction: f64,
        ops: u64,
    ) -> f64 {
        match k {
            1 => {
                pool_round::<LaneSegment<VecSegment<u64>, 1>>(threads, segments, add_fraction, ops)
            }
            2 => {
                pool_round::<LaneSegment<VecSegment<u64>, 2>>(threads, segments, add_fraction, ops)
            }
            4 => {
                pool_round::<LaneSegment<VecSegment<u64>, 4>>(threads, segments, add_fraction, ops)
            }
            8 => {
                pool_round::<LaneSegment<VecSegment<u64>, 8>>(threads, segments, add_fraction, ops)
            }
            _ => panic!("lane sweep covers K in {LANE_COUNTS:?}, not {k}"),
        }
    }

    /// Elements resident in the victim segment when the churn kernel
    /// starts; the producer's balanced mix keeps occupancy hovering here.
    pub const CHURN_PREFILL: usize = 256;

    /// `steal_half` under churn: a thief repeatedly runs the two-phase
    /// transfer (`steal_half` → `add_bulk` straight back) against **one**
    /// segment while a producer churns balanced `add`/`try_remove` traffic
    /// on the same segment — the direct owner-vs-thief collision every
    /// segment representation resolves differently (the mutex deque
    /// serializes, the lock-free queue interleaves CAS reservations, the
    /// lanes route the two parties to different shards).
    ///
    /// Returns the thief's wall-clock nanoseconds per steal cycle (empty
    /// probes yield and still count: under churn an empty probe is part of
    /// the thief's real cost). The producer's ops budget bounds the run.
    pub fn steal_churn_round<S: Segment<Item = u64>>(churn_ops: u64) -> f64 {
        let family = S::new_family(1);
        let seg = &family[0];
        for i in 0..CHURN_PREFILL as u64 {
            seg.add(i);
        }
        let start = Barrier::new(2);
        let done = AtomicU64::new(0);
        let thief_ns_per_cycle = std::thread::scope(|s| {
            let (done_ref, start_ref) = (&done, &start);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(11);
                start_ref.wait();
                for i in 0..churn_ops {
                    if rng.gen_bool(0.5) {
                        seg.add(i);
                    } else {
                        let _ = seg.try_remove();
                    }
                }
                done_ref.store(1, Ordering::Release);
            });
            let thief = s.spawn(move || {
                start_ref.wait();
                let t0 = Instant::now();
                let mut cycles = 0u64;
                loop {
                    let batch = seg.steal_half();
                    if batch.is_empty() {
                        std::thread::yield_now();
                    } else {
                        seg.add_bulk(batch);
                    }
                    cycles += 1;
                    if done_ref.load(Ordering::Acquire) == 1 {
                        break;
                    }
                }
                t0.elapsed().as_nanos() as f64 / cycles as f64
            });
            thief.join().expect("thief thread panicked")
        });
        // Leave the family balanced for drop; residue is irrelevant to the
        // measurement but draining exercises no extra timed code.
        while seg.try_remove().is_some() {}
        thief_ns_per_cycle
    }

    /// Minimum of `runs` repetitions (wall-clock floors filter scheduler
    /// noise exactly as `hotpath::measure` does for single-threaded loops).
    pub fn best_of(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..runs.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
    }
}

/// Keyed-pool kernels under skewed key traffic — the uniform-vs-Zipfian
/// matrix behind `BENCH_zipf.json` (`cargo run --release -p bench --bin
/// zipf`).
pub mod keyed {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use std::time::Instant;

    use cpool::{KeyedPool, KeyedPoolBuilder};
    use workload::{KeyDist, KeyStream};

    use crate::contention::best_of;

    /// Distinct keys each cell's streams draw from. Large enough that a
    /// Zipf(1.1) head is a *small* fraction of the buckets (splitting one
    /// bucket must matter because of traffic, not key-space coverage),
    /// small enough that uniform traffic keeps every bucket warm.
    pub const KEY_SPACE: u64 = 512;

    /// Prefill per key per segment: the buffer that keeps the paired
    /// add→remove traffic from ever draining a key to zero (a keyed
    /// remove of a globally absent key searches until traffic for that
    /// key reappears, which would measure the wait, not the operation).
    pub const PREFILL_PER_KEY: usize = 4;

    /// One cell: `threads` workers over a `segments`-segment keyed pool,
    /// each performing `warmup` untimed and then `pairs` timed
    /// add(key)+remove(key) pairs with the key drawn per pair from
    /// `dist`. Returns wall-clock nanoseconds per timed *operation* (two
    /// per pair), slowest thread, like
    /// [`contention::pool_round`](crate::contention::pool_round).
    ///
    /// `hotkey` toggles the adaptive hot-key machinery at its default
    /// knobs against a plain-bucket baseline — everything else (streams,
    /// seeds, prefill) is identical, so the delta is the subsystem. The
    /// warmup exists for the `hotkey` variant's sake: detection is
    /// sampled, so promotion of the mid-rank hot keys takes tens of
    /// thousands of operations, and timing that transient would mix two
    /// regimes into one number. The row prices the *steady state* — the
    /// regime a long-running pool lives in.
    pub fn keyed_round(
        threads: usize,
        segments: usize,
        warmup: u64,
        pairs: u64,
        dist: KeyDist,
        hotkey: bool,
    ) -> f64 {
        let builder = KeyedPoolBuilder::new(segments);
        let builder = if hotkey { builder } else { builder.hot_keys_disabled() };
        let pool: KeyedPool<u64, u64> = builder.build();
        // Per-segment prefill of the whole key space: every remove finds
        // its key without cross-key searching, whatever the skew.
        for _ in 0..segments {
            let mut h = pool.register();
            for key in 0..KEY_SPACE {
                for i in 0..PREFILL_PER_KEY {
                    h.add(key, i as u64);
                }
            }
        }
        let start = Barrier::new(threads);
        let timed = Barrier::new(threads);
        let slowest_ns = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let mut handle = pool.register();
                let (start, timed, slowest_ns) = (&start, &timed, &slowest_ns);
                let mut keys = dist.stream(0x5EED ^ t as u64);
                s.spawn(move || {
                    start.wait();
                    for i in 0..warmup {
                        let key = keys.next_key();
                        handle.add(key, i);
                        let _ = handle.try_remove_key(&key);
                    }
                    // Re-align after warmup so the timed sections overlap.
                    timed.wait();
                    let t0 = Instant::now();
                    for i in 0..pairs {
                        let key = keys.next_key();
                        handle.add(key, i);
                        let _ = handle.try_remove_key(&key);
                    }
                    // Deregister before reporting (see `pool_round`): an
                    // idle straggler would strand the last searcher on the
                    // §3.2 gate.
                    drop(handle);
                    slowest_ns.fetch_max(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        });
        slowest_ns.load(Ordering::Relaxed) as f64 / (pairs * 2) as f64
    }

    /// [`keyed_round`] floored over `repeat` runs.
    pub fn keyed_cell(
        repeat: usize,
        threads: usize,
        segments: usize,
        warmup: u64,
        pairs: u64,
        dist: KeyDist,
        hotkey: bool,
    ) -> f64 {
        best_of(repeat, || keyed_round(threads, segments, warmup, pairs, dist, hotkey))
    }
}

/// Host-parallelism probe shared by the JSON-emitting bench binaries.
///
/// Every committed `BENCH_*.json` records the host it was measured on:
/// `host_cpus` (what the OS advertises) and `measured_parallel` (whether
/// two spinning threads actually overlapped when we tried it). On a
/// single-CPU or heavily oversubscribed host the multi-threaded cells
/// measure time-sliced interleaving, not true parallelism — the numbers
/// are still internally comparable (same-run, same host), but absolute
/// scaling claims need the flag to be `true`.
pub mod host {
    use std::sync::Barrier;
    use std::time::Instant;

    /// Spin iterations per probe thread: long enough (~1 ms) that two
    /// genuinely parallel threads visibly overlap, short enough to run at
    /// every bench startup.
    const PROBE_SPINS: u64 = 2_000_000;

    /// A fixed CPU-bound workload the probe times solo and in duo.
    fn spin() {
        let mut acc = 0u64;
        for i in 0..PROBE_SPINS {
            // An LCG step per iteration: cheap, serial, unoptimizable away.
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
    }

    /// Logical CPUs the OS advertises (0 if it will not say).
    pub fn available_cpus() -> usize {
        std::thread::available_parallelism().map_or(0, |n| n.get())
    }

    /// Measures whether two threads actually run in parallel: times the
    /// spin workload solo, then two copies concurrently. On a parallel
    /// host the duo's wall clock stays near the solo time; on a
    /// time-sliced host it doubles. Best-of-3 on both sides filters
    /// scheduler noise; the 1.6× threshold sits between the ideal ratios
    /// of 1.0 (parallel) and 2.0 (serial).
    pub fn measured_parallel() -> bool {
        let best = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
        let solo = best(&|| {
            let t0 = Instant::now();
            spin();
            t0.elapsed().as_secs_f64()
        });
        let duo = best(&|| {
            let start = Barrier::new(2);
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let start = &start;
                    s.spawn(move || {
                        start.wait();
                        spin();
                    });
                }
            });
            t0.elapsed().as_secs_f64()
        });
        duo < solo * 1.6
    }

    /// Probes the host once and prints a stderr banner if the
    /// multi-threaded cells will be time-sliced rather than parallel.
    /// Returns `(available_cpus, measured_parallel)` for the JSON header.
    pub fn probe_and_warn() -> (usize, bool) {
        let cpus = available_cpus();
        let parallel = measured_parallel();
        if cpus <= 1 || !parallel {
            eprintln!(
                "WARNING: this host runs threads time-sliced, not in parallel \
                 (available_parallelism = {cpus}, measured_parallel = {parallel})."
            );
            eprintln!(
                "         Multi-threaded cells measure contention under interleaving; \
                 same-run comparisons hold, absolute scaling does not."
            );
        }
        (cpus, parallel)
    }
}

/// Parses the common scale flags.
pub fn scale_from_args(args: &Args) -> Scale {
    let base = if args.flag("quick") { Scale::tiny() } else { Scale::paper() };
    Scale {
        procs: args.parse_or("procs", base.procs),
        total_ops: args.parse_or("ops", base.total_ops),
        trials: args.parse_or("trials", base.trials),
        seed: args.parse_or("seed", base.seed),
    }
}

/// Writes a CSV artifact under the experiments directory and reports it.
pub fn emit_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = experiments_dir().join(name);
    match write_csv(&path, headers, rows) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
    }
    path
}

/// Writes a rendered text figure alongside the CSVs.
pub fn emit_text(name: &str, content: &str) -> PathBuf {
    let path = experiments_dir().join(name);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, content) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_paper() {
        let scale = scale_from_args(&Args::parse_args(Vec::new()));
        assert_eq!(scale.procs, 16);
        assert_eq!(scale.total_ops, 5000);
    }

    #[test]
    fn quick_flag_shrinks() {
        let args = Args::parse_args(vec!["--quick".to_string()]);
        let scale = scale_from_args(&args);
        assert!(scale.total_ops < 5000);
    }

    #[test]
    fn explicit_flags_override() {
        let args =
            Args::parse_args(vec!["--procs".into(), "8".into(), "--trials".into(), "3".into()]);
        let scale = scale_from_args(&args);
        assert_eq!(scale.procs, 8);
        assert_eq!(scale.trials, 3);
        assert_eq!(scale.total_ops, 5000, "unset flags keep defaults");
    }
}
