//! Regenerates the §4.1/§4.3 comparison: the three search algorithms
//! across random mixes and producer/consumer arrangements.
//!
//! ```sh
//! cargo run --release -p bench --bin tab_compare
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::compare;

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    eprintln!(
        "tab_compare: {} procs, {} ops, {} trials",
        scale.procs, scale.total_ops, scale.trials
    );

    let cmp = compare::generate(&scale);
    let rendered = compare::render(&cmp);
    println!("{rendered}");

    let (headers, rows) = compare::csv_rows(&cmp);
    emit_csv("tab_compare.csv", &headers, &rows);
    emit_text("tab_compare.txt", &rendered);
}
