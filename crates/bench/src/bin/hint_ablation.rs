//! Ablation of the §5 hint extension: producer/consumer sweep with the
//! hint board enabled vs. disabled.
//!
//! ```sh
//! cargo run --release -p bench --bin hint_ablation
//! cargo run --release -p bench --bin hint_ablation -- --policy tree
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::hint_ablation;

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    let policy = args.parse_or("policy", cpool::PolicyKind::Linear);
    eprintln!(
        "hint_ablation: {} procs, {} ops, {} trials, {policy} search",
        scale.procs, scale.total_ops, scale.trials
    );

    let fig = hint_ablation::generate_for_policy(&scale, policy);
    let rendered = hint_ablation::render(&fig);
    println!("{rendered}");

    let (headers, rows) = hint_ablation::csv_rows(&fig);
    emit_csv("hint_ablation.csv", &headers, &rows);
    emit_text("hint_ablation.txt", &rendered);
}
