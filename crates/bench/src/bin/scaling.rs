//! The scaling experiment the paper's hardware could not run (§3.1): pools
//! of 4–64 segments, all three search algorithms, under a steal-heavy
//! sparse mix and the balanced producer/consumer model.
//!
//! ```sh
//! cargo run --release -p bench --bin scaling
//! cargo run --release -p bench --bin scaling -- --quick
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::scaling::{self, ScalingWorkload};

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    let sizes: Vec<usize> =
        if args.flag("quick") { vec![4, 8, 16] } else { vec![4, 8, 16, 32, 64] };
    eprintln!(
        "scaling: sizes {:?}, {} ops at 16 segments (scaled per size), {} trials",
        sizes, scale.total_ops, scale.trials
    );

    for (workload, name) in [
        (ScalingWorkload::SparseMix, "scaling_random"),
        (ScalingWorkload::BalancedProdCons, "scaling_prodcons"),
    ] {
        let sweep = scaling::generate_with_sizes(&scale, workload, &sizes);
        let rendered = scaling::render(&sweep);
        println!("{rendered}");
        let (headers, rows) = scaling::csv_rows(&sweep);
        emit_csv(&format!("{name}.csv"), &headers, &rows);
        emit_text(&format!("{name}.txt"), &rendered);
    }
}
