//! Regenerates Figure 3: segment sizes over time, linear search,
//! 5 contiguous producers of 16.
//!
//! ```sh
//! cargo run --release -p bench --bin fig3
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::traces::{self, TraceFigure};

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    let data = traces::generate(TraceFigure::Fig3, &scale);
    let rendered = traces::render(&data);
    println!("{rendered}");
    let (headers, rows) = traces::csv_rows(&data);
    emit_csv("fig3_trace.csv", &headers, &rows);
    emit_text("fig3.txt", &rendered);
}
