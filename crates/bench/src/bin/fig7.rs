//! Regenerates Figure 7 (errata labels): elements stolen per steal vs.
//! number of producers, unbalanced vs. balanced arrangements, tree search.
//!
//! ```sh
//! cargo run --release -p bench --bin fig7
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::fig7;

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    eprintln!("fig7: {} procs, {} ops, {} trials", scale.procs, scale.total_ops, scale.trials);

    let fig = fig7::generate(&scale);
    let rendered = fig7::render(&fig);
    println!("{rendered}");

    let (headers, rows) = fig7::csv_rows(&fig);
    emit_csv("fig7.csv", &headers, &rows);
    emit_text("fig7.txt", &rendered);
}
