//! Regenerates the §4.4 application study: tic-tac-toe speedups for
//! pool-backed work lists vs. the global-lock stack.
//!
//! Runs under the deterministic virtual-time scheduler, so the full
//! 16-worker curve works on any host. The default is the paper's exact
//! structure: depth 3, all 249,984 positions flowing through the work list
//! (this contention is precisely what saturates the global-lock stack).
//! `--batched` evaluates final-ply leaves inline instead — less list
//! traffic, and the stack contrast mostly disappears; `--depth 2 --quick`
//! gives a smoke run.
//!
//! ```sh
//! cargo run --release -p bench --bin ttt_speedup
//! cargo run --release -p bench --bin ttt_speedup -- --depth 2 --workers 1,2,4
//! ```

use bench::{emit_csv, emit_text};
use harness::cli::Args;
use harness::{Chart, TextTable};
use ttt::parallel::ExpansionConfig;
use ttt::speedup::{run_speedup, SpeedupConfig, WorkListKind};

fn main() {
    let args = Args::from_env();
    let depth: u8 = args.parse_or("depth", if args.flag("quick") { 2 } else { 3 });
    let batch = args.flag("batched");
    let workers: Vec<usize> = args
        .get("workers")
        .unwrap_or(if args.flag("quick") { "1,2,4" } else { "1,2,4,8,12,16" })
        .split(',')
        .map(|w| w.parse().expect("worker counts are integers"))
        .collect();

    let cfg = SpeedupConfig {
        expansion: ExpansionConfig { depth, batch_leaves: batch, ..ExpansionConfig::default() },
        ..SpeedupConfig::default()
    };
    eprintln!(
        "ttt_speedup: depth {depth}, workers {workers:?}, batch_leaves={batch} (virtual time)"
    );

    let curves = run_speedup(&WorkListKind::PAPER, &workers, &cfg);

    let mut chart = Chart::new("Section 4.4: tic-tac-toe speedup (virtual time)", 60, 18);
    chart.labels("workers", "speedup");
    for (curve, glyph) in curves.iter().zip(['l', 'r', 't', 's']) {
        chart.series(
            curve.kind.to_string(),
            curve.points.iter().map(|p| (p.workers as f64, p.speedup)).collect(),
            glyph,
        );
    }

    let mut table =
        TextTable::new(vec!["work list", "workers", "makespan (ms)", "speedup", "positions"]);
    let mut rows = Vec::new();
    for curve in &curves {
        for p in &curve.points {
            table.row(vec![
                curve.kind.to_string(),
                p.workers.to_string(),
                format!("{:.1}", p.makespan_ns as f64 / 1e6),
                format!("{:.2}", p.speedup),
                p.result.leaves.to_string(),
            ]);
            rows.push(vec![
                curve.kind.to_string(),
                p.workers.to_string(),
                p.makespan_ns.to_string(),
                format!("{:.4}", p.speedup),
                p.result.leaves.to_string(),
            ]);
        }
    }

    let rendered = format!("{}\n{}", chart.render(), table);
    println!("{rendered}");

    // The paper's verdict, restated from the data.
    let pool_best = curves
        .iter()
        .filter(|c| c.kind.is_pool())
        .map(|c| c.final_speedup())
        .fold(f64::NAN, f64::max);
    if let Some(stack) = curves.iter().find(|c| c.kind == WorkListKind::GlobalStack) {
        println!(
            "\npools reach {pool_best:.1}x at {} workers; the global-lock stack reaches {:.1}x\n\
             (paper: 14.6-15.4x vs 10.7x at 16 processors)",
            workers.last().unwrap(),
            stack.final_speedup()
        );
    }

    emit_csv(
        "ttt_speedup.csv",
        &["work_list", "workers", "makespan_ns", "speedup", "positions"],
        &rows,
    );
    emit_text("ttt_speedup.txt", &rendered);
}
