//! Hot-path dispatch baseline: generic `NullTiming` vs the `Arc<dyn Timing>`
//! adapter, as a plain timed loop that emits machine-readable JSON.
//!
//! The criterion twin (`benches/hotpath.rs`) gives statistically careful
//! numbers; this binary exists so the comparison can be pinned in version
//! control (`BENCH_hotpath.json` at the repo root) and smoke-run by CI.
//! Both measure the same loops, shared through [`bench::hotpath`].
//!
//! ```sh
//! cargo run --release -p bench --bin hotpath                       # print JSON
//! cargo run --release -p bench --bin hotpath -- --out BENCH_hotpath.json
//! cargo run --release -p bench --bin hotpath -- --quick            # CI smoke
//! ```

use std::sync::Arc;
use std::time::Instant;

use bench::host;
use bench::hotpath::{
    add_remove_op, async_drive_median_ns, batch_roundtrip_op, block_pool_with, bursty_op,
    filled_block_segment, filled_vec_segment, lane_pool_with, lf_pool_with, magazine_pool_with,
    per_element_roundtrip_op, pool_with, steal_op, steal_reserve_op, transfer_elements,
    transfer_op, AsyncHandoff, Handoff, ASYNC_DRIVE_SIZES, BATCH_SIZES, MAGAZINE_DEPTHS,
    RESERVE_SIZES, TRANSFER_BLOCK_SIZES, TRANSFER_OCCUPANCIES,
};
use cpool::{DynTiming, NullTiming, WaitStrategy};
use harness::cli::Args;

/// Times `iters` runs of `op` after `iters / 10` warmup runs; returns the
/// best-of-five nanoseconds per operation (the minimum filters scheduler
/// and frequency noise out of a single-threaded throughput loop).
fn measure(iters: u64, mut op: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        op();
    }
    (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                op();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = Args::from_env();
    let iters: u64 = args.parse_or("iters", if args.flag("quick") { 20_000 } else { 2_000_000 });
    let (host_cpus, measured_parallel) = host::probe_and_warn();

    let generic_add = {
        let pool = pool_with(1, NullTiming::new());
        measure(iters, add_remove_op(&pool))
    };
    let dyn_add = {
        let adapter: DynTiming = Arc::new(NullTiming::new());
        let pool = pool_with(1, adapter);
        measure(iters, add_remove_op(&pool))
    };
    let generic_steal = {
        let pool = pool_with(2, NullTiming::new());
        measure(iters, steal_op(&pool))
    };
    let dyn_steal = {
        let adapter: DynTiming = Arc::new(NullTiming::new());
        let pool = pool_with(2, adapter);
        measure(iters, steal_op(&pool))
    };
    // The same single-element steal over block segments: the batch-typed
    // transfer layer hands the lone element over in a recycled shell, so
    // the whole search+steal round trip is allocation-free.
    let block_steal = {
        let pool = block_pool_with(2, NullTiming::new());
        measure(iters, steal_op(&pool))
    };
    // The same two hot paths over the new segment internals: the fully
    // lock-free segment (CAS-reserved occupancy over a lock-free queue)
    // and the sharded-lane segment (4 affinity-routed mutex lanes).
    let lf_add = {
        let pool = lf_pool_with(1, NullTiming::new());
        measure(iters, add_remove_op(&pool))
    };
    let lf_steal = {
        let pool = lf_pool_with(2, NullTiming::new());
        measure(iters, steal_op(&pool))
    };
    let lane_add = {
        let pool = lane_pool_with(1, NullTiming::new());
        measure(iters, add_remove_op(&pool))
    };
    let lane_steal = {
        let pool = lane_pool_with(2, NullTiming::new());
        measure(iters, steal_op(&pool))
    };

    // Batched vs per-element element traffic (generic NullTiming pool, one
    // segment): both move `batch` elements per iteration; the number
    // reported is ns *per element* so sizes compare directly.
    let mut results: Vec<(String, f64)> = vec![
        ("add_remove/generic".to_string(), generic_add),
        ("add_remove/dyn".to_string(), dyn_add),
        ("steal/generic".to_string(), generic_steal),
        ("steal/dyn".to_string(), dyn_steal),
        ("steal_block/generic".to_string(), block_steal),
        ("add_remove_lf/generic".to_string(), lf_add),
        ("steal_lf/generic".to_string(), lf_steal),
        ("add_remove_lane4/generic".to_string(), lane_add),
        ("steal_lane4/generic".to_string(), lane_steal),
    ];
    // Handle-local magazine caches: the same uncontended add→remove pair
    // as `add_remove/generic`, but the pool gives each handle a
    // two-magazine cache — the steady state is loaded-push/loaded-pop with
    // zero shared-memory RMWs. Depth sweeps the magazine capacity (the
    // pure-hit pair cost is depth-independent; the sweep pins that down).
    for depth in MAGAZINE_DEPTHS {
        let ns = {
            let pool = magazine_pool_with(1, depth, NullTiming::new());
            measure(iters, add_remove_op(&pool))
        };
        results.push((format!("magazine_add_remove/{depth}"), ns));
    }
    // Bursty churn (alternating 90%/10%-add bursts): the pattern that
    // forces magazines through the depot exchange instead of the pure-hit
    // steady state, against the identical plain-pool baseline.
    let bursty_plain = {
        let pool = pool_with(1, NullTiming::new());
        measure(iters, bursty_op(&pool))
    };
    let bursty_magazine = {
        let pool = magazine_pool_with(1, 32, NullTiming::new());
        measure(iters, bursty_op(&pool))
    };
    results.push(("bursty/plain".to_string(), bursty_plain));
    results.push(("bursty/magazine32".to_string(), bursty_magazine));

    for batch in BATCH_SIZES {
        let per_iter = (iters / batch as u64).max(1);
        let batched = {
            let pool = pool_with(1, NullTiming::new());
            measure(per_iter, batch_roundtrip_op(&pool, batch)) / batch as f64
        };
        let per_element = {
            let pool = pool_with(1, NullTiming::new());
            measure(per_iter, per_element_roundtrip_op(&pool, batch)) / batch as f64
        };
        results.push((format!("batch_add_remove/batched/{batch}"), batched));
        results.push((format!("batch_add_remove/per_element/{batch}"), per_element));
    }

    // Reserve-building steals (the paper's actual protocol shape: one
    // search + two-phase transfer moves half a segment and banks a
    // reserve), ns per element through the pool — the number that shows
    // what the batch-typed transfer layer buys at the pool level.
    for reserve in RESERVE_SIZES {
        let per_iter = (iters / reserve as u64).clamp(1_000, 200_000);
        let vec_ns = {
            let pool = pool_with(2, NullTiming::new());
            measure(per_iter, steal_reserve_op(&pool, reserve)) / reserve as f64
        };
        let block_ns = {
            let pool = block_pool_with(2, NullTiming::new());
            measure(per_iter, steal_reserve_op(&pool, reserve)) / reserve as f64
        };
        results.push((format!("steal_reserve/vec/{reserve}"), vec_ns));
        results.push((format!("steal_reserve/block/{reserve}"), block_ns));
    }

    // The steal→refill transfer itself (drain ⌈n/2⌉ + deposit), isolated
    // from the search, occupancy × block size: block segments move whole
    // block handles through the batch-typed layer, the vec baseline moves
    // every element. ns per element moved, so all cells compare directly.
    for occ in TRANSFER_OCCUPANCIES {
        let moved = transfer_elements(occ) as f64;
        let per_iter = (iters / moved.max(1.0) as u64).clamp(1_000, 200_000);
        let vec_ns = {
            let seg = filled_vec_segment(occ);
            measure(per_iter, transfer_op(&seg)) / moved
        };
        results.push((format!("transfer/vec/{occ}"), vec_ns));
        for bs in TRANSFER_BLOCK_SIZES {
            let block_ns = {
                let seg = filled_block_segment(occ, bs);
                measure(per_iter, transfer_op(&seg)) / moved
            };
            results.push((format!("transfer/block{bs}/{occ}"), block_ns));
        }
    }

    // Producer→blocked-consumer wakeup latency: Park (sleep backoff — an
    // element added mid-sleep waits out the rest of the interval) vs Block
    // (event-driven — the add edge unparks the consumer). Medians, ns per
    // handoff; each round lets the consumer settle into its idle state
    // first, so this measures wakeup latency, not throughput.
    let handoff_rounds = if args.flag("quick") { 50 } else { 400 };
    let handoff_park = Handoff::new(WaitStrategy::Park).median_ns(handoff_rounds);
    let handoff_block = Handoff::new(WaitStrategy::Block).median_ns(handoff_rounds);
    // The waker-based consumer on the same rig: the add edge wakes a
    // registered waker instead of unparking a `Block`ed thread, so this
    // row vs `handoff/block` prices the waker round trip itself.
    let handoff_async = AsyncHandoff::new().median_ns(handoff_rounds);
    results.push(("handoff/park".to_string(), handoff_park));
    results.push(("handoff/block".to_string(), handoff_block));
    results.push(("handoff/async".to_string(), handoff_async));

    // One thread drives N concurrently pending futures to completion:
    // ns per element through the async dispatch loop as the fleet grows.
    let drive_rounds = if args.flag("quick") { 5 } else { 25 };
    for n in ASYNC_DRIVE_SIZES {
        results.push((format!("async_drive/{n}"), async_drive_median_ns(n, drive_rounds)));
    }

    for (name, ns) in &results {
        eprintln!("{name:>32}: {ns:8.1} ns/elem");
    }
    eprintln!(
        "dyn/generic ratio: add_remove {:.3}, steal {:.3}; handoff block/park {:.3}",
        dyn_add / generic_add,
        dyn_steal / generic_steal,
        handoff_block / handoff_park,
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"hotpath\",\n");
    json.push_str("  \"unit\": \"ns_per_element\",\n");
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"measured_parallel\": {measured_parallel},\n"));
    json.push_str("  \"pool\": \"Pool<VecSegment<u64>, LinearSearch, T>\",\n");
    json.push_str("  \"results\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json).expect("write JSON output");
            println!("[wrote {path}]");
        }
        None => print!("{json}"),
    }
}
