//! Regenerates every figure and table of the paper in one run, writing all
//! artifacts (rendered text + CSV) under `target/experiments/`.
//!
//! ```sh
//! cargo run --release -p bench --bin run_all            # paper scale
//! cargo run --release -p bench --bin run_all -- --quick # smoke scale
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::delay::{self, SweepWorkload, PAPER_DELAYS_US};
use harness::figures::scaling::{self, ScalingWorkload};
use harness::figures::traces::{self, TraceFigure};
use harness::figures::{compare, fig2, fig7, hint_ablation, lifecycle};
use ttt::parallel::ExpansionConfig;
use ttt::speedup::{run_speedup, SpeedupConfig, WorkListKind};

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    let t0 = std::time::Instant::now();
    eprintln!(
        "run_all: {} procs, {} ops, {} trials (virtual-time engine)",
        scale.procs, scale.total_ops, scale.trials
    );

    eprintln!("== Figure 2 ==");
    let f2 = fig2::generate(&scale);
    let rendered = fig2::render(&f2);
    println!("{rendered}");
    let (h, r) = fig2::csv_rows(&f2);
    emit_csv("fig2.csv", &h, &r);
    emit_text("fig2.txt", &rendered);

    eprintln!("== Figures 3-6 ==");
    let mut trace_data = Vec::new();
    for figure in [TraceFigure::Fig3, TraceFigure::Fig4, TraceFigure::Fig5, TraceFigure::Fig6] {
        let data = traces::generate(figure, &scale);
        let rendered = traces::render(&data);
        println!("{rendered}");
        let (h, r) = traces::csv_rows(&data);
        emit_csv(&format!("fig{}_trace.csv", figure.number()), &h, &r);
        emit_text(&format!("fig{}.txt", figure.number()), &rendered);
        trace_data.push(data);
    }
    let coverage = traces::coverage_table(&trace_data).to_string();
    println!("{coverage}");
    emit_text("figs3-6_coverage.txt", &coverage);

    eprintln!("== Figure 7 ==");
    let f7 = fig7::generate(&scale);
    let rendered = fig7::render(&f7);
    println!("{rendered}");
    let (h, r) = fig7::csv_rows(&f7);
    emit_csv("fig7.csv", &h, &r);
    emit_text("fig7.txt", &rendered);

    eprintln!("== Comparison table ==");
    let cmp = compare::generate(&scale);
    let rendered = compare::render(&cmp);
    println!("{rendered}");
    let (h, r) = compare::csv_rows(&cmp);
    emit_csv("tab_compare.csv", &h, &r);
    emit_text("tab_compare.txt", &rendered);

    eprintln!("== Delay sweep ==");
    let delays: Vec<u64> = PAPER_DELAYS_US.to_vec();
    for (which, name) in [
        (SweepWorkload::SparseRandom, "delay_sweep_random"),
        (SweepWorkload::BalancedProdCons, "delay_sweep_prodcons"),
    ] {
        let sweep = delay::generate(&scale, which, &delays);
        let rendered = delay::render(&sweep);
        println!("{rendered}");
        let (h, r) = delay::csv_rows(&sweep);
        emit_csv(&format!("{name}.csv"), &h, &r);
        emit_text(&format!("{name}.txt"), &rendered);
    }

    eprintln!("== Lifecycle (fill/stable/drain) ==");
    let cycle = lifecycle::generate(&scale);
    let rendered = lifecycle::render(&cycle);
    println!("{rendered}");
    let (h, r) = lifecycle::csv_rows(&cycle);
    emit_csv("lifecycle.csv", &h, &r);
    emit_text("lifecycle.txt", &rendered);

    eprintln!("== Hint-extension ablation ==");
    let ablation = hint_ablation::generate(&scale);
    let rendered = hint_ablation::render(&ablation);
    println!("{rendered}");
    let (h, r) = hint_ablation::csv_rows(&ablation);
    emit_csv("hint_ablation.csv", &h, &r);
    emit_text("hint_ablation.txt", &rendered);

    eprintln!("== Scaling sweep (4-64 segments) ==");
    let sizes: Vec<usize> =
        if args.flag("quick") { vec![4, 8, 16] } else { vec![4, 8, 16, 32, 64] };
    for (workload, name) in [
        (ScalingWorkload::SparseMix, "scaling_random"),
        (ScalingWorkload::BalancedProdCons, "scaling_prodcons"),
    ] {
        let sweep = scaling::generate_with_sizes(&scale, workload, &sizes);
        let rendered = scaling::render(&sweep);
        println!("{rendered}");
        let (h, r) = scaling::csv_rows(&sweep);
        emit_csv(&format!("{name}.csv"), &h, &r);
        emit_text(&format!("{name}.txt"), &rendered);
    }

    eprintln!("== Tic-tac-toe speedup ==");
    let (depth, workers): (u8, Vec<usize>) =
        if args.flag("quick") { (2, vec![1, 2, 4]) } else { (3, vec![1, 2, 4, 8, 12, 16]) };
    // The paper's structure: every position flows through the work list —
    // that traffic is exactly what saturates the global-lock stack.
    let cfg = SpeedupConfig {
        expansion: ExpansionConfig { depth, batch_leaves: false, ..ExpansionConfig::default() },
        ..SpeedupConfig::default()
    };
    let curves = run_speedup(&WorkListKind::PAPER, &workers, &cfg);
    let mut rows = Vec::new();
    for curve in &curves {
        for p in &curve.points {
            println!(
                "{:<14} workers={:<3} makespan={:>10.1}ms speedup={:.2}",
                curve.kind.to_string(),
                p.workers,
                p.makespan_ns as f64 / 1e6,
                p.speedup
            );
            rows.push(vec![
                curve.kind.to_string(),
                p.workers.to_string(),
                p.makespan_ns.to_string(),
                format!("{:.4}", p.speedup),
                p.result.leaves.to_string(),
            ]);
        }
    }
    emit_csv(
        "ttt_speedup.csv",
        &["work_list", "workers", "makespan_ns", "speedup", "positions"],
        &rows,
    );

    eprintln!("run_all finished in {:.1}s", t0.elapsed().as_secs_f64());
}
