//! Regenerates Figure 6: segment sizes over time, tree search,
//! 5 balanced producers (the paper's {0, 2, 4, 8, 12} placement).
//!
//! ```sh
//! cargo run --release -p bench --bin fig6
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::traces::{self, TraceFigure};

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    let data = traces::generate(TraceFigure::Fig6, &scale);
    let rendered = traces::render(&data);
    println!("{rendered}");
    let (headers, rows) = traces::csv_rows(&data);
    emit_csv("fig6_trace.csv", &headers, &rows);
    emit_text("fig6.txt", &rendered);
}
