//! Keyed-pool skew matrix: uniform vs Zipfian key traffic, hot-key
//! adaptive sharding on vs off.
//!
//! The question this binary answers and pins in version control
//! (`BENCH_zipf.json`): does splitting the hot bucket into independently
//! locked sub-shards pay for itself under a Zipf(1.1) key stream, and
//! what does the sampling machinery cost when traffic is uniform (no key
//! ever promotes, so the detector is pure overhead)?
//!
//! ```sh
//! cargo run --release -p bench --bin zipf                      # print JSON
//! cargo run --release -p bench --bin zipf -- --out BENCH_zipf.json
//! cargo run --release -p bench --bin zipf -- --quick           # CI smoke
//! ```
//!
//! Rows are `zipf/<dist>/<hotkey>/t<threads>s<segments>`, ns per
//! operation, best-of-`--repeat` wall-clock floors, slowest thread. Each
//! operation is half an add(key)+remove(key) pair over a prefilled
//! 512-key space (see [`bench::keyed`]); the pair shape guarantees every
//! remove is satisfiable, so the number prices the operation, not a
//! wait. Every round runs an untimed warmup first so the timed section
//! prices the detector's steady state, not its promotion transient.
//!
//! All four dist × hotkey variants are *interleaved* within each
//! (threads, segments) cell — round-robin across the repeat floors — so
//! the acceptance comparison (`zipf11/on` vs `zipf11/off`) samples the
//! same slice of host time. The JSON header records `host_cpus` and
//! `measured_parallel` (see [`bench::host`]): on a single-CPU host the
//! multi-threaded cells measure time-sliced interleaving.

use bench::host;
use bench::keyed::{keyed_round, KEY_SPACE};
use harness::cli::Args;
use workload::KeyDist;

/// The Zipf exponent of the skewed rows: the classic "web-like" skew
/// where the hottest key absorbs a double-digit percentage of traffic.
const ZIPF_S: f64 = 1.1;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    // Untimed warmup pairs per round (total across threads): long enough
    // that the detector's sampled window has promoted the whole Zipf head
    // (the mid-rank keys need tens of thousands of ops at the default
    // 1/128 sampling), so the timed section prices the steady state. The
    // timed section is kept short and the repeat count high: interleaved
    // short rounds give every variant many shots at the host's quiet
    // windows, which is what makes the floors comparable on a shared
    // machine.
    let warmup: u64 = args.parse_or("warmup", if quick { 4_000 } else { 40_000 });
    let pairs: u64 = args.parse_or("ops", if quick { 4_000 } else { 40_000 });
    let repeat: usize = args.parse_or("repeat", if quick { 1 } else { 21 });
    let threads: Vec<usize> = if quick { vec![2] } else { vec![2, 4] };
    let (host_cpus, measured_parallel) = host::probe_and_warn();

    let uniform = KeyDist::Uniform { keys: KEY_SPACE };
    let zipf = KeyDist::Zipf { keys: KEY_SPACE, s: ZIPF_S };
    const VARIANTS: [(&str, &str); 4] =
        [("uniform", "off"), ("uniform", "on"), ("zipf11", "off"), ("zipf11", "on")];
    let variant_dist = |dist: &str| if dist == "uniform" { uniform } else { zipf };

    let mut results: Vec<(String, f64)> = Vec::new();
    let cell = |results: &mut Vec<(String, f64)>, name: String, ns: f64| {
        eprintln!("{name:>32}: {ns:10.1} ns/op");
        results.push((name, ns));
    };

    // Threads × segments matrix (t1s1 is the sampling-overhead row: with
    // one thread there is no lock contention for sub-sharding to relieve,
    // so `on` minus `off` is the pure cost of the detector tick + routing
    // indirection). All four dist × hotkey variants are interleaved
    // within each cell so background-load drift cannot masquerade as a
    // hot-key effect.
    let mut shapes: Vec<(usize, usize)> = vec![(1, 1)];
    for &t in &threads {
        shapes.push((t, 1));
        shapes.push((t, t));
    }
    for (t, segments) in shapes {
        // Warmup splits across threads (the detector is pool-wide, so the
        // *total* warmup ops are what promote the Zipf head), but the
        // timed pairs stay per-thread: every thread's timed section must
        // span several scheduler quanta, or a time-sliced host can fit a
        // whole section into one undisturbed slice and report solo speed
        // for a supposedly contended cell.
        let t_warmup = (warmup / t as u64).max(1);
        let t_pairs = pairs;
        let mut floors = [f64::INFINITY; VARIANTS.len()];
        for _ in 0..repeat.max(1) {
            for (floor, (dist_name, hotkey_name)) in floors.iter_mut().zip(VARIANTS) {
                let dist = variant_dist(dist_name);
                *floor = floor.min(keyed_round(
                    t,
                    segments,
                    t_warmup,
                    t_pairs,
                    dist,
                    hotkey_name == "on",
                ));
            }
        }
        for (ns, (dist_name, hotkey_name)) in floors.into_iter().zip(VARIANTS) {
            cell(&mut results, format!("zipf/{dist_name}/{hotkey_name}/t{t}s{segments}"), ns);
        }
    }

    // Headline rows: per-dist geomean of off/on across the shape matrix.
    // A single shape's floor can still catch a load spike on a shared
    // host; the geomean over all shapes is the run's verdict on whether
    // hot-key sharding pays for the distribution.
    for (dist_name, _) in [VARIANTS[0], VARIANTS[2]] {
        let ratios: Vec<f64> = results
            .iter()
            .filter(|(name, _)| name.contains(&format!("/{dist_name}/off/")))
            .filter_map(|(name, off)| {
                let on_name = name.replace("/off/", "/on/");
                results.iter().find(|(n, _)| *n == on_name).map(|(_, on)| off / on)
            })
            .collect();
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        let name = format!("zipf/{dist_name}/speedup_off_over_on_geomean");
        eprintln!("{name:>42}: {geomean:10.4} x");
        results.push((name, geomean));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"zipf\",\n");
    json.push_str("  \"unit\": \"ns_per_op\",\n");
    json.push_str("  \"pool\": \"KeyedPool<u64, u64>\",\n");
    json.push_str(&format!("  \"key_space\": {KEY_SPACE},\n"));
    json.push_str(&format!("  \"zipf_s\": {ZIPF_S},\n"));
    json.push_str(&format!("  \"warmup_pairs_total\": {warmup},\n"));
    json.push_str(&format!("  \"pairs_per_thread\": {pairs},\n"));
    json.push_str(&format!("  \"repeat\": {repeat},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"measured_parallel\": {measured_parallel},\n"));
    json.push_str("  \"results\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.4}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json).expect("write JSON output");
            println!("[wrote {path}]");
        }
        None => print!("{json}"),
    }
}
