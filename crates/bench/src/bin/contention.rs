//! Multi-threaded contention matrix: the lock-free primitives against the
//! retired mutex-shim design, and the whole pool across threads × segments
//! × workload mix × segment representation.
//!
//! The criterion twin (`benches/contention.rs`) gives statistically careful
//! numbers; this binary exists so the comparison can be pinned in version
//! control (`BENCH_contention.json` at the repo root) and smoke-run by CI.
//! Both measure the same kernels, shared through [`bench::contention`].
//!
//! ```sh
//! cargo run --release -p bench --bin contention                      # print JSON
//! cargo run --release -p bench --bin contention -- --out BENCH_contention.json
//! cargo run --release -p bench --bin contention -- --quick           # CI smoke
//! ```
//!
//! Two matrices, all cells best-of-`--repeat` wall-clock floors:
//!
//! * `primitive/<structure>/t<threads>` — ns per push+pop pair on one
//!   shared container. `mutex_shim` is the "before" row (the retired
//!   vendor shim's `Mutex<VecDeque>` design); `free_list` is the
//!   production `cpool::transfer::FreeList` (riding on the bounded ring);
//!   `treiber_stack`, `seg_queue`, and `array_queue` are the hand-rolled
//!   lock-free structures themselves.
//! * `pool/<seg>/<mix>/t<threads>x s<segments>` — ns per operation through
//!   the full add/remove/steal machinery, for every element segment:
//!   `vec` (mutex deque), `block` (mutex block chain), `lf` (fully
//!   lock-free), `lane4` (4 sharded lanes over vec deques).
//!
//! Plus two focused rows: `lane_sweep/k<K>/<mix>/t4s4` (lane-count sweep
//! at the paper's per-processor shape) and `churn/<seg>/steal_half` (a
//! thief racing a producer on one segment — ns per steal cycle).
//!
//! The JSON header records `host_cpus` and `measured_parallel` (see
//! [`bench::host`]): on a single-CPU host the multi-threaded cells measure
//! time-sliced interleaving, and a stderr banner says so.

use bench::contention::{
    bag_round, best_of, pool_round_block, pool_round_lane, pool_round_lane_k, pool_round_lf,
    pool_round_vec, steal_churn_round, Bag, MutexQueue, LANE_COUNTS, MIXES, THREAD_MATRIX,
};
use bench::host;
use cpool::transfer::FreeList;
use cpool::{BlockSegment, LaneSegment, LfSegment, VecSegment};
use crossbeam_queue::{ArrayQueue, SegQueue, Stack};
use harness::cli::Args;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    // Per-thread push+pop pairs for the primitive matrix, and total pool
    // operations per cell; both shrink under --quick to CI-smoke scale.
    let pairs: u64 = args.parse_or("iters", if quick { 4_000 } else { 200_000 });
    let pool_ops: u64 = args.parse_or("ops", if quick { 8_000 } else { 200_000 });
    let repeat: usize = args.parse_or("repeat", if quick { 1 } else { 3 });
    let threads: Vec<usize> = if quick { vec![2, 4] } else { THREAD_MATRIX.to_vec() };
    let (host_cpus, measured_parallel) = host::probe_and_warn();

    let mut results: Vec<(String, f64)> = Vec::new();

    // Primitive matrix: mutex "before" row vs the lock-free structures.
    let cell = |results: &mut Vec<(String, f64)>, name: String, ns: f64| {
        eprintln!("{name:>40}: {ns:10.1} ns/op");
        results.push((name, ns));
    };
    for &t in &threads {
        let ns = best_of(repeat, || bag_round::<MutexQueue>(t, pairs));
        cell(&mut results, format!("primitive/{}/t{t}", MutexQueue::NAME), ns);
        let ns = best_of(repeat, || bag_round::<FreeList<u64>>(t, pairs));
        cell(&mut results, format!("primitive/{}/t{t}", <FreeList<u64> as Bag>::NAME), ns);
        let ns = best_of(repeat, || bag_round::<Stack<u64>>(t, pairs));
        cell(&mut results, format!("primitive/{}/t{t}", <Stack<u64> as Bag>::NAME), ns);
        let ns = best_of(repeat, || bag_round::<SegQueue<u64>>(t, pairs));
        cell(&mut results, format!("primitive/{}/t{t}", <SegQueue<u64> as Bag>::NAME), ns);
        let ns = best_of(repeat, || bag_round::<ArrayQueue<u64>>(t, pairs));
        cell(&mut results, format!("primitive/{}/t{t}", <ArrayQueue<u64> as Bag>::NAME), ns);
    }

    // Pool matrix: threads × segments × workload mix × element segment.
    // The segments axis takes the paper's per-processor shape (segments ==
    // threads) and the worst case (one segment shared by everyone). The
    // four segment representations are *interleaved* within each cell
    // config — round-robin across the repeat floors — so all four sample
    // the same slice of host time; measuring each segment's repeats
    // back-to-back lets background-load drift masquerade as a segment
    // difference.
    type PoolKernel = fn(usize, usize, f64, u64) -> f64;
    const POOL_KERNELS: [(&str, PoolKernel); 4] = [
        ("vec", pool_round_vec),
        ("block", pool_round_block),
        ("lf", pool_round_lf),
        ("lane4", pool_round_lane),
    ];
    for &t in &threads {
        for segments in [1, t] {
            if segments == t && t == 1 {
                continue; // 1x1 would duplicate the segments==1 cell
            }
            for (mix_name, add_fraction) in MIXES {
                let mut floors = [f64::INFINITY; POOL_KERNELS.len()];
                for _ in 0..repeat.max(1) {
                    for (floor, (_, kernel)) in floors.iter_mut().zip(POOL_KERNELS) {
                        *floor = floor.min(kernel(t, segments, add_fraction, pool_ops));
                    }
                }
                for (ns, (seg_name, _)) in floors.into_iter().zip(POOL_KERNELS) {
                    cell(&mut results, format!("pool/{seg_name}/{mix_name}/t{t}s{segments}"), ns);
                }
            }
        }
    }

    // Lane-count sweep: K lanes per segment at the paper's per-processor
    // shape (4 threads, 4 segments), both mixes. K = 1 prices the adapter
    // itself; rising K trades per-lane occupancy for collision avoidance.
    if threads.contains(&4) {
        for k in LANE_COUNTS {
            for (mix_name, add_fraction) in MIXES {
                let ns = best_of(repeat, || pool_round_lane_k(k, 4, 4, add_fraction, pool_ops));
                cell(&mut results, format!("lane_sweep/k{k}/{mix_name}/t4s4"), ns);
            }
        }
    }

    // steal_half under churn: thief vs producer colliding on one segment,
    // every element-segment representation. ns per thief steal cycle.
    let churn_ops = pool_ops;
    let ns = best_of(repeat, || steal_churn_round::<VecSegment<u64>>(churn_ops));
    cell(&mut results, "churn/vec/steal_half".to_string(), ns);
    let ns = best_of(repeat, || steal_churn_round::<BlockSegment<u64>>(churn_ops));
    cell(&mut results, "churn/block/steal_half".to_string(), ns);
    let ns = best_of(repeat, || steal_churn_round::<LfSegment<u64>>(churn_ops));
    cell(&mut results, "churn/lf/steal_half".to_string(), ns);
    let ns = best_of(repeat, || steal_churn_round::<LaneSegment<VecSegment<u64>, 4>>(churn_ops));
    cell(&mut results, "churn/lane4/steal_half".to_string(), ns);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"contention\",\n");
    json.push_str("  \"unit\": \"ns_per_op\",\n");
    json.push_str(&format!("  \"pairs_per_thread\": {pairs},\n"));
    json.push_str(&format!("  \"pool_ops\": {pool_ops},\n"));
    json.push_str(&format!("  \"repeat\": {repeat},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"measured_parallel\": {measured_parallel},\n"));
    json.push_str("  \"results\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json).expect("write JSON output");
            println!("[wrote {path}]");
        }
        None => print!("{json}"),
    }
}
