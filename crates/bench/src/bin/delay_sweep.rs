//! Regenerates the §4.3 delay sweep: operation time vs. artificial remote
//! delay (1 µs → 10 ms by default decades; the paper went to 100 ms) for
//! all three search algorithms, on both a sparse random mix and the
//! balanced producer/consumer workload.
//!
//! ```sh
//! cargo run --release -p bench --bin delay_sweep
//! cargo run --release -p bench --bin delay_sweep -- --max-delay-us 100000
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::delay::{self, SweepWorkload, PAPER_DELAYS_US};

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    let max_delay_us: u64 = args.parse_or("max-delay-us", 10_000);
    let delays: Vec<u64> = PAPER_DELAYS_US.iter().copied().filter(|d| *d <= max_delay_us).collect();
    eprintln!(
        "delay_sweep: {} procs, {} ops, {} trials, delays {delays:?} us",
        scale.procs, scale.total_ops, scale.trials
    );

    for (which, name) in [
        (SweepWorkload::SparseRandom, "delay_sweep_random"),
        (SweepWorkload::BalancedProdCons, "delay_sweep_prodcons"),
    ] {
        let sweep = delay::generate(&scale, which, &delays);
        let rendered = delay::render(&sweep);
        println!("{rendered}");
        let (headers, rows) = delay::csv_rows(&sweep);
        emit_csv(&format!("{name}.csv"), &headers, &rows);
        emit_text(&format!("{name}.txt"), &rendered);
    }
}
