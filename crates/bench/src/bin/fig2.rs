//! Regenerates Figure 2: average operation time vs. job mix, tree search,
//! random vs. producer/consumer models.
//!
//! ```sh
//! cargo run --release -p bench --bin fig2            # paper scale
//! cargo run --release -p bench --bin fig2 -- --quick # smoke scale
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::fig2;

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    eprintln!("fig2: {} procs, {} ops, {} trials", scale.procs, scale.total_ops, scale.trials);

    let fig = fig2::generate(&scale);
    let rendered = fig2::render(&fig);
    println!("{rendered}");

    let (headers, rows) = fig2::csv_rows(&fig);
    emit_csv("fig2.csv", &headers, &rows);
    emit_text("fig2.txt", &rendered);
}
