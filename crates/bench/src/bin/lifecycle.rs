//! The §3.5 application lifecycle (fill / stable / drain) run as a single
//! phased workload — the combined experiment the paper sketches but never
//! executes.
//!
//! ```sh
//! cargo run --release -p bench --bin lifecycle
//! ```

use bench::{emit_csv, emit_text, scale_from_args};
use harness::cli::Args;
use harness::figures::lifecycle;

fn main() {
    let args = Args::from_env();
    let scale = scale_from_args(&args);
    eprintln!(
        "lifecycle: {} procs, {} ops (fill 90% / stable 50% / drain 10%)",
        scale.procs, scale.total_ops
    );

    let data = lifecycle::generate(&scale);
    let rendered = lifecycle::render(&data);
    println!("{rendered}");

    let (headers, rows) = lifecycle::csv_rows(&data);
    emit_csv("lifecycle.csv", &headers, &rows);
    emit_text("lifecycle.txt", &rendered);
}
