//! Trial metrics and cross-trial aggregation.
//!
//! "For each workload, ten trials were performed and the measurements were
//! averaged." — §3.4.

use cpool::{ProcStats, TraceEvent};

/// Mean / standard deviation over a set of trial measurements.
///
/// Trials where a measurement is undefined (e.g. elements-per-steal with no
/// steals) are skipped; `n` reports how many trials contributed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stat {
    /// Sample mean (NaN when no trial contributed).
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample; NaN when empty).
    pub std: f64,
    /// Number of contributing trials.
    pub n: usize,
}

impl Stat {
    /// Aggregates the `Some` values of an iterator.
    pub fn of(values: impl IntoIterator<Item = Option<f64>>) -> Stat {
        let xs: Vec<f64> = values.into_iter().flatten().collect();
        if xs.is_empty() {
            return Stat { mean: f64::NAN, std: f64::NAN, n: 0 };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Stat { mean, std: var.sqrt(), n: xs.len() }
    }

    /// Whether any trial contributed a value.
    pub fn is_defined(&self) -> bool {
        self.n > 0
    }

    /// Formats as `mean ± std` (or `-` when undefined) with the given
    /// precision.
    pub fn display(&self, precision: usize) -> String {
        if self.is_defined() {
            format!("{:.p$} ±{:.p$}", self.mean, self.std, p = precision)
        } else {
            "-".to_string()
        }
    }
}

/// Raw measurements of one trial.
#[derive(Clone, Debug)]
pub struct TrialMetrics {
    /// Statistics merged over all processes.
    pub merged: ProcStats,
    /// Per-process statistics (index = process id).
    pub per_proc: Vec<ProcStats>,
    /// Modelled (virtual-time engines) or wall-clock (threaded engines)
    /// completion time of the whole trial, nanoseconds.
    pub makespan_ns: u64,
    /// Segment sizes when the trial ended.
    pub final_sizes: Vec<usize>,
    /// Segment-size trace, when recording was enabled.
    pub traces: Option<Vec<TraceEvent>>,
}

/// Aggregates of the paper's §3.4 measurements across trials.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Mean time per operation (adds + removes + aborts), µs.
    pub avg_op_us: Stat,
    /// Mean add time, µs.
    pub avg_add_us: Stat,
    /// Mean (successful) remove time, µs.
    pub avg_remove_us: Stat,
    /// Fraction of remove attempts that stole.
    pub steal_fraction: Stat,
    /// Segments examined per search.
    pub segments_per_steal: Stat,
    /// Elements stolen per successful steal.
    pub elements_per_steal: Stat,
    /// Measured fraction of adds among completed operations.
    pub measured_mix: Stat,
    /// Successful steals per trial.
    pub steals: Stat,
    /// Aborted removes per trial.
    pub aborted: Stat,
    /// Tree nodes visited per trial (0 for linear/random).
    pub tree_nodes: Stat,
    /// Operations served from a handle-local magazine per trial (0 unless
    /// the pool was built with `handle_cache`).
    pub magazine_hits: Stat,
    /// Full-magazine exchanges with the depot per trial.
    pub depot_exchanges: Stat,
    /// Waiter-triggered magazine flushes per trial.
    pub flush_on_wait: Stat,
    /// Trial completion time, ms.
    pub makespan_ms: Stat,
}

impl Summary {
    /// Aggregates a set of trials.
    pub fn of(trials: &[TrialMetrics]) -> Summary {
        let m = |f: &dyn Fn(&TrialMetrics) -> Option<f64>| Stat::of(trials.iter().map(f));
        Summary {
            avg_op_us: m(&|t| t.merged.avg_op_ns().map(|ns| ns / 1_000.0)),
            avg_add_us: m(&|t| t.merged.avg_add_ns().map(|ns| ns / 1_000.0)),
            avg_remove_us: m(&|t| t.merged.avg_remove_ns().map(|ns| ns / 1_000.0)),
            steal_fraction: m(&|t| t.merged.steal_fraction()),
            segments_per_steal: m(&|t| t.merged.segments_per_steal()),
            elements_per_steal: m(&|t| t.merged.elements_per_steal()),
            measured_mix: m(&|t| t.merged.measured_mix()),
            steals: m(&|t| Some(t.merged.steals as f64)),
            aborted: m(&|t| Some(t.merged.aborted_removes as f64)),
            tree_nodes: m(&|t| Some(t.merged.tree_nodes_visited as f64)),
            magazine_hits: m(&|t| Some(t.merged.magazine_hits as f64)),
            depot_exchanges: m(&|t| Some(t.merged.depot_exchanges as f64)),
            flush_on_wait: m(&|t| Some(t.merged.flush_on_wait as f64)),
            makespan_ms: m(&|t| Some(t.makespan_ns as f64 / 1e6)),
        }
    }
}

/// A complete experiment outcome: the per-trial metrics and their summary.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Human-readable description of the spec that produced this.
    pub label: String,
    /// One entry per trial, in trial order.
    pub trials: Vec<TrialMetrics>,
    /// Aggregates across trials.
    pub summary: Summary,
}

impl ExperimentResult {
    /// Builds a result from trials.
    pub fn new(label: String, trials: Vec<TrialMetrics>) -> Self {
        let summary = Summary::of(&trials);
        ExperimentResult { label, trials, summary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_values() {
        let s = Stat::of([Some(1.0), Some(2.0), Some(3.0)]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stat_skips_missing() {
        let s = Stat::of([Some(4.0), None, Some(6.0)]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stat_of_nothing_is_undefined() {
        let s = Stat::of([None, None]);
        assert!(!s.is_defined());
        assert_eq!(s.display(2), "-");
    }

    #[test]
    fn stat_display() {
        let s = Stat::of([Some(1.25)]);
        assert_eq!(s.display(2), "1.25 ±0.00");
    }

    fn fake_trial(adds: u64, removes: u64, steals: u64) -> TrialMetrics {
        let merged = ProcStats {
            adds,
            removes,
            steals,
            elements_stolen: steals * 4,
            add_ns: adds * 1_000,
            remove_ns: removes * 2_000,
            ..ProcStats::default()
        };
        TrialMetrics {
            merged,
            per_proc: Vec::new(),
            makespan_ns: 5_000_000,
            final_sizes: vec![0; 4],
            traces: None,
        }
    }

    #[test]
    fn summary_aggregates_trials() {
        let trials = vec![fake_trial(100, 100, 10), fake_trial(100, 100, 20)];
        let s = Summary::of(&trials);
        assert_eq!(s.steals.n, 2);
        assert!((s.steals.mean - 15.0).abs() < 1e-12);
        assert!((s.elements_per_steal.mean - 4.0).abs() < 1e-12);
        assert!((s.makespan_ms.mean - 5.0).abs() < 1e-12);
        assert!((s.measured_mix.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn experiment_result_carries_label() {
        let r = ExperimentResult::new("demo".into(), vec![fake_trial(1, 1, 0)]);
        assert_eq!(r.label, "demo");
        assert_eq!(r.trials.len(), 1);
        assert!(!r.summary.elements_per_steal.is_defined(), "no steals -> undefined");
    }
}
