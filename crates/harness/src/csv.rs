//! Minimal CSV emission for experiment artifacts.
//!
//! No external dependency: values are numbers and short labels, so quoting
//! needs are minimal (fields containing commas, quotes, or newlines are
//! quoted per RFC 4180).

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Quotes one CSV field if needed.
pub fn escape_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders rows as CSV text.
pub fn to_csv_string(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| escape_field(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape_field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes rows as a CSV file, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = fs::File::create(path)?;
    file.write_all(to_csv_string(headers, rows).as_bytes())
}

/// Directory where experiment artifacts are written: `$EXPERIMENTS_DIR` or
/// `target/experiments`.
pub fn experiments_dir() -> PathBuf {
    std::env::var_os("EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_untouched() {
        assert_eq!(escape_field("abc"), "abc");
        assert_eq!(escape_field("1.25"), "1.25");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_string_shape() {
        let text = to_csv_string(
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(text, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn writes_file_with_parents() {
        let dir = std::env::temp_dir().join(format!("cpool-csv-test-{}", std::process::id()));
        let path = dir.join("nested/out.csv");
        write_csv(&path, &["a"], &[vec!["1".into()]]).unwrap();
        let read = fs::read_to_string(&path).unwrap();
        assert_eq!(read, "a\n1\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
