//! # Experiment harness
//!
//! Drives the concurrent-pool experiments of Kotz & Ellis (1989): builds a
//! pool from an [`ExperimentSpec`], runs the workload until the combined
//! operation budget is spent, repeats for the configured number of trials,
//! and aggregates the paper's measurements (§3.4) into an
//! [`ExperimentResult`].
//!
//! Two execution engines are provided:
//!
//! * [`Engine::Sim`] — deterministic virtual time on the `numa-sim`
//!   scheduler (the default for every figure: reproducible anywhere);
//! * [`Engine::Threaded`] — real OS threads, optionally with the paper's
//!   spin-injected remote delays (faithful to the original method, but
//!   dependent on host parallelism).
//!
//! The [`figures`] module regenerates each figure and table of the paper;
//! the `bench` crate's binaries are thin CLI wrappers around it.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chart;
pub mod cli;
pub mod csv;
pub mod figures;
pub mod metrics;
pub mod run;
pub mod spec;
pub mod table;

pub use chart::Chart;
pub use metrics::{ExperimentResult, Stat, Summary, TrialMetrics};
pub use run::{run_experiment, run_single_trial};
pub use spec::{Engine, ExperimentSpec, SegmentKind};
pub use table::TextTable;
