//! Experiment specifications.

use std::fmt;
use std::str::FromStr;

use cpool::{NodeStoreKind, PolicyKind};
use numa_sim::LatencyModel;
use workload::Workload;

/// Which counting-segment implementation backs the pool.
///
/// The paper measured mutex-protected counters; the CAS variant is an
/// ablation (see `segment::counting`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SegmentKind {
    /// `Mutex<usize>` counter (the paper's representation).
    #[default]
    LockedCounter,
    /// Lock-free CAS counter.
    AtomicCounter,
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentKind::LockedCounter => f.write_str("locked-counter"),
            SegmentKind::AtomicCounter => f.write_str("atomic-counter"),
        }
    }
}

impl FromStr for SegmentKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "locked" | "locked-counter" => Ok(SegmentKind::LockedCounter),
            "atomic" | "atomic-counter" => Ok(SegmentKind::AtomicCounter),
            other => Err(format!("unknown segment kind {other:?}")),
        }
    }
}

/// Execution engine for a trial.
#[derive(Clone, Copy, Debug)]
pub enum Engine {
    /// Deterministic virtual-time simulation under the given latency model.
    Sim(LatencyModel),
    /// Real threads; `Some(model)` spin-injects the modelled access costs
    /// (the paper's delay method), `None` runs at raw machine speed.
    Threaded(Option<LatencyModel>),
}

impl Engine {
    /// Whether this engine produces bit-reproducible results.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Engine::Sim(_))
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Sim(m) => write!(f, "sim(delay={}ns)", m.remote_delay_ns),
            Engine::Threaded(Some(m)) => write!(f, "threaded(delay={}ns)", m.remote_delay_ns),
            Engine::Threaded(None) => f.write_str("threaded(raw)"),
        }
    }
}

/// Everything needed to reproduce one experiment.
///
/// Defaults mirror §3.4 of the paper: 16 processes (one per segment), a
/// pool initialized with 320 elements, 5000 combined operations, 10 trials
/// averaged, virtual-time Butterfly model.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Number of processes (= segments).
    pub procs: usize,
    /// Search algorithm under test.
    pub policy: PolicyKind,
    /// Round-counter synchronization for the tree policy.
    pub node_store: NodeStoreKind,
    /// Counting-segment implementation.
    pub segment: SegmentKind,
    /// Elements pre-loaded into the pool, spread evenly.
    pub initial_elements: u64,
    /// Combined operation budget per trial.
    pub total_ops: u64,
    /// The workload every process draws from.
    pub workload: Workload,
    /// Execution engine.
    pub engine: Engine,
    /// Number of trials to average.
    pub trials: u32,
    /// Master seed (trial `t` derives its own).
    pub seed: u64,
    /// Record segment-size traces (Figures 3–6).
    pub record_trace: bool,
    /// Enable the search-hint extension (`cpool::hints`, our answer to the
    /// paper's §5 future work) — off for all paper-reproduction runs.
    pub hints: bool,
    /// Fixed computation charged per add operation (ns). The paper reports
    /// ~70 µs total add time; 60 µs of overhead plus the 10 µs local
    /// segment access reproduces that.
    pub add_overhead_ns: u64,
    /// Fixed computation charged per remove attempt (ns); 100 µs of
    /// overhead plus the access reproduces the paper's ~110 µs removes.
    pub remove_overhead_ns: u64,
}

impl ExperimentSpec {
    /// The paper's baseline configuration with the given policy and
    /// workload.
    pub fn paper(policy: PolicyKind, workload: Workload) -> Self {
        ExperimentSpec {
            procs: 16,
            policy,
            node_store: NodeStoreKind::Locked,
            segment: SegmentKind::LockedCounter,
            initial_elements: 320,
            total_ops: 5000,
            workload,
            engine: Engine::Sim(LatencyModel::butterfly()),
            trials: 10,
            seed: 1989,
            record_trace: false,
            hints: false,
            add_overhead_ns: 60_000,
            remove_overhead_ns: 100_000,
        }
    }

    /// Returns a copy with the hint extension enabled.
    pub fn with_hints(mut self) -> Self {
        self.hints = true;
        self
    }

    /// Scales the experiment down (for fast tests): `procs` processes,
    /// proportional initial fill and budget, fewer trials.
    pub fn scaled(mut self, procs: usize, total_ops: u64, trials: u32) -> Self {
        let fill_per_seg = (self.initial_elements / self.procs as u64).max(1);
        self.procs = procs;
        self.initial_elements = fill_per_seg * procs as u64;
        self.total_ops = total_ops;
        self.trials = trials;
        self
    }

    /// Seed for one trial: mixes the trial index into the master seed.
    pub fn trial_seed(&self, trial: u32) -> u64 {
        self.seed.wrapping_add(u64::from(trial).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl fmt::Display for ExperimentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} procs={} ops={} init={} {} trials={}",
            self.policy,
            self.workload,
            self.procs,
            self.total_ops,
            self.initial_elements,
            self.engine,
            self.trials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::JobMix;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::paper(
            PolicyKind::Tree,
            Workload::RandomMix { mix: JobMix::from_percent(50) },
        )
    }

    #[test]
    fn paper_defaults() {
        let s = spec();
        assert_eq!(s.procs, 16);
        assert_eq!(s.initial_elements, 320);
        assert_eq!(s.total_ops, 5000);
        assert_eq!(s.trials, 10);
        assert!(s.engine.is_deterministic());
    }

    #[test]
    fn scaled_keeps_fill_per_segment() {
        let s = spec().scaled(4, 500, 2);
        assert_eq!(s.procs, 4);
        assert_eq!(s.initial_elements, 80, "20 per segment, as in the paper");
        assert_eq!(s.total_ops, 500);
        assert_eq!(s.trials, 2);
    }

    #[test]
    fn trial_seeds_differ() {
        let s = spec();
        assert_ne!(s.trial_seed(0), s.trial_seed(1));
        assert_eq!(s.trial_seed(3), s.trial_seed(3));
    }

    #[test]
    fn segment_kind_parses() {
        assert_eq!("locked".parse::<SegmentKind>().unwrap(), SegmentKind::LockedCounter);
        assert_eq!("atomic-counter".parse::<SegmentKind>().unwrap(), SegmentKind::AtomicCounter);
        assert!("x".parse::<SegmentKind>().is_err());
    }

    #[test]
    fn display_is_informative() {
        let text = spec().to_string();
        assert!(text.contains("tree"));
        assert!(text.contains("procs=16"));
    }
}
