//! Trial execution.
//!
//! A trial (§3.4): initialize the pool with `initial_elements` spread
//! evenly, then let every process draw operations from its workload stream
//! until the *combined* total reaches `total_ops`. Aborted removes count
//! against the budget (they consumed a turn, as in the paper's stressful
//! sparse runs).
//!
//! # Virtual-time discipline
//!
//! Under [`Engine::Sim`] all shared state (pool handles, the budget) is
//! created *before* the process threads start; each thread then runs
//! `scheduler.start(p) … ops … drop(handle); scheduler.finish(p)`, so every
//! shared-memory access — including the handle drop that deposits
//! statistics and deregisters from the livelock gate — happens while the
//! thread holds the virtual-time token. This makes whole trials
//! bit-reproducible.

use std::sync::Arc;
use std::time::Instant;

use cpool::segment::{AtomicCounter, LockedCounter};
use cpool::{DynPolicy, DynTiming, Pool, PoolBuilder, Segment};
use numa_sim::{RealTiming, SimScheduler, Topology};
use workload::{Op, OpBudget};

use crate::metrics::{ExperimentResult, TrialMetrics};
use crate::spec::{Engine, ExperimentSpec, SegmentKind};

/// Runs all trials of an experiment and aggregates them.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let trials: Vec<TrialMetrics> = (0..spec.trials).map(|t| run_single_trial(spec, t)).collect();
    ExperimentResult::new(spec.to_string(), trials)
}

/// Runs one trial of an experiment.
///
/// Under a [`Engine::Sim`] engine the result is a deterministic function of
/// `(spec, trial)`.
pub fn run_single_trial(spec: &ExperimentSpec, trial: u32) -> TrialMetrics {
    match spec.segment {
        SegmentKind::LockedCounter => run_trial_on::<LockedCounter>(spec, trial),
        SegmentKind::AtomicCounter => run_trial_on::<AtomicCounter>(spec, trial),
    }
}

fn run_trial_on<S: Segment<Item = ()>>(spec: &ExperimentSpec, trial: u32) -> TrialMetrics {
    let seed = spec.trial_seed(trial);
    let topology = Topology::identity(spec.procs);

    // The engine is chosen from the spec at runtime, so the pool runs on
    // the `DynTiming` adapter rather than a concrete (monomorphized) model.
    let (timing, scheduler): (DynTiming, Option<Arc<SimScheduler>>) = match spec.engine {
        Engine::Sim(model) => {
            let scheduler = SimScheduler::new(spec.procs, model, topology);
            (Arc::new(scheduler.timing()), Some(scheduler))
        }
        Engine::Threaded(Some(model)) => (Arc::new(RealTiming::new(model, topology)), None),
        Engine::Threaded(None) => (Arc::new(cpool::NullTiming::new()), None),
    };

    // The builder constructs the runtime-selected policy for `spec.procs`
    // segments itself: the count is stated once.
    let pool: Pool<S, DynPolicy, DynTiming> = PoolBuilder::new(spec.procs)
        .seed(seed)
        .timing(Arc::clone(&timing))
        .node_store(spec.node_store)
        .record_trace(spec.record_trace)
        .hints(spec.hints)
        .op_overhead(spec.add_overhead_ns, spec.remove_overhead_ns)
        .build_policy(spec.policy);
    pool.fill_evenly(spec.initial_elements as usize);

    let budget = OpBudget::new(spec.total_ops);

    // All handles and streams are created before any worker starts: process
    // ids, gate registration, and RNG seeding are then independent of thread
    // scheduling (required for virtual-time determinism).
    let workers: Vec<_> = (0..spec.procs)
        .map(|p| {
            let handle = pool.register();
            let stream = spec.workload.stream_for(p, spec.procs, seed);
            (handle, stream)
        })
        .collect();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for (mut handle, mut stream) in workers {
            let budget = &budget;
            let scheduler = scheduler.as_ref().map(Arc::clone);
            scope.spawn(move || {
                let me = handle.proc_id();
                if let Some(sched) = &scheduler {
                    sched.start(me);
                }
                while budget.take() {
                    match stream.next_op() {
                        Op::Add => handle.add(()),
                        Op::Remove => {
                            // Aborts are recorded in the handle's stats and,
                            // per the paper, simply end the operation.
                            let _ = handle.try_remove();
                        }
                    }
                }
                // Deregister and deposit stats while still holding the
                // virtual-time token (see module docs).
                drop(handle);
                if let Some(sched) = &scheduler {
                    sched.finish(me);
                }
            });
        }
    });

    let makespan_ns = match &scheduler {
        Some(sched) => sched.makespan(),
        None => wall_start.elapsed().as_nanos() as u64,
    };

    // The trial is over: close the pool so its lifecycle ends explicitly —
    // any handle that leaked past the scope would drain the residue and
    // observe `Closed` instead of spinning against a dead experiment.
    // (Final segment sizes are reported below; close does not drain.)
    pool.close();

    let stats = pool.stats();
    let merged = stats.merged();
    debug_assert_eq!(merged.ops(), spec.total_ops, "every budgeted operation is accounted for");
    TrialMetrics {
        merged,
        per_proc: stats.per_proc,
        makespan_ns,
        final_sizes: pool.segment_sizes(),
        traces: pool.trace().map(|t| t.snapshot_sorted()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpool::PolicyKind;
    use workload::{Arrangement, JobMix, Workload};

    fn quick_spec(policy: PolicyKind, workload: Workload) -> ExperimentSpec {
        ExperimentSpec::paper(policy, workload).scaled(4, 400, 2)
    }

    #[test]
    fn sim_trial_accounts_for_every_operation() {
        let spec =
            quick_spec(PolicyKind::Linear, Workload::RandomMix { mix: JobMix::from_percent(50) });
        let t = run_single_trial(&spec, 0);
        assert_eq!(t.merged.ops(), 400);
        assert_eq!(t.per_proc.len(), 4);
        assert!(t.makespan_ns > 0);
    }

    #[test]
    fn sim_trials_are_deterministic() {
        for policy in PolicyKind::ALL {
            let spec = quick_spec(policy, Workload::RandomMix { mix: JobMix::from_percent(30) });
            let a = run_single_trial(&spec, 0);
            let b = run_single_trial(&spec, 0);
            assert_eq!(a.merged.adds, b.merged.adds, "{policy}");
            assert_eq!(a.merged.steals, b.merged.steals, "{policy}");
            assert_eq!(a.merged.segments_examined, b.merged.segments_examined, "{policy}");
            assert_eq!(a.makespan_ns, b.makespan_ns, "{policy}");
            assert_eq!(a.final_sizes, b.final_sizes, "{policy}");
        }
    }

    #[test]
    fn different_trials_differ() {
        let spec =
            quick_spec(PolicyKind::Random, Workload::RandomMix { mix: JobMix::from_percent(40) });
        let a = run_single_trial(&spec, 0);
        let b = run_single_trial(&spec, 1);
        // Streams are reseeded per trial; op mixes drift slightly.
        assert!(
            a.merged.adds != b.merged.adds || a.makespan_ns != b.makespan_ns,
            "independent trials should not be identical"
        );
    }

    #[test]
    fn sufficient_mix_rarely_steals() {
        let spec =
            quick_spec(PolicyKind::Tree, Workload::RandomMix { mix: JobMix::from_percent(80) });
        let t = run_single_trial(&spec, 0);
        let steal_frac = t.merged.steal_fraction().unwrap_or(0.0);
        assert!(steal_frac < 0.05, "80% adds should almost never steal: {steal_frac}");
    }

    #[test]
    fn pure_consumers_drain_and_abort() {
        let spec = quick_spec(
            PolicyKind::Linear,
            Workload::ProducerConsumer { producers: 0, arrangement: Arrangement::Contiguous },
        );
        let t = run_single_trial(&spec, 0);
        assert_eq!(t.merged.adds, 0);
        assert_eq!(t.merged.removes, spec.initial_elements, "exactly the initial fill came out");
        assert!(t.merged.aborted_removes > 0, "the rest of the budget aborted");
        assert!(t.final_sizes.iter().all(|&s| s == 0));
    }

    #[test]
    fn threaded_engine_also_works() {
        let mut spec =
            quick_spec(PolicyKind::Random, Workload::RandomMix { mix: JobMix::from_percent(60) });
        spec.engine = Engine::Threaded(None);
        let t = run_single_trial(&spec, 0);
        assert_eq!(t.merged.ops(), 400);
    }

    #[test]
    fn run_experiment_aggregates_all_trials() {
        let spec = quick_spec(
            PolicyKind::Tree,
            Workload::ProducerConsumer { producers: 2, arrangement: Arrangement::Balanced },
        );
        let result = run_experiment(&spec);
        assert_eq!(result.trials.len(), 2);
        assert!(result.summary.avg_op_us.is_defined());
        assert_eq!(result.summary.makespan_ms.n, 2);
    }

    #[test]
    fn atomic_segments_give_same_shape() {
        let mut spec =
            quick_spec(PolicyKind::Linear, Workload::RandomMix { mix: JobMix::from_percent(30) });
        spec.segment = SegmentKind::AtomicCounter;
        let t = run_single_trial(&spec, 0);
        assert_eq!(t.merged.ops(), 400);
        assert!(t.merged.steals > 0, "sparse mix must steal");
    }

    #[test]
    fn traces_recorded_when_enabled() {
        let mut spec = quick_spec(
            PolicyKind::Linear,
            Workload::ProducerConsumer { producers: 1, arrangement: Arrangement::Contiguous },
        );
        spec.record_trace = true;
        spec.trials = 1;
        let t = run_single_trial(&spec, 0);
        let traces = t.traces.expect("tracing enabled");
        assert!(!traces.is_empty());
        assert!(traces.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }
}
