//! Figure 2: average operation time vs. job mix for the tree traversal
//! algorithm, comparing the random and producer/consumer models.
//!
//! Paper reading: sparse mixes are far slower than sufficient ones; curves
//! level off above 50% adds; the producer/consumer model is similar to the
//! random model at sufficient mixes but "generally not as good at sparse
//! job mixes". Producer/consumer points are plotted at their *measured*
//! mix ("the job mix was measured and the data was plotted on that scale"),
//! which squeezes 1–4 producers into a cluster near 47% adds.

use cpool::PolicyKind;
use workload::{Arrangement, JobMix, Workload};

use crate::chart::Chart;
use crate::run::run_experiment;
use crate::table::TextTable;

use super::Scale;

/// One data point of Figure 2.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Measured percentage of add operations (x-axis).
    pub mix_pct: f64,
    /// Mean time per operation, µs (y-axis).
    pub avg_op_us: f64,
    /// Cross-trial standard deviation, µs.
    pub std_us: f64,
    /// Number of producers (producer/consumer series only).
    pub producers: Option<usize>,
}

/// The two series of Figure 2.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// Random operations model, one point per nominal job mix (0%..100%).
    pub random: Vec<Point>,
    /// Producer/consumer model, one point per producer count (0..=procs).
    pub prodcons: Vec<Point>,
}

/// Runs the Figure 2 experiments (tree search, as in the paper).
pub fn generate(scale: &Scale) -> Fig2 {
    generate_for_policy(scale, PolicyKind::Tree)
}

/// Runs the Figure 2 experiments for any policy (the paper's text also
/// discusses the linear/random versions of this plot in §4.3).
pub fn generate_for_policy(scale: &Scale, policy: PolicyKind) -> Fig2 {
    let random = JobMix::paper_sweep()
        .into_iter()
        .map(|mix| {
            let spec = scale.spec(policy, Workload::RandomMix { mix });
            let result = run_experiment(&spec);
            Point {
                mix_pct: result.summary.measured_mix.mean * 100.0,
                avg_op_us: result.summary.avg_op_us.mean,
                std_us: result.summary.avg_op_us.std,
                producers: None,
            }
        })
        .collect();

    let prodcons = (0..=scale.procs)
        .map(|producers| {
            let spec = scale.spec(
                policy,
                Workload::ProducerConsumer { producers, arrangement: Arrangement::Contiguous },
            );
            let result = run_experiment(&spec);
            Point {
                mix_pct: result.summary.measured_mix.mean * 100.0,
                avg_op_us: result.summary.avg_op_us.mean,
                std_us: result.summary.avg_op_us.std,
                producers: Some(producers),
            }
        })
        .collect();

    Fig2 { random, prodcons }
}

/// Renders the figure as an ASCII chart plus the data table.
pub fn render(fig: &Fig2) -> String {
    let mut chart =
        Chart::new("Figure 2: average operation time (tree traversal algorithm)", 64, 20);
    chart.labels("percent of operations that were adds", "avg op time (us, modelled)");
    chart.series(
        "random ops model",
        fig.random.iter().map(|p| (p.mix_pct, p.avg_op_us)).collect(),
        '*',
    );
    chart.series(
        "producer/consumer model",
        fig.prodcons.iter().map(|p| (p.mix_pct, p.avg_op_us)).collect(),
        'x',
    );

    let mut table = TextTable::new(vec!["series", "producers", "mix %", "avg op (us)", "std"]);
    for p in &fig.random {
        table.row(vec![
            "random".into(),
            "-".into(),
            format!("{:.1}", p.mix_pct),
            format!("{:.1}", p.avg_op_us),
            format!("{:.1}", p.std_us),
        ]);
    }
    for p in &fig.prodcons {
        table.row(vec![
            "prodcons".into(),
            p.producers.map_or("-".into(), |n| n.to_string()),
            format!("{:.1}", p.mix_pct),
            format!("{:.1}", p.avg_op_us),
            format!("{:.1}", p.std_us),
        ]);
    }
    format!("{}\n{}", chart.render(), table)
}

/// CSV headers and rows for artifact export.
pub fn csv_rows(fig: &Fig2) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["series", "producers", "mix_pct", "avg_op_us", "std_us"];
    let mut rows = Vec::new();
    for (name, points) in [("random", &fig.random), ("prodcons", &fig.prodcons)] {
        for p in points {
            rows.push(vec![
                name.to_string(),
                p.producers.map_or(String::new(), |n| n.to_string()),
                format!("{:.3}", p.mix_pct),
                format!("{:.3}", p.avg_op_us),
                format!("{:.3}", p.std_us),
            ]);
        }
    }
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fig2_has_expected_shape() {
        let scale = Scale { procs: 4, total_ops: 400, trials: 2, seed: 3 };
        let fig = generate(&scale);
        assert_eq!(fig.random.len(), 11);
        assert_eq!(fig.prodcons.len(), 5);

        // The paper's headline: sparse mixes are slower than sufficient ones.
        let sparse = fig.random[2].avg_op_us; // ~20% adds
        let sufficient = fig.random[8].avg_op_us; // ~80% adds
        assert!(
            sparse > sufficient,
            "sparse ({sparse:.1}us) should exceed sufficient ({sufficient:.1}us)"
        );

        // Rendering works.
        let text = render(&fig);
        assert!(text.contains("Figure 2"));
        let (headers, rows) = csv_rows(&fig);
        assert_eq!(headers.len(), 5);
        assert_eq!(rows.len(), 16);
    }
}
