//! §4.3: the remote-access delay sweep.
//!
//! "To simulate a higher-cost remote access architecture, delays were added
//! to each remote operation ... We tried a variety of different delays from
//! 1 µsec per operation to 100 msec per operation ... We found that the
//! tree algorithm never performed better than either of the two other
//! search algorithms; in fact, as the delay increased all three algorithms
//! converged to very nearly identical performance graphs."

use cpool::PolicyKind;
use numa_sim::LatencyModel;
use workload::{Arrangement, JobMix, Workload};

use crate::chart::Chart;
use crate::run::run_experiment;
use crate::spec::Engine;
use crate::table::TextTable;

use super::Scale;

/// The paper's delay ladder: 1 µs to 100 ms (plus 0 as the undelayed
/// baseline), in decades.
pub const PAPER_DELAYS_US: [u64; 6] = [0, 1, 10, 100, 1_000, 10_000];

/// One (policy, delay) measurement.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Artificial remote delay, µs.
    pub delay_us: u64,
    /// Search policy.
    pub policy: PolicyKind,
    /// Mean time per operation, µs (modelled).
    pub avg_op_us: f64,
}

/// The delay-sweep data for one workload.
#[derive(Clone, Debug)]
pub struct DelaySweep {
    /// Short label of the workload swept.
    pub workload: String,
    /// All (policy × delay) measurements.
    pub points: Vec<Point>,
}

/// Which workload to sweep (the paper reports both the random model and the
/// balanced producer/consumer model).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepWorkload {
    /// Sparse random mix (steal-heavy: where the algorithms differ most).
    SparseRandom,
    /// Balanced producer/consumer at the paper's 5-of-16 ratio.
    BalancedProdCons,
}

impl SweepWorkload {
    fn build(self, procs: usize) -> (String, Workload) {
        match self {
            SweepWorkload::SparseRandom => {
                ("random 30%".into(), Workload::RandomMix { mix: JobMix::from_percent(30) })
            }
            SweepWorkload::BalancedProdCons => {
                let producers = (procs * 5 / 16).max(1);
                (
                    format!("prodcons {producers} balanced"),
                    Workload::ProducerConsumer { producers, arrangement: Arrangement::Balanced },
                )
            }
        }
    }
}

/// Runs the sweep over [`PAPER_DELAYS_US`] with custom delays optional.
pub fn generate(scale: &Scale, which: SweepWorkload, delays_us: &[u64]) -> DelaySweep {
    let (label, workload) = which.build(scale.procs);
    let mut points = Vec::new();
    for &delay_us in delays_us {
        for policy in PolicyKind::ALL {
            let mut spec = scale.spec(policy, workload.clone());
            spec.engine = Engine::Sim(LatencyModel::butterfly().with_remote_delay_us(delay_us));
            let result = run_experiment(&spec);
            points.push(Point { delay_us, policy, avg_op_us: result.summary.avg_op_us.mean });
        }
    }
    DelaySweep { workload: label, points }
}

/// Series of one policy, ordered by delay.
pub fn series_for(sweep: &DelaySweep, policy: PolicyKind) -> Vec<(u64, f64)> {
    sweep.points.iter().filter(|p| p.policy == policy).map(|p| (p.delay_us, p.avg_op_us)).collect()
}

/// Renders the sweep as a log-log chart plus the data table.
pub fn render(sweep: &DelaySweep) -> String {
    let mut chart = Chart::new(format!("Section 4.3: delay sweep ({})", sweep.workload), 64, 18);
    chart.labels("remote delay (us)", "avg op time (us)");
    chart.log_x();
    chart.log_y();
    for (policy, glyph) in
        [(PolicyKind::Tree, 't'), (PolicyKind::Linear, 'l'), (PolicyKind::Random, 'r')]
    {
        chart.series(
            policy.to_string(),
            series_for(sweep, policy).into_iter().map(|(d, us)| (d as f64, us)).collect(),
            glyph,
        );
    }

    let mut table =
        TextTable::new(vec!["delay (us)", "tree (us)", "linear (us)", "random (us)", "tree/best"]);
    let delays: Vec<u64> = {
        let mut d: Vec<u64> = sweep.points.iter().map(|p| p.delay_us).collect();
        d.sort_unstable();
        d.dedup();
        d
    };
    for delay in delays {
        let get = |policy| {
            sweep
                .points
                .iter()
                .find(|p| p.delay_us == delay && p.policy == policy)
                .map_or(f64::NAN, |p| p.avg_op_us)
        };
        let (t, l, r) = (get(PolicyKind::Tree), get(PolicyKind::Linear), get(PolicyKind::Random));
        table.row(vec![
            delay.to_string(),
            format!("{t:.1}"),
            format!("{l:.1}"),
            format!("{r:.1}"),
            format!("{:.3}", t / l.min(r)),
        ]);
    }
    format!("{}\n{}", chart.render(), table)
}

/// CSV export.
pub fn csv_rows(sweep: &DelaySweep) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["workload", "delay_us", "policy", "avg_op_us"];
    let rows = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                sweep.workload.clone(),
                p.delay_us.to_string(),
                p.policy.to_string(),
                format!("{:.3}", p.avg_op_us),
            ]
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_never_wins_and_delay_hurts() {
        let scale = Scale { procs: 8, total_ops: 600, trials: 2, seed: 13 };
        let sweep = generate(&scale, SweepWorkload::SparseRandom, &[0, 100, 1_000]);
        assert_eq!(sweep.points.len(), 9);

        // Larger delays make everything slower.
        let tree = series_for(&sweep, PolicyKind::Tree);
        assert!(tree[0].1 < tree[2].1, "delay increases op time: {tree:?}");

        // "The tree algorithm never performed better than either of the two
        // other search algorithms" (small tolerance for trial noise).
        for &(delay, t) in &tree {
            let l =
                series_for(&sweep, PolicyKind::Linear).iter().find(|(d, _)| *d == delay).unwrap().1;
            let r =
                series_for(&sweep, PolicyKind::Random).iter().find(|(d, _)| *d == delay).unwrap().1;
            assert!(
                t >= l.min(r) * 0.95,
                "tree ({t:.1}) beat best other ({:.1}) at delay {delay}",
                l.min(r)
            );
        }

        let text = render(&sweep);
        assert!(text.contains("delay sweep"));
    }
}
