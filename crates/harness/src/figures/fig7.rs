//! Figure 7 (with the errata's corrected labels): average number of
//! elements stolen per steal vs. number of producers, tree traversal
//! algorithm, unbalanced vs. balanced producer arrangements.
//!
//! Paper reading (corrected): the **balanced** arrangement steals more
//! elements per steal — "by spreading out the producers, forcing the
//! consumers to steal from all producers rather than one at a time, each
//! steal is likely to find a greater number of elements."

use cpool::PolicyKind;
use workload::{Arrangement, Workload};

use crate::chart::Chart;
use crate::run::run_experiment;
use crate::table::TextTable;

use super::Scale;

/// One producer-count sample of Figure 7.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Number of producers.
    pub producers: usize,
    /// Mean elements per steal, unbalanced (contiguous) arrangement.
    /// NaN when no steals occurred (e.g. all processes are producers).
    pub unbalanced: f64,
    /// Mean elements per steal, balanced arrangement.
    pub balanced: f64,
}

/// The Figure 7 data.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// One point per producer count `0..=procs`.
    pub points: Vec<Point>,
}

/// Runs the Figure 7 experiments.
pub fn generate(scale: &Scale) -> Fig7 {
    generate_for_policy(scale, PolicyKind::Tree)
}

/// Runs the Figure 7 experiments for any policy (the paper shows the tree;
/// §4.2 notes the random algorithm shows no bunching at all).
pub fn generate_for_policy(scale: &Scale, policy: PolicyKind) -> Fig7 {
    let run = |producers: usize, arrangement: Arrangement| -> f64 {
        let spec = scale.spec(policy, Workload::ProducerConsumer { producers, arrangement });
        run_experiment(&spec).summary.elements_per_steal.mean
    };
    let points = (0..=scale.procs)
        .map(|producers| Point {
            producers,
            unbalanced: run(producers, Arrangement::Contiguous),
            balanced: run(producers, Arrangement::Balanced),
        })
        .collect();
    Fig7 { points }
}

/// Renders the figure as an ASCII chart plus the data table.
pub fn render(fig: &Fig7) -> String {
    let mut chart =
        Chart::new("Figure 7 (errata): average number of elements stolen per steal (tree)", 64, 18);
    chart.labels("number of producers", "elements stolen per steal");
    chart.series(
        "unbalanced (contiguous)",
        fig.points.iter().map(|p| (p.producers as f64, p.unbalanced)).collect(),
        'p',
    );
    chart.series(
        "balanced",
        fig.points.iter().map(|p| (p.producers as f64, p.balanced)).collect(),
        'q',
    );

    let mut table = TextTable::new(vec!["producers", "unbalanced", "balanced"]);
    for p in &fig.points {
        table.row(vec![p.producers.to_string(), fmt_nan(p.unbalanced), fmt_nan(p.balanced)]);
    }
    format!("{}\n{}", chart.render(), table)
}

fn fmt_nan(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// CSV export.
pub fn csv_rows(fig: &Fig7) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["producers", "unbalanced_elements_per_steal", "balanced_elements_per_steal"];
    let rows = fig
        .points
        .iter()
        .map(|p| {
            vec![
                p.producers.to_string(),
                format!("{:.4}", p.unbalanced),
                format!("{:.4}", p.balanced),
            ]
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_beats_unbalanced_at_moderate_producer_counts() {
        let scale = Scale { procs: 8, total_ops: 800, trials: 3, seed: 11 };
        let fig = generate(&scale);
        assert_eq!(fig.points.len(), 9);

        // The paper's corrected Figure 7: at sparse-but-nonzero producer
        // counts, balancing increases the elements gathered per steal.
        // Average the mid-range to be robust at tiny scale.
        let mid = &fig.points[2..=5];
        let unbal: f64 = mid.iter().map(|p| p.unbalanced).filter(|v| !v.is_nan()).sum::<f64>();
        let bal: f64 = mid.iter().map(|p| p.balanced).filter(|v| !v.is_nan()).sum::<f64>();
        assert!(
            bal > unbal,
            "balanced ({bal:.2}) should exceed unbalanced ({unbal:.2}) per the errata"
        );

        let text = render(&fig);
        assert!(text.contains("Figure 7"));
        let (_, rows) = csv_rows(&fig);
        assert_eq!(rows.len(), 9);
    }
}
