//! Figures 3–6: segment sizes over time under the producer/consumer model.
//!
//! * Figure 3 — linear search, 5 producers contiguous (bunching visible:
//!   "the producers are being stolen from in the order 0 1 2 3, and
//!   producer 4 is never stolen from").
//! * Figure 4 — linear search, producers balanced ("the segments of all
//!   producers ... are accessed").
//! * Figure 5 — tree search, contiguous (bunching again).
//! * Figure 6 — tree search, balanced.
//!
//! Each regeneration runs a single traced trial and reports, besides the
//! raw series, the *steal coverage* of the producers — which producer
//! segments ever got stolen from, in first-steal order — the property the
//! paper reads off these figures.

use cpool::{PolicyKind, SegIdx, TraceEvent, TraceKind};
use workload::{Arrangement, Role, Workload};

use crate::run::run_single_trial;
use crate::table::TextTable;

use super::Scale;

/// Which of the four figures to regenerate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceFigure {
    /// Figure 3: linear search, contiguous producers.
    Fig3,
    /// Figure 4: linear search, balanced producers.
    Fig4,
    /// Figure 5: tree search, contiguous producers.
    Fig5,
    /// Figure 6: tree search, balanced producers.
    Fig6,
}

impl TraceFigure {
    /// The policy and arrangement this figure uses.
    pub fn config(self) -> (PolicyKind, Arrangement) {
        match self {
            TraceFigure::Fig3 => (PolicyKind::Linear, Arrangement::Contiguous),
            TraceFigure::Fig4 => (PolicyKind::Linear, Arrangement::PaperBalanced),
            TraceFigure::Fig5 => (PolicyKind::Tree, Arrangement::Contiguous),
            TraceFigure::Fig6 => (PolicyKind::Tree, Arrangement::PaperBalanced),
        }
    }

    /// Figure number in the paper.
    pub fn number(self) -> u32 {
        match self {
            TraceFigure::Fig3 => 3,
            TraceFigure::Fig4 => 4,
            TraceFigure::Fig5 => 5,
            TraceFigure::Fig6 => 6,
        }
    }
}

/// The regenerated data for one of Figures 3–6.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Which figure this is.
    pub figure: TraceFigure,
    /// Number of processes/segments.
    pub procs: usize,
    /// Producer process ids.
    pub producers: Vec<usize>,
    /// Time-sorted trace events of the trial.
    pub events: Vec<TraceEvent>,
    /// End of the trial (virtual ns).
    pub end_ns: u64,
    /// Producer segments in order of their first steal (victims).
    pub producer_first_steal_order: Vec<usize>,
    /// Producer segments never stolen from during the trial.
    pub producers_never_stolen: Vec<usize>,
}

/// Runs one traced trial (5 producers of 16, as in the paper's figures).
pub fn generate(figure: TraceFigure, scale: &Scale) -> TraceData {
    let producers_count = (scale.procs * 5 / 16).max(1);
    let (policy, arrangement) = figure.config();
    let workload =
        Workload::ProducerConsumer { producers: producers_count, arrangement: arrangement.clone() };
    let mut spec = scale.spec(policy, workload.clone());
    spec.record_trace = true;
    spec.trials = 1;
    let trial = run_single_trial(&spec, 0);
    let events = trial.traces.expect("tracing enabled");
    let end_ns = trial.makespan_ns;

    let producers: Vec<usize> = (0..scale.procs)
        .filter(|&p| workload.role_of(p, scale.procs) == Some(Role::Producer))
        .collect();

    let mut first_steal: Vec<(u64, usize)> = producers
        .iter()
        .filter_map(|&p| {
            events
                .iter()
                .find(|e| e.kind == TraceKind::StealFrom && e.seg == SegIdx::new(p))
                .map(|e| (e.t_ns, p))
        })
        .collect();
    first_steal.sort_unstable();
    let producer_first_steal_order: Vec<usize> = first_steal.iter().map(|&(_, p)| p).collect();
    let producers_never_stolen: Vec<usize> =
        producers.iter().copied().filter(|p| !producer_first_steal_order.contains(p)).collect();

    TraceData {
        figure,
        procs: scale.procs,
        producers,
        events,
        end_ns,
        producer_first_steal_order,
        producers_never_stolen,
    }
}

/// Resamples one segment's size into `buckets` samples over the trial.
pub fn segment_size_series(data: &TraceData, seg: usize, buckets: usize) -> Vec<u32> {
    let mut series = vec![0u32; buckets];
    let mut size = 0u32;
    let mut events = data.events.iter().filter(|e| e.seg == SegIdx::new(seg)).peekable();
    let end = data.end_ns.max(1);
    for (b, slot) in series.iter_mut().enumerate() {
        let bucket_end = (b as u64 + 1) * end / buckets as u64;
        while let Some(e) = events.peek() {
            if e.t_ns <= bucket_end {
                size = e.len;
                events.next();
            } else {
                break;
            }
        }
        *slot = size;
    }
    series
}

/// Renders the figure as per-segment sparklines plus the coverage verdict.
pub fn render(data: &TraceData) -> String {
    const GLYPHS: &[u8] = b" .:-=+*#%@";
    let width = 72;
    let max_size = data.events.iter().map(|e| e.len).max().unwrap_or(1).max(1);

    let (policy, arrangement) = data.figure.config();
    let mut out = format!(
        "Figure {}: segment sizes over time ({policy} search, {arrangement} producers)\n\
         each row is one segment; darker = more elements (max observed {max_size})\n\n",
        data.figure.number(),
    );
    for seg in 0..data.procs {
        let role = if data.producers.contains(&seg) { "P" } else { "c" };
        let series = segment_size_series(data, seg, width);
        let line: String = series
            .iter()
            .map(|&s| {
                let level = (s as usize * (GLYPHS.len() - 1)).div_ceil(max_size as usize);
                GLYPHS[level.min(GLYPHS.len() - 1)] as char
            })
            .collect();
        out.push_str(&format!("S{seg:02} {role} |{line}|\n"));
    }
    out.push_str(&format!(
        "\nproducers: {:?}\nfirst-steal order of producers: {:?}\nproducers never stolen from: {:?}\n",
        data.producers, data.producer_first_steal_order, data.producers_never_stolen
    ));
    out
}

/// Summary table across all four figures (used by the `run_all` artifact).
pub fn coverage_table(datas: &[TraceData]) -> TextTable {
    let mut table = TextTable::new(vec![
        "figure",
        "policy",
        "arrangement",
        "producers",
        "stolen-from (in order)",
        "never stolen",
    ]);
    for d in datas {
        let (policy, arrangement) = d.figure.config();
        table.row(vec![
            format!("Fig {}", d.figure.number()),
            policy.to_string(),
            arrangement.to_string(),
            format!("{:?}", d.producers),
            format!("{:?}", d.producer_first_steal_order),
            format!("{:?}", d.producers_never_stolen),
        ]);
    }
    table
}

/// CSV export of the raw events.
pub fn csv_rows(data: &TraceData) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["t_ns", "proc", "seg", "len", "kind"];
    let rows = data
        .events
        .iter()
        .map(|e| {
            vec![
                e.t_ns.to_string(),
                e.proc.index().to_string(),
                e.seg.index().to_string(),
                e.len.to_string(),
                format!("{:?}", e.kind),
            ]
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { procs: 8, total_ops: 600, trials: 1, seed: 5 }
    }

    #[test]
    fn fig3_shows_contiguous_producers() {
        let data = generate(TraceFigure::Fig3, &tiny());
        // 8 procs -> 8*5/16 = 2 producers, contiguous at {0, 1}.
        assert_eq!(data.producers, vec![0, 1]);
        assert!(!data.events.is_empty());
        let text = render(&data);
        assert!(text.contains("Figure 3"));
        assert!(text.contains("S00 P"));
        assert!(text.contains("S07 c"));
    }

    #[test]
    fn fig4_spreads_producers() {
        let data = generate(TraceFigure::Fig4, &tiny());
        assert_eq!(data.producers, vec![0, 4], "balanced stride for 2 of 8");
    }

    #[test]
    fn series_resampling_is_monotone_in_time() {
        let data = generate(TraceFigure::Fig5, &tiny());
        for seg in 0..data.procs {
            let series = segment_size_series(&data, seg, 24);
            assert_eq!(series.len(), 24);
        }
    }

    #[test]
    fn coverage_table_renders() {
        let d3 = generate(TraceFigure::Fig3, &tiny());
        let d4 = generate(TraceFigure::Fig4, &tiny());
        let table = coverage_table(&[d3, d4]);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn csv_export_shape() {
        let data = generate(TraceFigure::Fig6, &tiny());
        let (headers, rows) = csv_rows(&data);
        assert_eq!(headers.len(), 5);
        assert_eq!(rows.len(), data.events.len());
    }
}
