//! Scaling beyond the paper's hardware: pools of 4 to 64 segments.
//!
//! §3.1: "We have experimented with 16-processor pools on our 32-node
//! Butterfly ... Unfortunately, since a few of the 32 nodes are devoted to
//! system tasks, a 32-segment pool cannot be properly simulated." The
//! virtual-time engine has no such limit, so this experiment runs the
//! sweep the authors could not: every search algorithm at 4–64 segments,
//! under a sparse random mix (steal-heavy, where the algorithms differ)
//! and under the balanced producer/consumer model.
//!
//! The question the paper leaves open is whether the tree's O(log n)
//! subtree-skipping starts to pay off at larger configurations, where a
//! linear lap costs Θ(n) remote probes.

use cpool::PolicyKind;
use workload::{Arrangement, JobMix, Workload};

use crate::chart::Chart;
use crate::run::run_experiment;
use crate::table::TextTable;

use super::Scale;

/// Workload class swept by the scaling experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScalingWorkload {
    /// Random operations at a sparse 30% add mix.
    SparseMix,
    /// Producer/consumer, one quarter producers, balanced arrangement.
    BalancedProdCons,
}

impl ScalingWorkload {
    fn workload(self, procs: usize) -> Workload {
        match self {
            ScalingWorkload::SparseMix => Workload::RandomMix { mix: JobMix::from_percent(30) },
            ScalingWorkload::BalancedProdCons => Workload::ProducerConsumer {
                producers: (procs / 4).max(1),
                arrangement: Arrangement::Balanced,
            },
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ScalingWorkload::SparseMix => "random 30% adds",
            ScalingWorkload::BalancedProdCons => "prod/cons n/4 balanced",
        }
    }
}

/// One (segments, policy) measurement.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Pool size (segments = processes).
    pub procs: usize,
    /// Search policy.
    pub policy: PolicyKind,
    /// Mean operation time, µs.
    pub avg_op_us: f64,
    /// Segments examined per search.
    pub segments_per_steal: f64,
    /// Elements stolen per successful steal.
    pub elements_per_steal: f64,
    /// Modelled completion time, ms.
    pub makespan_ms: f64,
}

/// The scaling sweep data.
#[derive(Clone, Debug)]
pub struct ScalingSweep {
    /// All measurements, grouped by pool size then policy.
    pub points: Vec<Point>,
    /// The workload that was swept.
    pub workload: ScalingWorkload,
    /// The pool sizes swept.
    pub sizes: Vec<usize>,
}

/// Runs the sweep over `sizes` (defaults in `generate`).
pub fn generate_with_sizes(
    scale: &Scale,
    workload: ScalingWorkload,
    sizes: &[usize],
) -> ScalingSweep {
    let mut points = Vec::new();
    for &procs in sizes {
        for policy in PolicyKind::ALL {
            // Keep the paper's per-segment ratios: 20 initial elements and
            // 312 ops per process.
            let sub = Scale {
                procs,
                total_ops: scale.total_ops * procs as u64 / scale.procs.max(1) as u64,
                trials: scale.trials,
                seed: scale.seed,
            };
            let spec = sub.spec(policy, workload.workload(procs));
            let result = run_experiment(&spec);
            points.push(Point {
                procs,
                policy,
                avg_op_us: result.summary.avg_op_us.mean,
                segments_per_steal: result.summary.segments_per_steal.mean,
                elements_per_steal: result.summary.elements_per_steal.mean,
                makespan_ms: result.summary.makespan_ms.mean,
            });
        }
    }
    ScalingSweep { points, workload, sizes: sizes.to_vec() }
}

/// Runs the default sweep: 4, 8, 16, 32, 64 segments.
pub fn generate(scale: &Scale, workload: ScalingWorkload) -> ScalingSweep {
    generate_with_sizes(scale, workload, &[4, 8, 16, 32, 64])
}

/// Renders the sweep as a chart of op times plus the data table.
pub fn render(sweep: &ScalingSweep) -> String {
    let mut chart = Chart::new(
        format!("Scaling sweep ({}): average operation time", sweep.workload.label()),
        64,
        18,
    );
    chart.labels("segments (log scale positions)", "avg op time (us, modelled)");
    for (policy, marker) in
        [(PolicyKind::Tree, 't'), (PolicyKind::Linear, 'l'), (PolicyKind::Random, 'r')]
    {
        chart.series(
            policy.to_string(),
            sweep
                .points
                .iter()
                .filter(|p| p.policy == policy)
                .map(|p| ((p.procs as f64).log2(), p.avg_op_us))
                .collect(),
            marker,
        );
    }

    let mut table = TextTable::new(vec![
        "segments",
        "policy",
        "avg op (us)",
        "segs/steal",
        "elems/steal",
        "makespan (ms)",
    ]);
    for p in &sweep.points {
        table.row(vec![
            p.procs.to_string(),
            p.policy.to_string(),
            format!("{:.1}", p.avg_op_us),
            fmt_nan(p.segments_per_steal),
            fmt_nan(p.elements_per_steal),
            format!("{:.2}", p.makespan_ms),
        ]);
    }
    format!("{}\n{}", chart.render(), table)
}

fn fmt_nan(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// CSV export.
pub fn csv_rows(sweep: &ScalingSweep) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "segments",
        "policy",
        "avg_op_us",
        "segments_per_steal",
        "elements_per_steal",
        "makespan_ms",
    ];
    let rows = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                p.procs.to_string(),
                p.policy.to_string(),
                format!("{:.4}", p.avg_op_us),
                format!("{:.4}", p.segments_per_steal),
                format!("{:.4}", p.elements_per_steal),
                format!("{:.4}", p.makespan_ms),
            ]
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_sizes_and_policies() {
        let scale = Scale { procs: 8, total_ops: 400, trials: 1, seed: 3 };
        let sweep = generate_with_sizes(&scale, ScalingWorkload::SparseMix, &[4, 8]);
        assert_eq!(sweep.points.len(), 6, "2 sizes x 3 policies");
        for p in &sweep.points {
            assert!(p.avg_op_us > 0.0, "{p:?}");
        }
        let text = render(&sweep);
        assert!(text.contains("Scaling sweep"));
        let (_, rows) = csv_rows(&sweep);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn tree_probes_grow_slower_than_linear() {
        // The structural scaling claim: per steal, the tree examines fewer
        // segments than linear search, and the gap widens with pool size.
        let scale = Scale { procs: 8, total_ops: 800, trials: 2, seed: 9 };
        let sweep = generate_with_sizes(&scale, ScalingWorkload::SparseMix, &[8, 32]);
        let probe = |procs: usize, policy: PolicyKind| {
            sweep
                .points
                .iter()
                .find(|p| p.procs == procs && p.policy == policy)
                .expect("point exists")
                .segments_per_steal
        };
        for procs in [8usize, 32] {
            assert!(
                probe(procs, PolicyKind::Tree) <= probe(procs, PolicyKind::Linear),
                "tree examines fewer segments at {procs} segments"
            );
        }
    }
}
