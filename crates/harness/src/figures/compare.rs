//! §4.1/§4.3: head-to-head comparison of the three search algorithms.
//!
//! Paper reading: "the tree search algorithm tends to have similar, though
//! slightly slower, times ... It compares much less favorably under the
//! random operations pattern when the job mix is sparse. For job mixes with
//! more than 50% adds the three algorithms are nearly identical. ... The
//! tree algorithm, however, examines many fewer segments in the course of a
//! steal ... and it also tends to steal more elements."

use cpool::PolicyKind;
use workload::{Arrangement, JobMix, Workload};

use crate::metrics::Summary;
use crate::run::run_experiment;
use crate::table::TextTable;

use super::Scale;

/// One cell of the comparison: a (policy, workload) pairing and its §3.4
/// measurements.
#[derive(Clone, Debug)]
pub struct CompareCell {
    /// Search algorithm.
    pub policy: PolicyKind,
    /// Short workload label.
    pub workload: String,
    /// Aggregated measurements.
    pub summary: Summary,
}

/// The comparison grid.
#[derive(Clone, Debug)]
pub struct Compare {
    /// Row-major cells: workloads × policies.
    pub cells: Vec<CompareCell>,
}

/// The workload suite the comparison runs (random mixes spanning sparse to
/// sufficient, plus both producer/consumer arrangements at the paper's
/// 5-of-16 ratio).
pub fn workload_suite(procs: usize) -> Vec<(String, Workload)> {
    let producers = (procs * 5 / 16).max(1);
    vec![
        ("random 20%".into(), Workload::RandomMix { mix: JobMix::from_percent(20) }),
        ("random 40%".into(), Workload::RandomMix { mix: JobMix::from_percent(40) }),
        ("random 60%".into(), Workload::RandomMix { mix: JobMix::from_percent(60) }),
        ("random 80%".into(), Workload::RandomMix { mix: JobMix::from_percent(80) }),
        (
            format!("prodcons {producers} contiguous"),
            Workload::ProducerConsumer { producers, arrangement: Arrangement::Contiguous },
        ),
        (
            format!("prodcons {producers} balanced"),
            Workload::ProducerConsumer { producers, arrangement: Arrangement::Balanced },
        ),
    ]
}

/// Runs the full comparison grid.
pub fn generate(scale: &Scale) -> Compare {
    let mut cells = Vec::new();
    for (label, workload) in workload_suite(scale.procs) {
        for policy in PolicyKind::ALL {
            let spec = scale.spec(policy, workload.clone());
            let result = run_experiment(&spec);
            cells.push(CompareCell { policy, workload: label.clone(), summary: result.summary });
        }
    }
    Compare { cells }
}

/// Renders the comparison as a table.
pub fn render(cmp: &Compare) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "policy",
        "avg op (us)",
        "avg add (us)",
        "avg rm (us)",
        "steal frac",
        "segs/steal",
        "elems/steal",
        "aborted",
    ]);
    for cell in &cmp.cells {
        let s = &cell.summary;
        table.row(vec![
            cell.workload.clone(),
            cell.policy.to_string(),
            s.avg_op_us.display(1),
            s.avg_add_us.display(1),
            s.avg_remove_us.display(1),
            s.steal_fraction.display(3),
            s.segments_per_steal.display(2),
            s.elements_per_steal.display(2),
            s.aborted.display(0),
        ]);
    }
    format!("Section 4.1/4.3: algorithm comparison\n{table}")
}

/// CSV export.
pub fn csv_rows(cmp: &Compare) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "workload",
        "policy",
        "avg_op_us",
        "avg_add_us",
        "avg_remove_us",
        "steal_fraction",
        "segments_per_steal",
        "elements_per_steal",
        "aborted",
        "tree_nodes",
        "magazine_hits",
        "depot_exchanges",
        "flush_on_wait",
    ];
    let rows = cmp
        .cells
        .iter()
        .map(|cell| {
            let s = &cell.summary;
            vec![
                cell.workload.clone(),
                cell.policy.to_string(),
                format!("{:.3}", s.avg_op_us.mean),
                format!("{:.3}", s.avg_add_us.mean),
                format!("{:.3}", s.avg_remove_us.mean),
                format!("{:.4}", s.steal_fraction.mean),
                format!("{:.3}", s.segments_per_steal.mean),
                format!("{:.3}", s.elements_per_steal.mean),
                format!("{:.1}", s.aborted.mean),
                format!("{:.1}", s.tree_nodes.mean),
                format!("{:.1}", s.magazine_hits.mean),
                format!("{:.1}", s.depot_exchanges.mean),
                format!("{:.1}", s.flush_on_wait.mean),
            ]
        })
        .collect();
    (headers, rows)
}

/// Convenience accessor: the summary for a given (workload, policy) cell.
pub fn cell<'a>(cmp: &'a Compare, workload: &str, policy: PolicyKind) -> Option<&'a Summary> {
    cmp.cells.iter().find(|c| c.workload == workload && c.policy == policy).map(|c| &c.summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_reproduces_the_papers_orderings() {
        let scale = Scale { procs: 8, total_ops: 800, trials: 3, seed: 2 };
        let cmp = generate(&scale);
        assert_eq!(cmp.cells.len(), 6 * 3);

        // "The tree algorithm examines many fewer segments in the course of
        // a steal than do either the linear or random algorithms" — check on
        // a steal-heavy workload.
        let tree = cell(&cmp, "random 20%", PolicyKind::Tree).unwrap();
        let linear = cell(&cmp, "random 20%", PolicyKind::Linear).unwrap();
        let random = cell(&cmp, "random 20%", PolicyKind::Random).unwrap();
        assert!(
            tree.segments_per_steal.mean <= linear.segments_per_steal.mean + 0.5
                && tree.segments_per_steal.mean <= random.segments_per_steal.mean + 0.5,
            "tree probes fewer segments: tree={:.2} linear={:.2} random={:.2}",
            tree.segments_per_steal.mean,
            linear.segments_per_steal.mean,
            random.segments_per_steal.mean
        );

        // "For job mixes with more than 50% adds the three algorithms are
        // nearly identical": at 80% adds steals are rare, so op times agree
        // within a factor well under the sparse-mix gaps.
        let t80 = cell(&cmp, "random 80%", PolicyKind::Tree).unwrap().avg_op_us.mean;
        let l80 = cell(&cmp, "random 80%", PolicyKind::Linear).unwrap().avg_op_us.mean;
        assert!(
            (t80 - l80).abs() / l80 < 0.25,
            "sufficient-mix times nearly identical: tree={t80:.1} linear={l80:.1}"
        );

        let text = render(&cmp);
        assert!(text.contains("tree"));
        let (_, rows) = csv_rows(&cmp);
        assert_eq!(rows.len(), 18);
    }
}
