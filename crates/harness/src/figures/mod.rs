//! Regenerators for every figure and table of Kotz & Ellis (1989).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Figure 2 — average operation time vs. job mix (tree search, random vs. producer/consumer models) |
//! | [`traces`] | Figures 3–6 — segment sizes over time (linear/tree × contiguous/balanced producers) |
//! | [`fig7`] | Figure 7 (errata applied) — elements stolen per steal vs. number of producers |
//! | [`compare`] | §4.1/§4.3 — comparison of the three algorithms across workloads |
//! | [`delay`] | §4.3 — remote-access delay sweep (1 µs → 100 ms) |
//!
//! Two extension experiments go beyond the paper:
//!
//! | Module | Extension |
//! |---|---|
//! | [`hint_ablation`] | §5 future work: the hint mechanism on/off |
//! | [`scaling`] | §3.1's missing experiment: pools of 4–64 segments |
//! | [`lifecycle`] | §3.5's fill/stable/drain phases, run as one workload |
//!
//! Every regenerator takes a [`Scale`] so the full paper-sized versions and
//! fast test-sized versions share one code path, and returns a plain data
//! struct with `render` (terminal figure) and `csv_rows` (artifact export)
//! companions.

pub mod compare;
pub mod delay;
pub mod fig2;
pub mod fig7;
pub mod hint_ablation;
pub mod lifecycle;
pub mod scaling;
pub mod traces;

use cpool::PolicyKind;
use workload::Workload;

use crate::spec::ExperimentSpec;

/// Experiment scale: the knobs shared by all figures.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Number of processes (= segments).
    pub procs: usize,
    /// Combined operations per trial.
    pub total_ops: u64,
    /// Trials averaged per data point.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's scale: 16 processes, 5000 operations, 10 trials.
    pub fn paper() -> Self {
        Scale { procs: 16, total_ops: 5000, trials: 10, seed: 1989 }
    }

    /// A small scale for fast tests and smoke runs.
    pub fn tiny() -> Self {
        Scale { procs: 8, total_ops: 600, trials: 2, seed: 7 }
    }

    /// Builds the paper-baseline spec at this scale.
    ///
    /// The initial fill keeps the paper's 20 elements per segment.
    pub fn spec(&self, policy: PolicyKind, workload: Workload) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper(policy, workload);
        spec.procs = self.procs;
        spec.initial_elements = 20 * self.procs as u64;
        spec.total_ops = self.total_ops;
        spec.trials = self.trials;
        spec.seed = self.seed;
        spec
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::JobMix;

    #[test]
    fn paper_scale_matches_section_3_4() {
        let s = Scale::paper();
        assert_eq!(s.procs, 16);
        assert_eq!(s.total_ops, 5000);
        assert_eq!(s.trials, 10);
        let spec = s.spec(PolicyKind::Tree, Workload::RandomMix { mix: JobMix::from_percent(50) });
        assert_eq!(spec.initial_elements, 320);
    }

    #[test]
    fn tiny_scale_keeps_fill_ratio() {
        let s = Scale::tiny();
        let spec =
            s.spec(PolicyKind::Linear, Workload::RandomMix { mix: JobMix::from_percent(50) });
        assert_eq!(spec.initial_elements, 20 * s.procs as u64);
    }
}
