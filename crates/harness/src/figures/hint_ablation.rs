//! Extension ablation: the §5 hint mechanism (`cpool::hints`) on/off.
//!
//! The paper closes by asking "how might concurrent pools be modified so
//! that searching processors leave hints in the pool, and elements added by
//! another processor can be directed to the searching process[?]". This
//! experiment quantifies our answer across the producer/consumer sweep:
//! hints are a large win under extreme starvation (one producer: both the
//! probe count and the modelled completion time drop by >2×) and a
//! structural no-op once steals succeed within a lap (≥ ~1/3 producers),
//! because nobody ever posts on the board.

use cpool::PolicyKind;
use workload::{Arrangement, Workload};

use crate::chart::Chart;
use crate::run::run_experiment;
use crate::table::TextTable;

use super::Scale;

/// Measurements for one configuration (hints off vs. on).
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Number of producers.
    pub producers: usize,
    /// Modelled completion time without hints, ms.
    pub makespan_off_ms: f64,
    /// Modelled completion time with hints, ms.
    pub makespan_on_ms: f64,
    /// Segments examined per trial without hints.
    pub probes_off: f64,
    /// Segments examined per trial with hints.
    pub probes_on: f64,
    /// Adds donated directly to searchers (hints on).
    pub donated: f64,
    /// Removes satisfied by a donation (hints on).
    pub hinted: f64,
}

/// The ablation data.
#[derive(Clone, Debug)]
pub struct HintAblation {
    /// One point per producer count `1..procs` (0 and `procs` are
    /// degenerate: nothing flows).
    pub points: Vec<Point>,
    /// Search policy used.
    pub policy: PolicyKind,
}

/// Runs the ablation under the linear policy (the paper's recommended
/// simple algorithm).
pub fn generate(scale: &Scale) -> HintAblation {
    generate_for_policy(scale, PolicyKind::Linear)
}

/// Runs the ablation under any policy.
pub fn generate_for_policy(scale: &Scale, policy: PolicyKind) -> HintAblation {
    let points = (1..scale.procs)
        .map(|producers| {
            let workload =
                Workload::ProducerConsumer { producers, arrangement: Arrangement::Contiguous };
            let spec_off = scale.spec(policy, workload.clone());
            let spec_on = spec_off.clone().with_hints();
            let off = run_experiment(&spec_off);
            let on = run_experiment(&spec_on);
            let merged_on = on.trials[0].merged.clone();
            Point {
                producers,
                makespan_off_ms: off.summary.makespan_ms.mean,
                makespan_on_ms: on.summary.makespan_ms.mean,
                probes_off: mean_probes(&off),
                probes_on: mean_probes(&on),
                donated: merged_on.donated_adds as f64,
                hinted: merged_on.hinted_removes as f64,
            }
        })
        .collect();
    HintAblation { points, policy }
}

fn mean_probes(result: &crate::metrics::ExperimentResult) -> f64 {
    let total: u64 = result.trials.iter().map(|t| t.merged.segments_examined).sum();
    total as f64 / result.trials.len() as f64
}

/// Renders the ablation as a chart of makespans plus the full table.
pub fn render(fig: &HintAblation) -> String {
    let mut chart = Chart::new(
        format!("Hint extension ablation ({} search): modelled completion time", fig.policy),
        64,
        18,
    );
    chart.labels("number of producers", "makespan (ms, modelled)");
    chart.series(
        "hints off",
        fig.points.iter().map(|p| (p.producers as f64, p.makespan_off_ms)).collect(),
        'o',
    );
    chart.series(
        "hints on",
        fig.points.iter().map(|p| (p.producers as f64, p.makespan_on_ms)).collect(),
        'h',
    );

    let mut table = TextTable::new(vec![
        "producers",
        "makespan off (ms)",
        "makespan on (ms)",
        "probes off",
        "probes on",
        "donated",
        "hinted removes",
    ]);
    for p in &fig.points {
        table.row(vec![
            p.producers.to_string(),
            format!("{:.2}", p.makespan_off_ms),
            format!("{:.2}", p.makespan_on_ms),
            format!("{:.0}", p.probes_off),
            format!("{:.0}", p.probes_on),
            format!("{:.0}", p.donated),
            format!("{:.0}", p.hinted),
        ]);
    }
    format!("{}\n{}", chart.render(), table)
}

/// CSV export.
pub fn csv_rows(fig: &HintAblation) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "producers",
        "makespan_off_ms",
        "makespan_on_ms",
        "probes_off",
        "probes_on",
        "donated_adds",
        "hinted_removes",
    ];
    let rows = fig
        .points
        .iter()
        .map(|p| {
            vec![
                p.producers.to_string(),
                format!("{:.4}", p.makespan_off_ms),
                format!("{:.4}", p.makespan_on_ms),
                format!("{:.1}", p.probes_off),
                format!("{:.1}", p.probes_on),
                format!("{:.0}", p.donated),
                format!("{:.0}", p.hinted),
            ]
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_help_at_one_producer_and_vanish_when_sufficient() {
        let scale = Scale { procs: 8, total_ops: 800, trials: 2, seed: 5 };
        let fig = generate(&scale);
        assert_eq!(fig.points.len(), 7);

        let starving = &fig.points[0]; // 1 producer
        assert!(
            starving.makespan_on_ms < starving.makespan_off_ms,
            "hints shorten the starving run: {starving:?}"
        );
        assert!(starving.donated > 0.0);

        let comfortable = fig.points.last().unwrap(); // procs-1 producers
        assert_eq!(comfortable.donated, 0.0, "no fruitless laps, no donations");
        assert!(
            (comfortable.makespan_on_ms - comfortable.makespan_off_ms).abs() < 1e-9,
            "hinted pool degrades to the plain pool"
        );

        let text = render(&fig);
        assert!(text.contains("Hint extension ablation"));
        let (_, rows) = csv_rows(&fig);
        assert_eq!(rows.len(), 7);
    }
}
