//! The §3.5 lifecycle, run as one experiment instead of three.
//!
//! "It is easy to imagine an application which has an initial phase with
//! more than sufficient adds (as the pool is filled), a stable phase, and a
//! more sparse termination phase (as the pool is emptied). Our experiments
//! have essentially examined these phases separately." — this regenerator
//! runs them *together* with a [`Workload::Phased`] stream (fill at 90%
//! adds, stable at 50%, drain at 10%) and reads the lifecycle off the
//! segment-size traces: the total pool size rises, plateaus, and falls,
//! and the steal share of removes concentrates in the drain phase.

use cpool::{PolicyKind, TraceEvent, TraceKind};
use workload::{JobMix, Workload};

use crate::chart::Chart;
use crate::run::run_single_trial;
use crate::table::TextTable;

use super::Scale;

/// Pool-size time series plus per-epoch steal shares for one policy.
#[derive(Clone, Debug)]
pub struct LifecycleRun {
    /// Search policy.
    pub policy: PolicyKind,
    /// `(virtual time ns, total pool size)` samples, one per trace event.
    pub size_series: Vec<(u64, u64)>,
    /// Steal share of removes in each time epoch (thirds of the makespan).
    pub steal_share: [f64; 3],
    /// Event counts per epoch: (adds, local removes, steals).
    pub epoch_counts: [(u64, u64, u64); 3],
}

/// The lifecycle data for all three policies.
#[derive(Clone, Debug)]
pub struct Lifecycle {
    /// One run per policy, in `PolicyKind::ALL` order.
    pub runs: Vec<LifecycleRun>,
    /// The per-process phase schedule used, `(ops, add-percent)`.
    pub phases: Vec<(u64, u32)>,
}

/// The default fill/stable/drain schedule for a given total budget: one
/// quarter of each process's expected share filling at 90% adds, one
/// quarter stable at 50%, and the remaining half draining at 10% — long
/// enough that the drain exhausts both the initial fill and the fill
/// phase's surplus, so the termination behaviour (steals, then aborts)
/// actually appears.
pub fn paper_phases(scale: &Scale) -> Vec<(u64, u32)> {
    let per_proc = scale.total_ops / scale.procs as u64;
    vec![(per_proc / 4, 90), (per_proc / 4, 50), (0, 10)]
}

/// Runs the lifecycle experiment (single trial per policy; the trace is the
/// object of interest, and the virtual-time engine makes it deterministic).
pub fn generate(scale: &Scale) -> Lifecycle {
    let phases = paper_phases(scale);
    let workload = Workload::Phased {
        phases: phases.iter().map(|&(ops, pct)| (ops, JobMix::from_percent(pct))).collect(),
    };
    let runs = PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let mut spec = scale.spec(policy, workload.clone());
            spec.trials = 1;
            spec.record_trace = true;
            let trial = run_single_trial(&spec, 0);
            let events = trial.traces.expect("tracing enabled");
            analyze(policy, &events, spec.initial_elements, spec.procs)
        })
        .collect();
    Lifecycle { runs, phases }
}

/// Reconstructs the total-size series and epoch steal shares from a trace.
fn analyze(
    policy: PolicyKind,
    events: &[TraceEvent],
    initial_elements: u64,
    procs: usize,
) -> LifecycleRun {
    // Total pool size = sum of last-known per-segment sizes.
    let mut seg_size: Vec<u64> = vec![initial_elements / procs as u64; procs];
    // Distribute the fill remainder like fill_evenly does (first segments).
    for extra_seg in seg_size.iter_mut().take((initial_elements % procs as u64) as usize) {
        *extra_seg += 1;
    }
    let mut size_series = Vec::with_capacity(events.len());
    for e in events {
        seg_size[e.seg.index()] = u64::from(e.len);
        size_series.push((e.t_ns, seg_size.iter().sum()));
    }

    let end = events.last().map_or(1, |e| e.t_ns.max(1));
    let epoch_of = |t: u64| ((t * 3 / end) as usize).min(2);
    let mut epoch_counts = [(0u64, 0u64, 0u64); 3];
    for e in events {
        let slot = &mut epoch_counts[epoch_of(e.t_ns)];
        match e.kind {
            TraceKind::Add => slot.0 += 1,
            TraceKind::Remove => slot.1 += 1,
            TraceKind::StealFrom => slot.2 += 1,
            TraceKind::StealInto => {}
        }
    }
    let steal_share = epoch_counts.map(|(_, removes, steals)| {
        let attempts = removes + steals;
        if attempts == 0 {
            0.0
        } else {
            steals as f64 / attempts as f64
        }
    });
    LifecycleRun { policy, size_series, steal_share, epoch_counts }
}

/// Renders the lifecycle: pool-size curves plus the epoch table.
pub fn render(data: &Lifecycle) -> String {
    let mut chart = Chart::new(
        "Lifecycle (fill 90% / stable 50% / drain 10%): total pool size over time",
        64,
        18,
    );
    chart.labels("virtual time (normalized)", "elements in pool");
    for (run, marker) in data.runs.iter().zip(['t', 'l', 'r']) {
        let end = run.size_series.last().map_or(1, |&(t, _)| t.max(1));
        chart.series(
            run.policy.to_string(),
            run.size_series
                .iter()
                .step_by((run.size_series.len() / 200).max(1))
                .map(|&(t, s)| (t as f64 / end as f64, s as f64))
                .collect(),
            marker,
        );
    }

    let mut table =
        TextTable::new(vec!["policy", "epoch", "adds", "local removes", "steals", "steal share"]);
    for run in &data.runs {
        for (i, name) in ["early", "middle", "late"].iter().enumerate() {
            let (adds, removes, steals) = run.epoch_counts[i];
            table.row(vec![
                run.policy.to_string(),
                (*name).to_string(),
                adds.to_string(),
                removes.to_string(),
                steals.to_string(),
                format!("{:.3}", run.steal_share[i]),
            ]);
        }
    }
    format!("{}\n{}", chart.render(), table)
}

/// CSV export (the epoch summary; the raw series goes to its own file).
pub fn csv_rows(data: &Lifecycle) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["policy", "epoch", "adds", "local_removes", "steals", "steal_share"];
    let mut rows = Vec::new();
    for run in &data.runs {
        for (i, name) in ["early", "middle", "late"].iter().enumerate() {
            let (adds, removes, steals) = run.epoch_counts[i];
            rows.push(vec![
                run.policy.to_string(),
                (*name).to_string(),
                adds.to_string(),
                removes.to_string(),
                steals.to_string(),
                format!("{:.4}", run.steal_share[i]),
            ]);
        }
    }
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_rises_then_falls_and_steals_late() {
        let scale = Scale { procs: 8, total_ops: 2_000, trials: 1, seed: 21 };
        let data = generate(&scale);
        assert_eq!(data.runs.len(), 3);

        for run in &data.runs {
            let sizes: Vec<u64> = run.size_series.iter().map(|&(_, s)| s).collect();
            let peak = *sizes.iter().max().expect("events exist");
            let first = *sizes.first().expect("events exist");
            let last = *sizes.last().expect("events exist");
            assert!(
                peak > first && peak as f64 > last as f64 * 1.5,
                "{}: pool fills then drains (first={first} peak={peak} last={last})",
                run.policy
            );
            assert!(
                run.steal_share[2] > run.steal_share[0],
                "{}: steals concentrate in the drain phase: {:?}",
                run.policy,
                run.steal_share
            );
        }

        let text = render(&data);
        assert!(text.contains("Lifecycle"));
        let (_, rows) = csv_rows(&data);
        assert_eq!(rows.len(), 9);
    }
}
