//! A tiny `--key value` argument parser for the benchmark binaries.
//!
//! Hand-rolled to keep the dependency set to the crates the experiments
//! actually need. Supports `--key value`, `--key=value`, and bare `--flag`.

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process's arguments (skipping `argv[0]`).
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                continue; // positional arguments are not used by the bins
            };
            if let Some((k, v)) = key.split_once('=') {
                parsed.values.insert(k.to_string(), v.to_string());
            } else if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                let value = iter.next().expect("peeked");
                parsed.values.insert(key.to_string(), value);
            } else {
                parsed.flags.push(key.to_string());
            }
        }
        parsed
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether bare `--key` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parses `--key` as `T`, with a default.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if the value does not parse.
    pub fn parse_or<T: FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => default,
            Some(raw) => match raw.parse() {
                Ok(v) => v,
                Err(e) => panic!("invalid --{key} {raw:?}: {e}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn key_value_pairs() {
        let a = args(&["--trials", "3", "--seed=99"]);
        assert_eq!(a.parse_or("trials", 10u32), 3);
        assert_eq!(a.parse_or("seed", 0u64), 99);
        assert_eq!(a.parse_or("missing", 7i32), 7);
    }

    #[test]
    fn bare_flags() {
        let a = args(&["--verbose", "--ops", "100"]);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.parse_or("ops", 0u64), 100);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = args(&["--fast", "--trials", "2"]);
        assert!(a.flag("fast"));
        assert_eq!(a.parse_or("trials", 0u32), 2);
    }

    #[test]
    #[should_panic(expected = "invalid --trials")]
    fn bad_value_panics() {
        let a = args(&["--trials", "many"]);
        let _ = a.parse_or("trials", 0u32);
    }

    #[test]
    fn string_values() {
        let a = args(&["--policy", "tree"]);
        assert_eq!(a.get("policy"), Some("tree"));
        assert_eq!(a.parse_or("policy", cpool::PolicyKind::Linear), cpool::PolicyKind::Tree);
    }
}
