//! Plain-text tables for experiment reports.

use std::fmt;

/// A right-padded, column-aligned text table.
///
/// ```
/// use harness::TextTable;
/// let mut t = TextTable::new(vec!["algo", "ops"]);
/// t.row(vec!["tree".into(), "5000".into()]);
/// t.row(vec!["linear".into(), "5000".into()]);
/// let text = t.to_string();
/// assert!(text.contains("tree"));
/// assert!(text.lines().count() >= 4, "header, rule, two rows");
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells; table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows as raw cells (for CSV export).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        // Second column starts at the same offset in all rows.
        let col = lines[0].find("bbbb").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn ragged_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table_renders_header_and_rule() {
        let t = TextTable::new(vec!["h1", "h2"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
