//! ASCII line/scatter charts for terminal figure reproduction.
//!
//! The paper's figures are simple xy-plots; these render directly in the
//! terminal (and in `EXPERIMENTS.md`) so the reproduction is inspectable
//! without a plotting stack.

/// One plotted series: a label, the points, and the glyph that draws them.
#[derive(Clone, Debug)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
    glyph: char,
}

/// An xy chart rendered as text.
///
/// ```
/// use harness::Chart;
/// let mut c = Chart::new("demo", 40, 10);
/// c.series("linear", vec![(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)], '*');
/// let text = c.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains('*'));
/// ```
#[derive(Clone, Debug)]
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    x_label: String,
    y_label: String,
    log_x: bool,
    log_y: bool,
    series: Vec<Series>,
}

impl Chart {
    /// Creates an empty chart with a plotting area of `width`×`height`
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if the plot area is smaller than 2×2.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart area too small");
        Chart {
            title: title.into(),
            width,
            height,
            x_label: String::new(),
            y_label: String::new(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Sets the axis labels.
    pub fn labels(&mut self, x: impl Into<String>, y: impl Into<String>) -> &mut Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Plots x on a log₁₀ scale (points with `x <= 0` are dropped).
    pub fn log_x(&mut self) -> &mut Self {
        self.log_x = true;
        self
    }

    /// Plots y on a log₁₀ scale (points with `y <= 0` are dropped).
    pub fn log_y(&mut self) -> &mut Self {
        self.log_y = true;
        self
    }

    /// Adds a series.
    pub fn series(
        &mut self,
        label: impl Into<String>,
        points: Vec<(f64, f64)>,
        glyph: char,
    ) -> &mut Self {
        self.series.push(Series { label: label.into(), points, glyph });
        self
    }

    fn transformed(&self) -> Vec<(usize, Vec<(f64, f64)>)> {
        self.series
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let pts = s
                    .points
                    .iter()
                    .filter(|(x, y)| {
                        x.is_finite()
                            && y.is_finite()
                            && (!self.log_x || *x > 0.0)
                            && (!self.log_y || *y > 0.0)
                    })
                    .map(|&(x, y)| {
                        (
                            if self.log_x { x.log10() } else { x },
                            if self.log_y { y.log10() } else { y },
                        )
                    })
                    .collect();
                (i, pts)
            })
            .collect()
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let transformed = self.transformed();
        let all: Vec<(f64, f64)> =
            transformed.iter().flat_map(|(_, pts)| pts.iter().copied()).collect();
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if all.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let (mut x0, mut x1) = min_max(all.iter().map(|p| p.0));
        let (mut y0, mut y1) = min_max(all.iter().map(|p| p.1));
        if x0 == x1 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if y0 == y1 {
            y0 -= 0.5;
            y1 += 0.5;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, pts) in &transformed {
            let glyph = self.series[*si].glyph;
            for &(x, y) in pts {
                let cx = (((x - x0) / (x1 - x0)) * (self.width - 1) as f64).round() as usize;
                let cy = (((y - y0) / (y1 - y0)) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                let cell = &mut grid[row][cx.min(self.width - 1)];
                // Overlapping series show a '+'.
                *cell = if *cell == ' ' || *cell == glyph { glyph } else { '+' };
            }
        }

        let y_hi = format_tick(invert(y1, self.log_y));
        let y_lo = format_tick(invert(y0, self.log_y));
        let gutter = y_hi.len().max(y_lo.len());
        for (r, row) in grid.iter().enumerate() {
            let tick = if r == 0 {
                &y_hi
            } else if r == self.height - 1 {
                &y_lo
            } else {
                &String::new()
            };
            out.push_str(&format!("{tick:>gutter$} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>gutter$} +{}\n", "", "-".repeat(self.width)));
        let x_lo = format_tick(invert(x0, self.log_x));
        let x_hi = format_tick(invert(x1, self.log_x));
        let pad = self.width.saturating_sub(x_lo.len() + x_hi.len());
        out.push_str(&format!("{:>gutter$}  {x_lo}{}{x_hi}\n", "", " ".repeat(pad)));
        if !self.x_label.is_empty() || !self.y_label.is_empty() {
            out.push_str(&format!("{:>gutter$}  x: {}   y: {}\n", "", self.x_label, self.y_label));
        }
        for s in &self.series {
            out.push_str(&format!("{:>gutter$}  {} {}\n", "", s.glyph, s.label));
        }
        out
    }
}

fn invert(v: f64, log: bool) -> f64 {
    if log {
        10f64.powf(v)
    } else {
        v
    }
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let mut c = Chart::new("t", 20, 8);
        c.labels("x", "y");
        c.series("a", vec![(0.0, 0.0), (10.0, 10.0)], '*');
        c.series("b", vec![(0.0, 10.0), (10.0, 0.0)], 'o');
        let text = c.render();
        assert!(text.contains('*'));
        assert!(text.contains('o'));
        assert!(text.contains("a"));
        assert!(text.contains("x: x"));
    }

    #[test]
    fn empty_chart_says_no_data() {
        let c = Chart::new("t", 10, 4);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let mut c = Chart::new("t", 20, 6);
        c.log_x();
        c.series("a", vec![(0.0, 1.0), (1.0, 2.0), (100.0, 3.0)], '*');
        let text = c.render();
        // The zero-x point is dropped; chart still renders.
        assert!(text.contains('*'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut c = Chart::new("t", 10, 4);
        c.series("flat", vec![(1.0, 5.0), (2.0, 5.0)], '*');
        let text = c.render();
        assert!(text.contains('*'));
    }

    #[test]
    fn overlap_marked_with_plus() {
        let mut c = Chart::new("t", 10, 4);
        c.series("a", vec![(1.0, 1.0), (2.0, 2.0)], '*');
        c.series("b", vec![(1.0, 1.0), (2.0, 1.0)], 'o');
        assert!(c.render().contains('+'), "overlapping glyphs collapse to +");
    }
}
