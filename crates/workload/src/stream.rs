//! Per-process operation streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrangement::Role;
use crate::mix::JobMix;

/// One pool operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Add an element to the pool.
    Add,
    /// Remove an element from the pool.
    Remove,
}

/// An endless, per-process source of operations.
///
/// Streams are infinite; the experiment's *global*
/// [`OpBudget`](crate::OpBudget) decides when to stop, per the paper's
/// combined-total termination rule.
pub trait OpStream: Send {
    /// The next operation this process should perform.
    fn next_op(&mut self) -> Op;
}

/// The random operations model: "each process chooses its next operation
/// randomly to fit a predetermined overall job mix".
#[derive(Clone, Debug)]
pub struct RandomMixStream {
    mix: JobMix,
    rng: SmallRng,
}

impl RandomMixStream {
    /// Creates a stream drawing adds with probability `mix`.
    pub fn new(mix: JobMix, seed: u64) -> Self {
        RandomMixStream { mix, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The configured mix.
    pub fn mix(&self) -> JobMix {
        self.mix
    }
}

impl OpStream for RandomMixStream {
    fn next_op(&mut self) -> Op {
        if self.rng.gen_bool(self.mix.fraction()) {
            Op::Add
        } else {
            Op::Remove
        }
    }
}

/// The producer/consumer model: a process's role is fixed for the whole
/// trial ("this fixed assignment of each process's role as either producer
/// or consumer throughout an experiment is a simplifying assumption").
#[derive(Clone, Copy, Debug)]
pub struct RoleStream {
    role: Role,
}

impl RoleStream {
    /// Creates a stream for the given fixed role.
    pub fn new(role: Role) -> Self {
        RoleStream { role }
    }

    /// The fixed role.
    pub fn role(&self) -> Role {
        self.role
    }
}

impl OpStream for RoleStream {
    fn next_op(&mut self) -> Op {
        match self.role {
            Role::Producer => Op::Add,
            Role::Consumer => Op::Remove,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mix_tracks_target_fraction() {
        for percent in [0u32, 20, 50, 80, 100] {
            let mut s = RandomMixStream::new(JobMix::from_percent(percent), 11);
            let n = 20_000;
            let adds = (0..n).filter(|_| s.next_op() == Op::Add).count();
            let measured = adds as f64 / n as f64;
            let target = f64::from(percent) / 100.0;
            assert!((measured - target).abs() < 0.02, "target {target}, measured {measured}");
        }
    }

    #[test]
    fn extreme_mixes_are_exact() {
        let mut all_adds = RandomMixStream::new(JobMix::from_percent(100), 3);
        let mut all_removes = RandomMixStream::new(JobMix::from_percent(0), 3);
        for _ in 0..100 {
            assert_eq!(all_adds.next_op(), Op::Add);
            assert_eq!(all_removes.next_op(), Op::Remove);
        }
    }

    #[test]
    fn random_mix_is_deterministic() {
        let collect = |seed| {
            let mut s = RandomMixStream::new(JobMix::from_percent(50), seed);
            (0..64).map(|_| s.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn role_streams_never_waver() {
        let mut p = RoleStream::new(Role::Producer);
        let mut c = RoleStream::new(Role::Consumer);
        for _ in 0..50 {
            assert_eq!(p.next_op(), Op::Add);
            assert_eq!(c.next_op(), Op::Remove);
        }
    }
}
