//! Bursty producer/consumer phases: alternating add-heavy and
//! remove-heavy bursts.
//!
//! The paper's models hold each process's behaviour fixed (§3.3) or walk
//! through phases once (§3.5, [`PhasedStream`](crate::PhasedStream)). Real
//! applications also *oscillate* — a batch of work arrives, drains, and
//! arrives again. [`BurstyStream`] cycles between an add-heavy and a
//! remove-heavy job mix forever, switching every `burst_ops` operations.
//!
//! This is the stress pattern for handle-local magazine caches
//! (`cpool::magazine`): an add burst fills magazines and pushes full ones
//! to the depot, the following remove burst drains and raids them back, so
//! every burst boundary exercises the exchange machinery rather than the
//! pure-hit steady state.

use crate::mix::JobMix;
use crate::stream::{Op, OpStream, RandomMixStream};

/// An endless stream alternating add-heavy and remove-heavy bursts.
///
/// Starts in the add-heavy burst (filling first), switches mixes every
/// `burst_ops` operations, and never terminates — like every
/// [`OpStream`], the trial's [`OpBudget`](crate::OpBudget) decides when to
/// stop.
#[derive(Clone, Debug)]
pub struct BurstyStream {
    add_burst: RandomMixStream,
    remove_burst: RandomMixStream,
    burst_ops: u64,
    issued_in_burst: u64,
    in_add_burst: bool,
}

impl BurstyStream {
    /// Creates a stream alternating `burst_ops`-operation bursts of
    /// `add_heavy` and `remove_heavy` draws (both sub-streams derive their
    /// randomness from `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `burst_ops` is zero.
    pub fn new(burst_ops: u64, add_heavy: JobMix, remove_heavy: JobMix, seed: u64) -> Self {
        assert!(burst_ops > 0, "a burst must issue at least one operation");
        BurstyStream {
            add_burst: RandomMixStream::new(add_heavy, seed),
            remove_burst: RandomMixStream::new(remove_heavy, seed.wrapping_add(1)),
            burst_ops,
            issued_in_burst: 0,
            in_add_burst: true,
        }
    }

    /// The conventional magazine-churn configuration: 90%-add bursts
    /// alternating with 10%-add bursts.
    pub fn nine_to_one(burst_ops: u64, seed: u64) -> Self {
        BurstyStream::new(burst_ops, JobMix::from_percent(90), JobMix::from_percent(10), seed)
    }

    /// Whether the stream is currently in an add-heavy burst.
    pub fn in_add_burst(&self) -> bool {
        self.in_add_burst
    }

    /// Operations per burst.
    pub fn burst_ops(&self) -> u64 {
        self.burst_ops
    }
}

impl OpStream for BurstyStream {
    fn next_op(&mut self) -> Op {
        if self.issued_in_burst >= self.burst_ops {
            self.issued_in_burst = 0;
            self.in_add_burst = !self.in_add_burst;
        }
        self.issued_in_burst += 1;
        if self.in_add_burst {
            self.add_burst.next_op()
        } else {
            self.remove_burst.next_op()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_alternate_on_the_boundary() {
        // Degenerate mixes make the phase directly observable.
        let mut s = BurstyStream::new(3, JobMix::from_percent(100), JobMix::from_percent(0), 7);
        let ops: Vec<Op> = (0..12).map(|_| s.next_op()).collect();
        assert_eq!(
            ops,
            vec![
                Op::Add,
                Op::Add,
                Op::Add,
                Op::Remove,
                Op::Remove,
                Op::Remove,
                Op::Add,
                Op::Add,
                Op::Add,
                Op::Remove,
                Op::Remove,
                Op::Remove,
            ]
        );
    }

    #[test]
    fn bursts_track_their_own_mixes() {
        let burst = 10_000;
        let mut s = BurstyStream::nine_to_one(burst, 42);
        let adds = |s: &mut BurstyStream| {
            (0..burst).filter(|_| s.next_op() == Op::Add).count() as f64 / burst as f64
        };
        let add_phase = adds(&mut s);
        let remove_phase = adds(&mut s);
        assert!((add_phase - 0.9).abs() < 0.02, "add burst measured {add_phase}");
        assert!((remove_phase - 0.1).abs() < 0.02, "remove burst measured {remove_phase}");
    }

    #[test]
    fn bursty_is_deterministic() {
        let collect = |seed| {
            let mut s = BurstyStream::nine_to_one(16, seed);
            (0..128).map(|_| s.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn cycles_forever() {
        let mut s = BurstyStream::new(2, JobMix::from_percent(100), JobMix::from_percent(0), 0);
        let mut flips = 0;
        let mut last = s.in_add_burst();
        for _ in 0..100 {
            let _ = s.next_op();
            if s.in_add_burst() != last {
                flips += 1;
                last = s.in_add_burst();
            }
        }
        assert!(flips >= 48, "expected ~50 phase flips, saw {flips}");
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn zero_burst_panics() {
        let _ = BurstyStream::nine_to_one(0, 1);
    }
}
