//! Producer arrangements: §4.2's key experimental variable.
//!
//! "If the producers are assigned to a contiguous portion of this cycle,
//! then all consumers will encounter the same producer first ... the
//! consumers will remain in a tight bunch as they use the elements being
//! produced ... To correct this, the producers could be arranged in a
//! balanced manner ... spread out as much as possible."
//!
//! The paper's Figure 4/6 balanced placement of 5 producers among 16
//! processes is `{0, 2, 4, 8, 12}`; [`Arrangement::PaperBalanced`]
//! reproduces it exactly, while [`Arrangement::Balanced`] uses the even
//! stride `floor(i·n/k)` (for 5 of 16: `{0, 3, 6, 9, 12}`). Both satisfy
//! the property that matters: no two producers adjacent (for k ≤ n/2), with
//! consumers interleaved between producers.

use std::fmt;

/// A process's fixed role in the producer/consumer model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// Only performs add operations.
    Producer,
    /// Only performs remove operations.
    Consumer,
}

/// How producers are placed among the process ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Arrangement {
    /// Producers occupy ids `0..k` — the paper's *unbalanced* case that
    /// causes consumer bunching.
    Contiguous,
    /// Producers spread at even stride: producer `i` at `floor(i·n/k)`.
    Balanced,
    /// The exact placement used in the paper's Figures 4 and 6 for 5 of 16
    /// (`{0, 2, 4, 8, 12}`); falls back to [`Balanced`](Self::Balanced) for
    /// other shapes.
    PaperBalanced,
    /// Explicit producer positions.
    Custom(Vec<usize>),
}

impl Arrangement {
    /// Computes the role of every process for `producers` producers among
    /// `procs` processes.
    ///
    /// # Panics
    ///
    /// Panics if `producers > procs`, or if a custom placement is out of
    /// range or has the wrong cardinality.
    pub fn roles(&self, procs: usize, producers: usize) -> Vec<Role> {
        assert!(producers <= procs, "{producers} producers cannot fit among {procs} processes");
        let mut roles = vec![Role::Consumer; procs];
        match self {
            Arrangement::Contiguous => {
                for role in roles.iter_mut().take(producers) {
                    *role = Role::Producer;
                }
            }
            Arrangement::Balanced => {
                for i in 0..producers {
                    roles[i * procs / producers] = Role::Producer;
                }
            }
            Arrangement::PaperBalanced => {
                if procs == 16 && producers == 5 {
                    for &p in &[0usize, 2, 4, 8, 12] {
                        roles[p] = Role::Producer;
                    }
                } else {
                    return Arrangement::Balanced.roles(procs, producers);
                }
            }
            Arrangement::Custom(positions) => {
                assert_eq!(
                    positions.len(),
                    producers,
                    "custom arrangement must list exactly {producers} positions"
                );
                for &p in positions {
                    assert!(p < procs, "producer position {p} out of range");
                    assert_eq!(roles[p], Role::Consumer, "duplicate producer position {p}");
                    roles[p] = Role::Producer;
                }
            }
        }
        debug_assert_eq!(roles.iter().filter(|r| **r == Role::Producer).count(), producers);
        roles
    }

    /// Positions of the producers under this arrangement.
    pub fn producer_positions(&self, procs: usize, producers: usize) -> Vec<usize> {
        self.roles(procs, producers)
            .iter()
            .enumerate()
            .filter_map(|(i, r)| (*r == Role::Producer).then_some(i))
            .collect()
    }
}

impl fmt::Display for Arrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrangement::Contiguous => f.write_str("contiguous"),
            Arrangement::Balanced => f.write_str("balanced"),
            Arrangement::PaperBalanced => f.write_str("paper-balanced"),
            Arrangement::Custom(positions) => write!(f, "custom{positions:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(a: &Arrangement, procs: usize, producers: usize) -> Vec<usize> {
        a.producer_positions(procs, producers)
    }

    #[test]
    fn contiguous_is_a_prefix() {
        assert_eq!(positions(&Arrangement::Contiguous, 16, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn balanced_is_evenly_strided() {
        assert_eq!(positions(&Arrangement::Balanced, 16, 5), vec![0, 3, 6, 9, 12]);
        assert_eq!(positions(&Arrangement::Balanced, 16, 8), vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(positions(&Arrangement::Balanced, 16, 16), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn paper_balanced_matches_figures_4_and_6() {
        assert_eq!(positions(&Arrangement::PaperBalanced, 16, 5), vec![0, 2, 4, 8, 12]);
        // Other shapes fall back to the even stride.
        assert_eq!(
            positions(&Arrangement::PaperBalanced, 8, 2),
            positions(&Arrangement::Balanced, 8, 2)
        );
    }

    #[test]
    fn balanced_8_of_16_alternates() {
        // "eight producers and eight consumers would be arranged in an
        // alternating fashion."
        let roles = Arrangement::Balanced.roles(16, 8);
        for pair in roles.chunks(2) {
            assert_eq!(pair[0], Role::Producer);
            assert_eq!(pair[1], Role::Consumer);
        }
    }

    #[test]
    fn balanced_never_adjacent_when_half_or_fewer() {
        for procs in [8usize, 16, 32] {
            for producers in 1..=procs / 2 {
                let pos = positions(&Arrangement::Balanced, procs, producers);
                for w in pos.windows(2) {
                    assert!(w[1] - w[0] >= 2, "{producers}/{procs}: adjacent at {w:?}");
                }
            }
        }
    }

    #[test]
    fn zero_and_all_producers() {
        assert!(positions(&Arrangement::Balanced, 16, 0).is_empty());
        assert_eq!(positions(&Arrangement::Contiguous, 16, 16).len(), 16);
    }

    #[test]
    fn custom_placement_respected() {
        let a = Arrangement::Custom(vec![1, 5, 7]);
        assert_eq!(positions(&a, 8, 3), vec![1, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "duplicate producer position")]
    fn duplicate_custom_position_panics() {
        let _ = Arrangement::Custom(vec![1, 1]).roles(8, 2);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn too_many_producers_panics() {
        let _ = Arrangement::Contiguous.roles(4, 5);
    }
}
