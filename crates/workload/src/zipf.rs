//! Zipfian and uniform key generators for keyed-pool experiments.
//!
//! The paper's workloads treat every element as interchangeable; keyed
//! pools add a key dimension, and real key traffic is rarely uniform —
//! request frequencies follow a Zipf law (rank `r` drawn with probability
//! proportional to `r^-s`), so a handful of hot keys dominate. These
//! generators supply both extremes deterministically:
//!
//! * [`UniformKeys`] — every key equally likely (the implicit assumption
//!   the paper's model corresponds to);
//! * [`ZipfKeys`] — rank-frequency skew with exponent `s` (s ≈ 1 is the
//!   classic web/cache regime; larger `s` is more skewed), drawn by
//!   inverse-CDF lookup over a precomputed table, so each draw is one
//!   uniform sample plus a binary search.
//!
//! Streams are seeded and deterministic, like every other generator in
//! this crate: the same `(dist, seed)` replays the same key sequence.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An endless, per-process source of keys (the key-dimension analogue of
/// [`OpStream`](crate::OpStream)).
pub trait KeyStream: Send {
    /// The next key this process should operate on.
    fn next_key(&mut self) -> u64;
}

/// Uniform keys over `0..keys`: the no-skew baseline.
#[derive(Clone, Debug)]
pub struct UniformKeys {
    keys: u64,
    rng: SmallRng,
}

impl UniformKeys {
    /// Creates a uniform stream over `0..keys`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn new(keys: u64, seed: u64) -> Self {
        assert!(keys > 0, "a key stream needs at least one key");
        UniformKeys { keys, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl KeyStream for UniformKeys {
    fn next_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.keys)
    }
}

/// Zipf-distributed keys over `0..keys`: key `k` maps to rank `k` rotated
/// by an optional offset, so rank 0 (the hottest key) lands on
/// `offset % keys` — the offset is what lets phased scenarios *move* the
/// hot set without changing the distribution (see
/// [`hot_set_migration`](crate::phased::hot_set_migration)).
#[derive(Clone, Debug)]
pub struct ZipfKeys {
    /// Cumulative probabilities of ranks `0..keys`, normalized to end at
    /// 1.0; a draw binary-searches its uniform sample here.
    cdf: Vec<f64>,
    offset: u64,
    keys: u64,
    rng: SmallRng,
}

impl ZipfKeys {
    /// Creates a Zipf(`s`) stream over `0..keys` with the hottest key at 0.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or `s` is not a finite non-negative number
    /// (`s = 0` degenerates to uniform).
    pub fn new(keys: u64, s: f64, seed: u64) -> Self {
        Self::with_offset(keys, s, seed, 0)
    }

    /// [`new`](Self::new), with the rank→key mapping rotated so the
    /// hottest key is `offset % keys`.
    pub fn with_offset(keys: u64, s: f64, seed: u64, offset: u64) -> Self {
        assert!(keys > 0, "a key stream needs at least one key");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and >= 0, got {s}");
        let mut cdf = Vec::with_capacity(keys as usize);
        let mut total = 0.0_f64;
        for rank in 0..keys {
            total += (rank as f64 + 1.0).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfKeys { cdf, offset, keys, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The configured key-space size.
    pub fn keys(&self) -> u64 {
        self.keys
    }
}

impl KeyStream for ZipfKeys {
    fn next_key(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        // First rank whose cumulative probability exceeds the sample; the
        // final entry is exactly 1.0 > u, so the rank is always in range.
        let rank = self.cdf.partition_point(|&c| c <= u) as u64;
        (rank + self.offset) % self.keys
    }
}

/// A key-distribution specification — the configuration surface harness
/// scenarios sweep (the key analogue of [`Workload`](crate::Workload)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Every key in `0..keys` equally likely.
    Uniform {
        /// Key-space size.
        keys: u64,
    },
    /// Zipf(`s`) ranks over `0..keys`, hottest key first.
    Zipf {
        /// Key-space size.
        keys: u64,
        /// Skew exponent (≈ 1.1 for web-like traffic).
        s: f64,
    },
}

impl KeyDist {
    /// Builds the deterministic key stream for this distribution.
    pub fn stream(&self, seed: u64) -> Keys {
        match *self {
            KeyDist::Uniform { keys } => Keys::Uniform(UniformKeys::new(keys, seed)),
            KeyDist::Zipf { keys, s } => Keys::Zipf(ZipfKeys::new(keys, s, seed)),
        }
    }

    /// The key-space size.
    pub fn keys(&self) -> u64 {
        match *self {
            KeyDist::Uniform { keys } | KeyDist::Zipf { keys, .. } => keys,
        }
    }
}

impl std::fmt::Display for KeyDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            KeyDist::Uniform { keys } => write!(f, "uniform({keys})"),
            KeyDist::Zipf { keys, s } => write!(f, "zipf({keys} s={s})"),
        }
    }
}

/// A built key stream, either flavor (a plain enum rather than a boxed
/// trait object: the bench inner loop draws millions of keys).
#[derive(Clone, Debug)]
pub enum Keys {
    /// A [`UniformKeys`] stream.
    Uniform(UniformKeys),
    /// A [`ZipfKeys`] stream.
    Zipf(ZipfKeys),
}

impl KeyStream for Keys {
    fn next_key(&mut self) -> u64 {
        match self {
            Keys::Uniform(s) => s.next_key(),
            Keys::Zipf(s) => s.next_key(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let take = |seed: u64| -> Vec<u64> {
            let mut s = ZipfKeys::new(100, 1.1, seed);
            (0..64).map(|_| s.next_key()).collect()
        };
        assert_eq!(take(7), take(7), "same seed replays the same keys");
        assert_ne!(take(7), take(8), "different seeds diverge");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut s = ZipfKeys::new(1000, 1.1, 42);
        let mut hot = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if s.next_key() < 10 {
                hot += 1;
            }
        }
        // Zipf(1.1) over 1000 keys puts well over a third of the mass on
        // the top 10 ranks; uniform would put 1% there.
        assert!(hot > n / 3, "top-10 keys drew only {hot}/{n}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let mut s = ZipfKeys::new(10, 0.0, 1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[s.next_key() as usize] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "uniform-ish bucket count, got {c}");
        }
    }

    #[test]
    fn offset_rotates_the_hot_key() {
        let mut s = ZipfKeys::with_offset(100, 2.0, 5, 37);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..2_000 {
            *counts.entry(s.next_key()).or_insert(0u32) += 1;
        }
        let hottest = counts.iter().max_by_key(|(_, &c)| c).map(|(&k, _)| k);
        assert_eq!(hottest, Some(37), "rank 0 lands on the offset");
    }

    #[test]
    fn uniform_covers_the_space() {
        let mut s = UniformKeys::new(8, 3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..256 {
            seen.insert(s.next_key());
        }
        assert_eq!(seen.len(), 8, "all 8 keys drawn");
    }

    #[test]
    fn dist_display_and_stream() {
        assert_eq!(KeyDist::Uniform { keys: 4 }.to_string(), "uniform(4)");
        assert_eq!(KeyDist::Zipf { keys: 4, s: 1.1 }.to_string(), "zipf(4 s=1.1)");
        let mut k = KeyDist::Zipf { keys: 4, s: 1.1 }.stream(9);
        for _ in 0..32 {
            assert!(k.next_key() < 4);
        }
    }
}
