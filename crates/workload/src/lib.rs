//! # Workload generators for concurrent-pool experiments
//!
//! §3.3 of Kotz & Ellis (1989) drives the pool with "perhaps two of the
//! most likely patterns of access":
//!
//! * the **random operations model** — every process draws adds and removes
//!   at random to fit a predetermined overall *job mix* (fraction of adds),
//!   swept from 0% to 100% in steps of 10%;
//! * the **producer/consumer model** — a fixed subset of processes only add
//!   while the rest only remove, with the producer *arrangement*
//!   (contiguous vs. spread out) turning out to matter a great deal (§4.2).
//!
//! Job mixes of ≥ 50% adds are *sufficient* (at least as many adds as
//! removes); below 50% they are *sparse*.
//!
//! A trial performs a fixed **combined** number of operations: "rather than
//! executing a fixed number of operations in each process, the processes
//! performed operations until the combined total number of operations
//! reached the desired amount" — that is [`OpBudget`].

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod arrangement;
pub mod budget;
pub mod bursty;
pub mod mix;
pub mod phased;
pub mod stream;
pub mod zipf;

pub use arrangement::{Arrangement, Role};
pub use budget::OpBudget;
pub use bursty::BurstyStream;
pub use mix::{JobMix, KeyedMix, KeyedMixStream};
pub use phased::{hot_set_migration, PhasedKeyStream, PhasedStream};
pub use stream::{Op, OpStream, RandomMixStream, RoleStream};
pub use zipf::{KeyDist, KeyStream, Keys, UniformKeys, ZipfKeys};

use std::fmt;

/// A complete workload specification: what every process does.
///
/// This is the configuration surface the experiment harness sweeps.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// Random operations model: all processes draw from the same job mix.
    RandomMix {
        /// Target fraction of adds.
        mix: JobMix,
    },
    /// Producer/consumer model with a given number of producers arranged by
    /// the given policy.
    ProducerConsumer {
        /// Number of producer processes.
        producers: usize,
        /// How producers are placed among the process ids.
        arrangement: Arrangement,
    },
    /// §3.5's application lifecycle, run as one workload instead of three:
    /// each process works through `(ops, mix)` phases in order (the final
    /// phase lasts until the trial's budget ends). "It is easy to imagine
    /// an application which has an initial phase with more than sufficient
    /// adds (as the pool is filled), a stable phase, and a more sparse
    /// termination phase (as the pool is emptied). Our experiments have
    /// essentially examined these phases separately."
    Phased {
        /// The per-process phases: operation count and job mix of each.
        phases: Vec<(u64, JobMix)>,
    },
}

impl Workload {
    /// Builds the operation stream for process `proc` of `procs` total,
    /// deterministically derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a producer/consumer workload has more producers than
    /// processes.
    pub fn stream_for(&self, proc: usize, procs: usize, seed: u64) -> Box<dyn OpStream> {
        match self {
            Workload::RandomMix { mix } => {
                Box::new(RandomMixStream::new(*mix, per_proc_seed(seed, proc)))
            }
            Workload::ProducerConsumer { producers, arrangement } => {
                let roles = arrangement.roles(procs, *producers);
                Box::new(RoleStream::new(roles[proc]))
            }
            Workload::Phased { phases } => {
                assert!(!phases.is_empty(), "phased workload needs at least one phase");
                let streams = phases
                    .iter()
                    .enumerate()
                    .map(|(i, (ops, mix))| {
                        // Distinct seed per (process, phase) so phases do not
                        // replay each other's draw sequences.
                        let seed = per_proc_seed(seed ^ (i as u64).wrapping_mul(0xA5A5_5A5A), proc);
                        (*ops, Box::new(RandomMixStream::new(*mix, seed)) as Box<dyn OpStream>)
                    })
                    .collect();
                Box::new(PhasedStream::new(streams))
            }
        }
    }

    /// The role of process `proc` under this workload (producer/consumer
    /// workloads only).
    pub fn role_of(&self, proc: usize, procs: usize) -> Option<Role> {
        match self {
            Workload::RandomMix { .. } | Workload::Phased { .. } => None,
            Workload::ProducerConsumer { producers, arrangement } => {
                Some(arrangement.roles(procs, *producers)[proc])
            }
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::RandomMix { mix } => write!(f, "random({mix})"),
            Workload::ProducerConsumer { producers, arrangement } => {
                write!(f, "prodcons({producers} {arrangement})")
            }
            Workload::Phased { phases } => {
                write!(f, "phased(")?;
                for (i, (ops, mix)) in phases.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{ops}@{mix}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Derives a per-process seed from an experiment seed.
///
/// SplitMix64-style mixing: adjacent inputs yield statistically independent
/// outputs, so process streams do not correlate.
pub fn per_proc_seed(seed: u64, proc: usize) -> u64 {
    let mut z = seed ^ (proc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mix_streams_differ_per_proc() {
        let w = Workload::RandomMix { mix: JobMix::from_percent(50) };
        let take = |proc: usize| -> Vec<Op> {
            let mut s = w.stream_for(proc, 4, 9);
            (0..32).map(|_| s.next_op()).collect()
        };
        assert_ne!(take(0), take(1), "processes draw independent sequences");
        assert_eq!(take(0), take(0), "but each is deterministic");
    }

    #[test]
    fn producer_consumer_roles_are_pure() {
        let w = Workload::ProducerConsumer { producers: 5, arrangement: Arrangement::Contiguous };
        for proc in 0..16 {
            let mut s = w.stream_for(proc, 16, 0);
            let expected = if proc < 5 { Op::Add } else { Op::Remove };
            for _ in 0..8 {
                assert_eq!(s.next_op(), expected);
            }
            assert_eq!(
                w.role_of(proc, 16),
                Some(if proc < 5 { Role::Producer } else { Role::Consumer })
            );
        }
    }

    #[test]
    fn display_forms() {
        let w = Workload::RandomMix { mix: JobMix::from_percent(30) };
        assert_eq!(w.to_string(), "random(30%)");
        let w = Workload::ProducerConsumer { producers: 5, arrangement: Arrangement::Balanced };
        assert_eq!(w.to_string(), "prodcons(5 balanced)");
    }

    #[test]
    fn phased_workload_switches_mixes() {
        let w = Workload::Phased {
            phases: vec![(8, JobMix::from_percent(100)), (0, JobMix::from_percent(0))],
        };
        let mut s = w.stream_for(0, 4, 42);
        for _ in 0..8 {
            assert_eq!(s.next_op(), Op::Add, "fill phase is pure adds");
        }
        for _ in 0..16 {
            assert_eq!(s.next_op(), Op::Remove, "drain phase is pure removes");
        }
        assert_eq!(w.role_of(0, 4), None);
        assert_eq!(w.to_string(), "phased(8@100% 0@0%)");
    }

    #[test]
    fn phased_streams_differ_per_proc_and_phase() {
        let w = Workload::Phased {
            phases: vec![(50, JobMix::from_percent(50)), (0, JobMix::from_percent(50))],
        };
        let take = |proc: usize| -> Vec<Op> {
            let mut s = w.stream_for(proc, 4, 9);
            (0..100).map(|_| s.next_op()).collect()
        };
        assert_ne!(take(0), take(1), "processes draw independent sequences");
        let seq = take(2);
        assert_ne!(seq[..50], seq[50..], "phases reseed rather than replay");
    }

    #[test]
    fn per_proc_seed_spreads() {
        let seeds: Vec<u64> = (0..64).map(|p| per_proc_seed(1, p)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "no collisions across processes");
    }
}
