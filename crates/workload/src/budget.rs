//! The global operation budget.
//!
//! "Rather than executing a fixed number of operations in each process, the
//! processes performed operations until the combined total number of
//! operations reached the desired amount." (§3.4 — 5000 operations on a
//! pool initialized with 320 elements.)
//!
//! This rule is what lets the *measured* job mix drift from the nominal
//! process roles: fast processes (producers doing cheap local adds) claim
//! more of the budget than slow ones (consumers stuck in searches), which
//! is exactly how the paper's 1–4 producer runs all land near 47% adds.

use std::sync::atomic::{AtomicI64, Ordering};

/// A shared countdown of operations remaining in a trial.
///
/// ```
/// use workload::OpBudget;
/// let budget = OpBudget::new(2);
/// assert!(budget.take());
/// assert!(budget.take());
/// assert!(!budget.take(), "budget exhausted");
/// assert_eq!(budget.remaining(), 0);
/// ```
#[derive(Debug)]
pub struct OpBudget {
    remaining: AtomicI64,
}

impl OpBudget {
    /// Creates a budget of `total` operations.
    ///
    /// # Panics
    ///
    /// Panics if `total` exceeds `i64::MAX`.
    pub fn new(total: u64) -> Self {
        OpBudget { remaining: AtomicI64::new(i64::try_from(total).expect("budget too large")) }
    }

    /// Claims one operation; returns `false` once the budget is exhausted.
    pub fn take(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::AcqRel) > 0
    }

    /// Operations still unclaimed (clamped at zero).
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Acquire).max(0) as u64
    }

    /// Whether the budget has run out.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    #[test]
    fn exactly_total_takes_succeed() {
        let budget = OpBudget::new(100);
        let mut granted = 0;
        for _ in 0..200 {
            if budget.take() {
                granted += 1;
            }
        }
        assert_eq!(granted, 100);
        assert!(budget.is_exhausted());
    }

    #[test]
    fn concurrent_takes_grant_exactly_total() {
        let budget = OpBudget::new(10_000);
        let granted = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    while budget.take() {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(granted.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn zero_budget_grants_nothing() {
        let budget = OpBudget::new(0);
        assert!(!budget.take());
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn remaining_never_underflows() {
        let budget = OpBudget::new(1);
        assert!(budget.take());
        assert!(!budget.take());
        assert!(!budget.take());
        assert_eq!(budget.remaining(), 0);
    }
}
