//! Job mixes: the fraction of operations that are adds.

use std::fmt;

/// A job mix: the target fraction of add operations.
///
/// "Clearly, job mixes of 50% or higher are sufficient, adding more
/// elements than are removed. Job mixes of less than 50% adds are termed
/// sparse."
///
/// ```
/// use workload::JobMix;
/// let m = JobMix::from_percent(40);
/// assert!(m.is_sparse());
/// assert!(!JobMix::from_percent(50).is_sparse());
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct JobMix(f64);

impl JobMix {
    /// Creates a mix from a fraction in `0.0..=1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `0.0..=1.0` or is NaN.
    pub fn new(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "job mix must be a fraction in [0, 1], got {fraction}"
        );
        JobMix(fraction)
    }

    /// Creates a mix from a percentage in `0..=100`.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn from_percent(percent: u32) -> Self {
        assert!(percent <= 100, "job mix percent must be <= 100, got {percent}");
        JobMix(f64::from(percent) / 100.0)
    }

    /// The fraction of adds.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The percentage of adds (rounded).
    pub fn percent(self) -> u32 {
        (self.0 * 100.0).round() as u32
    }

    /// Sparse mixes remove more than they add (< 50% adds).
    pub fn is_sparse(self) -> bool {
        self.0 < 0.5
    }

    /// Sufficient mixes add at least as much as they remove (≥ 50% adds).
    pub fn is_sufficient(self) -> bool {
        !self.is_sparse()
    }

    /// The paper's sweep: "all job mixes from zero to 100% add operations
    /// were tested, in steps of 10%".
    pub fn paper_sweep() -> Vec<JobMix> {
        (0..=10).map(|step| JobMix::from_percent(step * 10)).collect()
    }
}

impl fmt::Display for JobMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.percent())
    }
}

/// A keyed job mix: a [`JobMix`] of adds/removes crossed with a
/// [`KeyDist`](crate::zipf::KeyDist) choosing which key each operation
/// targets — the configuration surface keyed-pool scenarios sweep.
///
/// ```
/// use workload::{JobMix, KeyedMix, KeyDist, KeyStream};
///
/// let spec = KeyedMix { mix: JobMix::from_percent(50), dist: KeyDist::Zipf { keys: 64, s: 1.1 } };
/// let mut s = spec.stream(7);
/// let (_op, key) = s.next_pair();
/// assert!(key < 64);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KeyedMix {
    /// The add/remove mix.
    pub mix: JobMix,
    /// The key distribution each operation draws its key from.
    pub dist: crate::zipf::KeyDist,
}

impl KeyedMix {
    /// Builds the deterministic `(op, key)` stream for this spec. The op
    /// and key draws use independently derived seeds, so the key sequence
    /// is identical across mixes (only *what is done* to each key varies).
    pub fn stream(&self, seed: u64) -> KeyedMixStream {
        KeyedMixStream {
            ops: crate::stream::RandomMixStream::new(self.mix, seed),
            keys: self.dist.stream(seed ^ 0x6B65_7973),
        }
    }
}

impl fmt::Display for KeyedMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.mix, self.dist)
    }
}

/// The stream a [`KeyedMix`] builds: endless `(op, key)` pairs.
#[derive(Clone, Debug)]
pub struct KeyedMixStream {
    ops: crate::stream::RandomMixStream,
    keys: crate::zipf::Keys,
}

impl KeyedMixStream {
    /// The next operation and the key it targets.
    pub fn next_pair(&mut self) -> (crate::stream::Op, u64) {
        use crate::zipf::KeyStream;
        (crate::stream::OpStream::next_op(&mut self.ops), self.keys.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_mix_streams_are_deterministic() {
        let spec = KeyedMix {
            mix: JobMix::from_percent(50),
            dist: crate::zipf::KeyDist::Zipf { keys: 32, s: 1.1 },
        };
        let take = |seed: u64| -> Vec<(crate::stream::Op, u64)> {
            let mut s = spec.stream(seed);
            (0..64).map(|_| s.next_pair()).collect()
        };
        assert_eq!(take(3), take(3));
        assert_ne!(take(3), take(4));
        assert_eq!(spec.to_string(), "50%/zipf(32 s=1.1)");
    }

    #[test]
    fn percent_roundtrip() {
        for p in (0..=100).step_by(5) {
            assert_eq!(JobMix::from_percent(p).percent(), p);
        }
    }

    #[test]
    fn sparse_boundary() {
        assert!(JobMix::from_percent(49).is_sparse());
        assert!(JobMix::from_percent(50).is_sufficient());
        assert!(JobMix::from_percent(0).is_sparse());
        assert!(JobMix::from_percent(100).is_sufficient());
    }

    #[test]
    fn paper_sweep_is_eleven_points() {
        let sweep = JobMix::paper_sweep();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0].percent(), 0);
        assert_eq!(sweep[10].percent(), 100);
        assert!(sweep.windows(2).all(|w| w[1].percent() - w[0].percent() == 10));
    }

    #[test]
    #[should_panic(expected = "must be <= 100")]
    fn over_100_percent_panics() {
        let _ = JobMix::from_percent(101);
    }

    #[test]
    #[should_panic(expected = "fraction in [0, 1]")]
    fn nan_fraction_panics() {
        let _ = JobMix::new(f64::NAN);
    }
}
