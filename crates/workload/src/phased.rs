//! Phased workloads: the paper's "initial / stable / termination" sketch.
//!
//! "It is easy to imagine an application which has an initial phase with
//! more than sufficient adds (as the pool is filled), a stable phase, and a
//! more sparse termination phase (as the pool is emptied). Our experiments
//! have essentially examined these phases separately." (§3.5)
//!
//! [`PhasedStream`] chains operation streams so the phases can also be
//! examined *together*, an extension the paper suggests but does not run.

use crate::stream::{Op, OpStream};

/// A stream that switches between sub-streams after fixed operation counts.
///
/// The final phase runs forever (streams are endless; the experiment's
/// budget terminates the trial).
pub struct PhasedStream {
    phases: Vec<(u64, Box<dyn OpStream>)>,
    current: usize,
    issued_in_phase: u64,
}

impl std::fmt::Debug for PhasedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedStream")
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .field("issued_in_phase", &self.issued_in_phase)
            .finish()
    }
}

impl PhasedStream {
    /// Creates a phased stream from `(ops, stream)` pairs; the last phase's
    /// count is ignored (it runs until the trial ends).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<(u64, Box<dyn OpStream>)>) -> Self {
        assert!(!phases.is_empty(), "phased stream needs at least one phase");
        PhasedStream { phases, current: 0, issued_in_phase: 0 }
    }

    /// Index of the phase currently issuing operations.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl OpStream for PhasedStream {
    fn next_op(&mut self) -> Op {
        // Advance to the next phase when the current one is spent (never
        // leaving the final phase).
        while self.current + 1 < self.phases.len()
            && self.issued_in_phase >= self.phases[self.current].0
        {
            self.current += 1;
            self.issued_in_phase = 0;
        }
        self.issued_in_phase += 1;
        self.phases[self.current].1.next_op()
    }
}

/// A key stream that switches between sub-streams after fixed draw counts
/// — the key-dimension analogue of [`PhasedStream`]. The final phase runs
/// forever.
#[derive(Clone, Debug)]
pub struct PhasedKeyStream {
    phases: Vec<(u64, crate::zipf::Keys)>,
    current: usize,
    issued_in_phase: u64,
}

impl PhasedKeyStream {
    /// Creates a phased key stream from `(draws, keys)` pairs; the last
    /// phase's count is ignored (it runs until the trial ends).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<(u64, crate::zipf::Keys)>) -> Self {
        assert!(!phases.is_empty(), "phased key stream needs at least one phase");
        PhasedKeyStream { phases, current: 0, issued_in_phase: 0 }
    }

    /// Index of the phase currently issuing keys.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl crate::zipf::KeyStream for PhasedKeyStream {
    fn next_key(&mut self) -> u64 {
        while self.current + 1 < self.phases.len()
            && self.issued_in_phase >= self.phases[self.current].0
        {
            self.current += 1;
            self.issued_in_phase = 0;
        }
        self.issued_in_phase += 1;
        self.phases[self.current].1.next_key()
    }
}

/// The hot-set-migration scenario: `phases` back-to-back Zipf(`s`) streams
/// over `0..keys`, each lasting `phase_ops` draws, with the hot set
/// rotated to a different region of the key space every phase (phase `i`'s
/// hottest key is `i * keys / phases`). This is the stress case for
/// adaptive hot-key sharding: heat must decay on the old hot set (demote)
/// and build on the new one (promote) at every boundary.
///
/// # Panics
///
/// Panics if `keys` or `phases` is zero.
pub fn hot_set_migration(
    keys: u64,
    s: f64,
    phase_ops: u64,
    phases: usize,
    seed: u64,
) -> PhasedKeyStream {
    assert!(phases > 0, "hot-set migration needs at least one phase");
    let stride = (keys / phases as u64).max(1);
    PhasedKeyStream::new(
        (0..phases)
            .map(|i| {
                let offset = i as u64 * stride;
                let seed = crate::per_proc_seed(seed, i);
                (
                    phase_ops,
                    crate::zipf::Keys::Zipf(crate::zipf::ZipfKeys::with_offset(
                        keys, s, seed, offset,
                    )),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::Role;
    use crate::stream::RoleStream;
    use crate::zipf::KeyStream;

    fn fill_then_drain(fill: u64) -> PhasedStream {
        PhasedStream::new(vec![
            (fill, Box::new(RoleStream::new(Role::Producer))),
            (0, Box::new(RoleStream::new(Role::Consumer))),
        ])
    }

    #[test]
    fn switches_after_phase_budget() {
        let mut s = fill_then_drain(3);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.current_phase(), 0, "switch happens lazily on the next draw");
        assert_eq!(s.next_op(), Op::Remove);
        assert_eq!(s.current_phase(), 1);
    }

    #[test]
    fn final_phase_is_endless() {
        let mut s = fill_then_drain(1);
        let _ = s.next_op();
        for _ in 0..100 {
            assert_eq!(s.next_op(), Op::Remove);
        }
    }

    #[test]
    fn zero_length_middle_phases_are_skipped() {
        let mut s = PhasedStream::new(vec![
            (1, Box::new(RoleStream::new(Role::Producer))),
            (0, Box::new(RoleStream::new(Role::Producer))),
            (0, Box::new(RoleStream::new(Role::Consumer))),
        ]);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.next_op(), Op::Remove, "empty middle phase skipped");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let _ = PhasedStream::new(Vec::new());
    }

    #[test]
    fn hot_set_migration_moves_the_hot_key() {
        let phase_ops = 4_000;
        let mut s = hot_set_migration(100, 2.0, phase_ops, 2, 11);
        let hottest = |s: &mut PhasedKeyStream| -> u64 {
            let mut counts = std::collections::BTreeMap::new();
            for _ in 0..phase_ops {
                *counts.entry(s.next_key()).or_insert(0u32) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).map(|(k, _)| k).unwrap()
        };
        assert_eq!(hottest(&mut s), 0, "phase 0 is hottest at the origin");
        assert_eq!(hottest(&mut s), 50, "phase 1's hot set migrated half-way across");
    }

    #[test]
    fn hot_set_migration_final_phase_is_endless() {
        let mut s = hot_set_migration(10, 1.1, 4, 3, 0);
        for _ in 0..100 {
            assert!(s.next_key() < 10);
        }
        assert_eq!(s.current_phase(), 2);
    }
}
