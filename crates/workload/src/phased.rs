//! Phased workloads: the paper's "initial / stable / termination" sketch.
//!
//! "It is easy to imagine an application which has an initial phase with
//! more than sufficient adds (as the pool is filled), a stable phase, and a
//! more sparse termination phase (as the pool is emptied). Our experiments
//! have essentially examined these phases separately." (§3.5)
//!
//! [`PhasedStream`] chains operation streams so the phases can also be
//! examined *together*, an extension the paper suggests but does not run.

use crate::stream::{Op, OpStream};

/// A stream that switches between sub-streams after fixed operation counts.
///
/// The final phase runs forever (streams are endless; the experiment's
/// budget terminates the trial).
pub struct PhasedStream {
    phases: Vec<(u64, Box<dyn OpStream>)>,
    current: usize,
    issued_in_phase: u64,
}

impl std::fmt::Debug for PhasedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedStream")
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .field("issued_in_phase", &self.issued_in_phase)
            .finish()
    }
}

impl PhasedStream {
    /// Creates a phased stream from `(ops, stream)` pairs; the last phase's
    /// count is ignored (it runs until the trial ends).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<(u64, Box<dyn OpStream>)>) -> Self {
        assert!(!phases.is_empty(), "phased stream needs at least one phase");
        PhasedStream { phases, current: 0, issued_in_phase: 0 }
    }

    /// Index of the phase currently issuing operations.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl OpStream for PhasedStream {
    fn next_op(&mut self) -> Op {
        // Advance to the next phase when the current one is spent (never
        // leaving the final phase).
        while self.current + 1 < self.phases.len()
            && self.issued_in_phase >= self.phases[self.current].0
        {
            self.current += 1;
            self.issued_in_phase = 0;
        }
        self.issued_in_phase += 1;
        self.phases[self.current].1.next_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::Role;
    use crate::stream::RoleStream;

    fn fill_then_drain(fill: u64) -> PhasedStream {
        PhasedStream::new(vec![
            (fill, Box::new(RoleStream::new(Role::Producer))),
            (0, Box::new(RoleStream::new(Role::Consumer))),
        ])
    }

    #[test]
    fn switches_after_phase_budget() {
        let mut s = fill_then_drain(3);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.current_phase(), 0, "switch happens lazily on the next draw");
        assert_eq!(s.next_op(), Op::Remove);
        assert_eq!(s.current_phase(), 1);
    }

    #[test]
    fn final_phase_is_endless() {
        let mut s = fill_then_drain(1);
        let _ = s.next_op();
        for _ in 0..100 {
            assert_eq!(s.next_op(), Op::Remove);
        }
    }

    #[test]
    fn zero_length_middle_phases_are_skipped() {
        let mut s = PhasedStream::new(vec![
            (1, Box::new(RoleStream::new(Role::Producer))),
            (0, Box::new(RoleStream::new(Role::Producer))),
            (0, Box::new(RoleStream::new(Role::Consumer))),
        ]);
        assert_eq!(s.next_op(), Op::Add);
        assert_eq!(s.next_op(), Op::Remove, "empty middle phase skipped");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let _ = PhasedStream::new(Vec::new());
    }
}
