//! Property-based tests for the workload generators: arrangements place the
//! right number of producers with the right spacing, streams hit their mix,
//! and the shared budget grants exactly its total under contention.

use proptest::prelude::*;

use workload::{per_proc_seed, Arrangement, JobMix, Op, OpBudget, Role, Workload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every arrangement places exactly `producers` producers.
    #[test]
    fn arrangements_have_exact_cardinality(
        procs in 1usize..64,
        frac in 0.0f64..=1.0,
    ) {
        let producers = (frac * procs as f64) as usize;
        for arrangement in [
            Arrangement::Contiguous,
            Arrangement::Balanced,
            Arrangement::PaperBalanced,
        ] {
            let roles = arrangement.roles(procs, producers);
            prop_assert_eq!(roles.len(), procs);
            prop_assert_eq!(
                roles.iter().filter(|r| **r == Role::Producer).count(),
                producers,
                "{} {}/{}", arrangement, producers, procs
            );
        }
    }

    /// Balanced spreading: ring gaps between consecutive producers differ by
    /// at most... the stride rounding, i.e. every gap is ⌊n/k⌋ or ⌈n/k⌉.
    #[test]
    fn balanced_gaps_are_even(procs in 2usize..64, k in 1usize..32) {
        prop_assume!(k <= procs);
        let pos = Arrangement::Balanced.producer_positions(procs, k);
        let mut gaps = Vec::new();
        for i in 0..pos.len() {
            let next = pos[(i + 1) % pos.len()];
            let gap = (next + procs - pos[i]) % procs;
            gaps.push(if gap == 0 { procs } else { gap });
        }
        let lo = procs / k;
        let hi = procs.div_ceil(k);
        for gap in gaps {
            prop_assert!(
                (lo..=hi.max(lo + 1)).contains(&gap),
                "gap {gap} outside [{lo}, {hi}] for {k}/{procs}: {pos:?}"
            );
        }
    }

    /// Contiguous producers are exactly the prefix.
    #[test]
    fn contiguous_is_prefix(procs in 1usize..64, frac in 0.0f64..=1.0) {
        let k = (frac * procs as f64) as usize;
        let pos = Arrangement::Contiguous.producer_positions(procs, k);
        prop_assert_eq!(pos, (0..k).collect::<Vec<_>>());
    }

    /// Role streams are constant; random-mix streams are deterministic per
    /// (seed, proc) and in the long run match the mix within sampling noise.
    #[test]
    fn random_mix_streams_hit_their_mix(percent in 0u32..=100, seed in any::<u64>()) {
        let mix = JobMix::from_percent(percent);
        let w = Workload::RandomMix { mix };
        let n = 4_000;
        let mut s = w.stream_for(0, 4, seed);
        let adds = (0..n).filter(|_| s.next_op() == Op::Add).count();
        let observed = adds as f64 / n as f64;
        let expected = mix.fraction();
        // 4000 Bernoulli draws: tolerance of 4 sigma.
        let sigma = (expected * (1.0 - expected) / n as f64).sqrt();
        prop_assert!(
            (observed - expected).abs() <= 4.0 * sigma + 1e-9,
            "observed {observed:.4} vs expected {expected:.4} (±{:.4})",
            4.0 * sigma
        );
    }

    /// Degenerate mixes are exact, not just statistical.
    #[test]
    fn extreme_mixes_are_pure(seed in any::<u64>()) {
        let mut all_adds = Workload::RandomMix { mix: JobMix::from_percent(100) }
            .stream_for(0, 1, seed);
        let mut all_removes = Workload::RandomMix { mix: JobMix::from_percent(0) }
            .stream_for(0, 1, seed);
        for _ in 0..500 {
            prop_assert_eq!(all_adds.next_op(), Op::Add);
            prop_assert_eq!(all_removes.next_op(), Op::Remove);
        }
    }

    /// Producer/consumer streams never deviate from their role.
    #[test]
    fn role_streams_are_constant(
        procs in 1usize..32,
        frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let producers = (frac * procs as f64) as usize;
        let w = Workload::ProducerConsumer {
            producers,
            arrangement: Arrangement::Balanced,
        };
        for proc in 0..procs {
            let role = w.role_of(proc, procs).expect("producer/consumer");
            let mut s = w.stream_for(proc, procs, seed);
            let expected = match role {
                Role::Producer => Op::Add,
                Role::Consumer => Op::Remove,
            };
            for _ in 0..16 {
                prop_assert_eq!(s.next_op(), expected);
            }
        }
    }

    /// The budget grants exactly `total` takes under arbitrary contention.
    #[test]
    fn budget_grants_exactly_total(total in 0u64..20_000, threads in 1usize..8) {
        let budget = OpBudget::new(total);
        let granted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    while budget.take() {
                        granted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        prop_assert_eq!(granted.load(std::sync::atomic::Ordering::Relaxed), total);
        prop_assert!(budget.is_exhausted());
    }

    /// Per-process seeds: deterministic, and distinct across processes for
    /// any master seed (no accidental stream correlation).
    #[test]
    fn per_proc_seeds_are_distinct(seed in any::<u64>()) {
        let seeds: Vec<u64> = (0..128).map(|p| per_proc_seed(seed, p)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), seeds.len());
        prop_assert_eq!(per_proc_seed(seed, 7), per_proc_seed(seed, 7));
    }

    /// JobMix percent/fraction round-trips and classification is a partition.
    #[test]
    fn job_mix_properties(percent in 0u32..=100) {
        let mix = JobMix::from_percent(percent);
        prop_assert_eq!(mix.percent(), percent);
        prop_assert!((mix.fraction() - f64::from(percent) / 100.0).abs() < 1e-12);
        prop_assert_ne!(mix.is_sparse(), mix.is_sufficient());
        prop_assert_eq!(mix.is_sparse(), percent < 50);
    }
}
