//! # Shared work lists: the concurrent pool's competitors
//!
//! §4.4 of Kotz & Ellis (1989) compares pools against "the original version
//! that used a stack with a global lock for the work list" (40% slower,
//! speedup 10.7 vs ≈15 at 16 processors). This crate provides that
//! baseline and friends behind one [`SharedWorkList`] abstraction so the
//! application study can swap implementations:
//!
//! * [`GlobalStack`] — `Mutex<Vec<T>>`, the paper's comparator;
//! * [`GlobalQueue`] — `Mutex<VecDeque<T>>` (FIFO variant);
//! * [`LockFreeQueue`] — a modern lock-free MPMC queue
//!   (`crossbeam_queue::SegQueue`, the vendored hand-rolled segmented
//!   queue — genuinely lock-free, no mutex anywhere): still a
//!   *centralized* structure, so it remains a memory hot spot on a NUMA
//!   machine even without a lock;
//! * [`PoolWorkList`] — a concurrent pool (any search policy) adapted to
//!   the same interface.
//!
//! All centralized lists charge their accesses to
//! [`Resource::Shared`]`(0)` so NUMA cost models and the virtual-time
//! scheduler see the hot spot. Workers that generate work in bursts should
//! deposit it through [`WorkHandle::put_batch`], which the pool-backed list
//! serves with one segment lock per batch ([`cpool::PoolOps::add_batch`]).
//!
//! # Termination and shutdown
//!
//! Completion is *detected* by the same all-processes-searching rule as the
//! pool ([`cpool::SearchGate`]): the list is empty and every worker is
//! looking, so no new item can appear. The detecting worker then **closes**
//! the list ([`SharedWorkList::close`]), which wakes every blocked peer to
//! drain out with [`Done`] — so a pool-backed list's workers can wait
//! *event-driven* ([`cpool::WaitStrategy::Block`], the default: park on the
//! pool's notifier, woken by the add edge) instead of burning an attempt
//! budget polling. An application that knows it is finished (or wants to
//! cancel) may also close the list explicitly from outside.
//!
//! Like the pools they compete with, every work list is generic over its
//! [`Timing`] cost model (default [`cpool::NullTiming`], statically
//! dispatched); pass a [`cpool::DynTiming`] to select the model at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_queue::SegQueue;
use parking_lot::Mutex;

use cpool::{
    DynPolicy, Handle, NullTiming, PolicyKind, Pool, PoolBuilder, PoolOps, ProcId, RemoveError,
    Resource, SearchGate, Timing, VecSegment, WaitStrategy,
};

/// Returned by [`WorkHandle::get`] when the computation has terminated:
/// the list was [closed](SharedWorkList::close), or it is empty and every
/// registered worker is looking for work, so no new items can appear.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Done;

impl fmt::Display for Done {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("work list drained: all workers idle")
    }
}

impl Error for Done {}

/// Per-worker handle to a shared work list.
pub trait WorkHandle<T>: Send {
    /// Deposits one work item.
    fn put(&mut self, item: T);

    /// Deposits a batch of work items, paying the list's synchronization
    /// once per batch where the backing structure supports it (the
    /// pool-backed list maps this to [`cpool::PoolOps::add_batch`]; the
    /// default implementation falls back to per-item [`put`](Self::put)).
    fn put_batch<I: IntoIterator<Item = T>>(&mut self, items: I) {
        for item in items {
            self.put(item);
        }
    }

    /// Retrieves a work item, waiting (by re-probing) while other workers
    /// are still active.
    ///
    /// # Errors
    ///
    /// Returns [`Done`] when the list is empty and every registered worker
    /// is simultaneously looking for work.
    fn get(&mut self) -> Result<T, Done>;

    /// Retrieves **at least one and up to `n`** work items, appending them
    /// to `out` and returning how many arrived.
    ///
    /// Lists whose backing structure can serve several items under one
    /// synchronization do so (the pool-backed list maps this to
    /// [`cpool::PoolOps::try_remove_batch`], which the batch-typed transfer
    /// layer serves without flattening); the default — and the centralized
    /// baselines, whose per-access hot spot is the property under study —
    /// deliver exactly one item per call via [`get`](Self::get).
    ///
    /// # Errors
    ///
    /// As [`get`](Self::get): [`Done`] when the computation terminated
    /// before any item arrived. `n == 0` is a no-op returning `Ok(0)`.
    fn get_batch(&mut self, n: usize, out: &mut Vec<T>) -> Result<usize, Done> {
        if n == 0 {
            return Ok(0);
        }
        out.push(self.get()?);
        Ok(1)
    }

    /// The worker's process id (for cost accounting).
    fn proc_id(&self) -> ProcId;
}

/// A shared list of work items, usable from many workers.
pub trait SharedWorkList<T: Send>: Send + Sync {
    /// The per-worker handle type.
    type Handle: WorkHandle<T>;

    /// Registers a worker. The `i`-th registration gets process id `i`.
    fn register(&self) -> Self::Handle;

    /// Deposits initial items without charging any worker (pre-run setup).
    fn seed(&self, items: Vec<T>);

    /// Number of items currently stored (snapshot).
    fn len(&self) -> usize;

    /// Whether the list is currently empty (snapshot).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the list: sticky and idempotent. Workers blocked in
    /// [`get`](WorkHandle::get) are woken; they and all future getters
    /// drain the remaining items and then report [`Done`].
    ///
    /// The pool-backed list closes itself when a worker detects completion
    /// (see [`PoolWorkHandle::get`]); call this from outside to cancel a
    /// computation early or to release workers a coordinator knows are no
    /// longer needed.
    fn close(&self);

    /// Whether [`close`](Self::close) has been called.
    fn is_closed(&self) -> bool;
}

// ---------------------------------------------------------------------------
// Centralized lists
// ---------------------------------------------------------------------------

/// Storage discipline of a centralized list.
pub trait CentralBuffer<T>: Send + Sync + Default {
    /// Adds an item.
    fn push(&self, item: T);
    /// Removes an item (LIFO, FIFO, or unordered per implementation).
    fn pop(&self) -> Option<T>;
    /// Number of stored items.
    fn len(&self) -> usize;
    /// Whether the buffer is currently empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// LIFO buffer under one global lock (the paper's work-list baseline).
#[derive(Debug)]
pub struct LockedStackBuffer<T>(Mutex<Vec<T>>);

impl<T> Default for LockedStackBuffer<T> {
    fn default() -> Self {
        LockedStackBuffer(Mutex::new(Vec::new()))
    }
}

impl<T: Send> CentralBuffer<T> for LockedStackBuffer<T> {
    fn push(&self, item: T) {
        self.0.lock().push(item);
    }

    fn pop(&self) -> Option<T> {
        self.0.lock().pop()
    }

    fn len(&self) -> usize {
        self.0.lock().len()
    }
}

/// FIFO buffer under one global lock.
#[derive(Debug)]
pub struct LockedQueueBuffer<T>(Mutex<VecDeque<T>>);

impl<T> Default for LockedQueueBuffer<T> {
    fn default() -> Self {
        LockedQueueBuffer(Mutex::new(VecDeque::new()))
    }
}

impl<T: Send> CentralBuffer<T> for LockedQueueBuffer<T> {
    fn push(&self, item: T) {
        self.0.lock().push_back(item);
    }

    fn pop(&self) -> Option<T> {
        self.0.lock().pop_front()
    }

    fn len(&self) -> usize {
        self.0.lock().len()
    }
}

/// Lock-free MPMC buffer (the crossbeam `SegQueue` design: CAS-claimed
/// indexes over linked slot blocks — no lock on any path).
#[derive(Debug)]
pub struct LockFreeBuffer<T>(SegQueue<T>);

impl<T> Default for LockFreeBuffer<T> {
    fn default() -> Self {
        LockFreeBuffer(SegQueue::new())
    }
}

impl<T: Send> CentralBuffer<T> for LockFreeBuffer<T> {
    fn push(&self, item: T) {
        self.0.push(item);
    }

    fn pop(&self) -> Option<T> {
        self.0.pop()
    }

    fn len(&self) -> usize {
        self.0.len()
    }
}

struct CentralShared<T, B, Ti> {
    buffer: B,
    gate: SearchGate,
    timing: Ti,
    next_proc: AtomicUsize,
    closed: AtomicBool,
    _marker: std::marker::PhantomData<fn(T)>,
}

/// A centralized work list over any [`CentralBuffer`].
///
/// Every access (push, pop, or empty probe) charges
/// [`Resource::Shared`]`(0)`: the whole structure lives on one node and is
/// a hot spot by construction. The cost model is statically dispatched
/// (`Ti: Timing`, default [`NullTiming`]), mirroring the pool.
pub struct Central<T, B, Ti: Timing = NullTiming> {
    shared: Arc<CentralShared<T, B, Ti>>,
}

impl<T, B: fmt::Debug, Ti: Timing> fmt::Debug for Central<T, B, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Central").field("buffer", &self.shared.buffer).finish_non_exhaustive()
    }
}

impl<T, B, Ti: Timing> Clone for Central<T, B, Ti> {
    fn clone(&self) -> Self {
        Central { shared: Arc::clone(&self.shared) }
    }
}

/// The paper's baseline: a stack protected by a global lock.
pub type GlobalStack<T, Ti = NullTiming> = Central<T, LockedStackBuffer<T>, Ti>;
/// FIFO variant of the global-lock baseline.
pub type GlobalQueue<T, Ti = NullTiming> = Central<T, LockedQueueBuffer<T>, Ti>;
/// Modern lock-free centralized queue.
pub type LockFreeQueue<T, Ti = NullTiming> = Central<T, LockFreeBuffer<T>, Ti>;

impl<T: Send + 'static, B: CentralBuffer<T> + 'static> Central<T, B> {
    /// Creates an empty list with no cost model.
    pub fn new() -> Self {
        Self::with_timing(NullTiming::new())
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static, Ti: Timing> Central<T, B, Ti> {
    /// Creates an empty list charging accesses through `timing` (statically
    /// dispatched; pass a [`cpool::DynTiming`] for runtime selection).
    pub fn with_timing(timing: Ti) -> Self {
        Central {
            shared: Arc::new(CentralShared {
                buffer: B::default(),
                gate: SearchGate::new(),
                timing,
                next_proc: AtomicUsize::new(0),
                closed: AtomicBool::new(false),
                _marker: std::marker::PhantomData,
            }),
        }
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static> Default for Central<T, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static, Ti: Timing> SharedWorkList<T>
    for Central<T, B, Ti>
{
    type Handle = CentralHandle<T, B, Ti>;

    fn register(&self) -> CentralHandle<T, B, Ti> {
        // Relaxed for the same reason as `Registry::register`: the counter
        // only mints unique ids and publishes nothing.
        let proc = ProcId::new(self.shared.next_proc.fetch_add(1, Ordering::Relaxed));
        self.shared.gate.register();
        CentralHandle { shared: Arc::clone(&self.shared), proc }
    }

    fn seed(&self, items: Vec<T>) {
        for item in items {
            self.shared.buffer.push(item);
        }
    }

    fn len(&self) -> usize {
        self.shared.buffer.len()
    }

    fn close(&self) {
        // The centralized lists wait by polling, so a flag the poll loop
        // reads is a complete close mechanism — no wakeup channel needed.
        self.shared.closed.store(true, Ordering::SeqCst);
    }

    fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }
}

/// Worker handle to a [`Central`] list.
pub struct CentralHandle<T, B, Ti: Timing = NullTiming> {
    shared: Arc<CentralShared<T, B, Ti>>,
    proc: ProcId,
}

impl<T, B, Ti: Timing> fmt::Debug for CentralHandle<T, B, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralHandle").field("proc", &self.proc).finish_non_exhaustive()
    }
}

impl<T, B, Ti: Timing> Drop for CentralHandle<T, B, Ti> {
    fn drop(&mut self) {
        self.shared.gate.deregister();
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static, Ti: Timing> WorkHandle<T>
    for CentralHandle<T, B, Ti>
{
    fn put(&mut self, item: T) {
        self.shared.timing.charge(self.proc, Resource::Shared(0));
        self.shared.buffer.push(item);
    }

    // `put_batch` deliberately keeps the default per-`put` implementation:
    // the centralized structure synchronizes (and is charged) per access —
    // that hot spot is the baseline's defining property, and batching the
    // *charge* would falsify the §4.4 pool-vs-central comparison.

    fn get(&mut self) -> Result<T, Done> {
        self.shared.timing.charge(self.proc, Resource::Shared(0));
        if let Some(item) = self.shared.buffer.pop() {
            return Ok(item);
        }
        let _guard = self.shared.gate.begin_search();
        loop {
            self.shared.timing.charge(self.proc, Resource::Shared(0));
            if let Some(item) = self.shared.buffer.pop() {
                return Ok(item);
            }
            if self.shared.closed.load(Ordering::SeqCst) {
                // Drain-before-Done: a push sequenced before the close()
                // that this load just observed may have raced *after* the
                // pop above, so give the buffer one more look now that the
                // flag orders us after every pre-close deposit.
                return self.shared.buffer.pop().ok_or(Done);
            }
            if self.shared.gate.all_searching() {
                return Err(Done);
            }
            std::thread::yield_now();
        }
    }

    fn proc_id(&self) -> ProcId {
        self.proc
    }
}

// ---------------------------------------------------------------------------
// Pool-backed work list
// ---------------------------------------------------------------------------

/// A concurrent pool adapted to the [`SharedWorkList`] interface.
///
/// `get` maps to the pool's blocking
/// [`remove`](cpool::PoolOps::remove): by default under
/// [`WaitStrategy::Block`], so an idle worker **parks** on the pool's
/// notifier and is woken by the add edge instead of polling the segments.
/// Termination is close-on-completion: the first worker whose remove takes
/// the terminal abort (every worker searching with the pool drained — a
/// stable "done" signal, since no process can add while all are searching)
/// [closes](cpool::PoolOps::close) the pool, which wakes every parked peer
/// to drain out with [`Done`]. `put_batch` maps to
/// [`add_batch`](cpool::PoolOps::add_batch), one segment lock per batch.
///
/// Virtual-time runs must use [`with_wait`](Self::with_wait) and a polling
/// strategy (`Spin`): a thread parked on a real OS primitive never yields
/// the simulation token, and `Spin` keeps the run deterministic.
pub struct PoolWorkList<T: Send + 'static, Ti: Timing = NullTiming> {
    pool: Pool<VecSegment<T>, DynPolicy, Ti>,
    wait: WaitStrategy,
}

impl<T: Send + 'static, Ti: Timing> fmt::Debug for PoolWorkList<T, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolWorkList").field("pool", &self.pool).finish()
    }
}

impl<T: Send + 'static, Ti: Timing> Clone for PoolWorkList<T, Ti> {
    fn clone(&self) -> Self {
        PoolWorkList { pool: self.pool.clone(), wait: self.wait }
    }
}

impl<T: Send + 'static, Ti: Timing> PoolWorkList<T, Ti> {
    /// Creates a pool-backed work list with `segments` segments, the given
    /// search algorithm, and cost model (statically dispatched; pass a
    /// [`cpool::DynTiming`] for runtime selection). Idle workers wait
    /// event-driven ([`WaitStrategy::Block`]); use
    /// [`with_wait`](Self::with_wait) to choose a polling strategy instead.
    ///
    /// The policy is constructed internally for `segments` segments
    /// ([`PoolBuilder::build_policy`]), so the count is stated once.
    pub fn new(segments: usize, policy: PolicyKind, timing: Ti, seed: u64) -> Self {
        Self::with_wait(segments, policy, timing, seed, WaitStrategy::Block)
    }

    /// [`new`](Self::new) with an explicit wait strategy for idle workers.
    ///
    /// Virtual-time runs must pass [`WaitStrategy::Spin`]: parking a thread
    /// under the simulation scheduler would deadlock the virtual clock, and
    /// spinning keeps the run deterministic.
    pub fn with_wait(
        segments: usize,
        policy: PolicyKind,
        timing: Ti,
        seed: u64,
        wait: WaitStrategy,
    ) -> Self {
        let pool = PoolBuilder::new(segments).seed(seed).timing(timing).build_policy(policy);
        PoolWorkList { pool, wait }
    }

    /// The underlying pool (for statistics).
    pub fn pool(&self) -> &Pool<VecSegment<T>, DynPolicy, Ti> {
        &self.pool
    }
}

impl<T: Send + 'static, Ti: Timing> SharedWorkList<T> for PoolWorkList<T, Ti> {
    type Handle = PoolWorkHandle<T, Ti>;

    fn register(&self) -> PoolWorkHandle<T, Ti> {
        PoolWorkHandle { inner: self.pool.register(), wait: self.wait }
    }

    fn seed(&self, items: Vec<T>) {
        let mut items = items.into_iter();
        self.pool
            .fill_evenly_with(items.len(), |_| items.next().expect("fill count matches items"));
    }

    fn len(&self) -> usize {
        self.pool.total_len()
    }

    fn close(&self) {
        self.pool.close();
    }

    fn is_closed(&self) -> bool {
        self.pool.is_closed()
    }
}

/// Worker handle to a [`PoolWorkList`].
pub struct PoolWorkHandle<T: Send + 'static, Ti: Timing = NullTiming> {
    inner: Handle<VecSegment<T>, DynPolicy, Ti>,
    wait: WaitStrategy,
}

impl<T: Send + 'static, Ti: Timing> fmt::Debug for PoolWorkHandle<T, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolWorkHandle").field("inner", &self.inner).finish()
    }
}

impl<T: Send + 'static, Ti: Timing> WorkHandle<T> for PoolWorkHandle<T, Ti> {
    fn put(&mut self, item: T) {
        self.inner.add(item);
    }

    fn put_batch<I: IntoIterator<Item = T>>(&mut self, items: I) {
        // One segment lock for the whole batch of generated work.
        self.inner.add_batch(items);
    }

    fn get(&mut self) -> Result<T, Done> {
        // The blocking remove owns the wait policy: transient aborts (an
        // element slipped in just before its producer started searching)
        // are waited out inside the crate — parked on the notifier under
        // the default Block strategy. An unbounded lap budget is safe
        // because the terminal-abort and close paths end the wait as soon
        // as the pool is genuinely finished.
        match self.inner.remove_with_attempts(self.wait, usize::MAX) {
            Ok(item) => Ok(item),
            Err(RemoveError::Closed) => Err(Done),
            Err(_) => {
                // Terminal abort: this worker just witnessed "drained with
                // everyone searching" — completion. Close the pool so
                // parked peers wake and drain out instead of each having
                // to re-derive the proof (close is idempotent, so races
                // between several witnesses are fine).
                self.inner.close();
                Err(Done)
            }
        }
    }

    fn get_batch(&mut self, n: usize, out: &mut Vec<T>) -> Result<usize, Done> {
        if n == 0 {
            return Ok(0);
        }
        // One batched remove under a single segment lock (falling back to
        // one steal search when the local segment is empty); the typed
        // transfer layer serves it straight from the segment's batch
        // currency. Only when nothing is reachable *right now* does the
        // worker fall back to a blocking single get.
        let batch = self.inner.try_remove_batch(n);
        if !batch.is_empty() {
            let got = batch.len();
            out.extend(batch);
            return Ok(got);
        }
        out.push(self.get()?);
        Ok(1)
    }

    fn proc_id(&self) -> ProcId {
        self.inner.proc_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpool::PolicyKind;
    use std::thread;

    fn drain_all<W, T>(list: &W, workers: usize, items: Vec<T>) -> usize
    where
        T: Send + 'static,
        W: SharedWorkList<T>,
    {
        list.seed(items);
        let handles: Vec<W::Handle> = (0..workers).map(|_| list.register()).collect();
        let got = AtomicUsize::new(0);
        thread::scope(|s| {
            for mut h in handles {
                let got = &got;
                s.spawn(move || {
                    while h.get().is_ok() {
                        got.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        got.load(Ordering::Relaxed)
    }

    #[test]
    fn global_stack_drains_exactly_once() {
        let list: GlobalStack<u32> = GlobalStack::new();
        assert_eq!(drain_all(&list, 4, (0..1000).collect()), 1000);
        assert!(list.is_empty());
    }

    #[test]
    fn global_queue_is_fifo() {
        let list: GlobalQueue<u32> = GlobalQueue::new();
        list.seed(vec![1, 2, 3]);
        let mut h = list.register();
        assert_eq!(h.get(), Ok(1));
        assert_eq!(h.get(), Ok(2));
        assert_eq!(h.get(), Ok(3));
        assert_eq!(h.get(), Err(Done));
    }

    #[test]
    fn global_stack_is_lifo() {
        let list: GlobalStack<u32> = GlobalStack::new();
        list.seed(vec![1, 2, 3]);
        let mut h = list.register();
        assert_eq!(h.get(), Ok(3));
    }

    #[test]
    fn lock_free_queue_drains() {
        let list: LockFreeQueue<u32> = LockFreeQueue::new();
        assert_eq!(drain_all(&list, 4, (0..1000).collect()), 1000);
    }

    #[test]
    fn pool_work_list_drains() {
        let list: PoolWorkList<u32> =
            PoolWorkList::new(4, PolicyKind::Linear, NullTiming::new(), 7);
        assert_eq!(drain_all(&list, 4, (0..1000).collect()), 1000);
        assert_eq!(list.len(), 0);
    }

    #[test]
    fn workers_that_generate_work_are_waited_for() {
        // One worker seeds nothing but generates items on the fly; others
        // must not declare Done while it is still working.
        let list: GlobalStack<u32> = GlobalStack::new();
        list.seed(vec![0]);
        let handles: Vec<_> = (0..3).map(|_| list.register()).collect();
        let processed = AtomicUsize::new(0);
        thread::scope(|s| {
            for mut h in handles {
                let processed = &processed;
                s.spawn(move || {
                    while let Ok(item) = h.get() {
                        processed.fetch_add(1, Ordering::Relaxed);
                        if item < 100 {
                            // Fan out two children per item, simulating a
                            // game-tree expansion.
                            h.put(item * 2 + 100);
                            h.put(item * 2 + 101);
                        }
                    }
                });
            }
        });
        // Item 0 fans out to 100, 101; neither fans further (>= 100).
        assert_eq!(processed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_work_list_with_generation() {
        let list: PoolWorkList<u32> = PoolWorkList::new(3, PolicyKind::Tree, NullTiming::new(), 1);
        list.seed(vec![0]);
        let handles: Vec<_> = (0..3).map(|_| list.register()).collect();
        let processed = AtomicUsize::new(0);
        thread::scope(|s| {
            for mut h in handles {
                let processed = &processed;
                s.spawn(move || {
                    while let Ok(item) = h.get() {
                        processed.fetch_add(1, Ordering::Relaxed);
                        if item < 4 {
                            // Generated children travel as one batch.
                            h.put_batch([item + 1, item + 1]);
                        }
                    }
                });
            }
        });
        // Binary fan-out of depth 4 from one root: 1+2+4+8+16 = 31 items.
        assert_eq!(processed.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn pool_get_batch_serves_many_per_lock() {
        let list: PoolWorkList<u32> =
            PoolWorkList::new(2, PolicyKind::Linear, NullTiming::new(), 5);
        list.seed((0..20).collect());
        let mut h = list.register();
        let mut out = Vec::new();
        let got = h.get_batch(8, &mut out).expect("items seeded");
        assert_eq!(got, out.len());
        assert!((1..=8).contains(&got));
        // Keep batching until the list is dry; every item arrives once.
        while h.get_batch(8, &mut out).is_ok() {}
        out.sort_unstable();
        assert_eq!(out.len(), 20);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn central_get_batch_defaults_to_one() {
        let list: GlobalStack<u32> = GlobalStack::new();
        list.seed(vec![1, 2, 3]);
        let mut h = list.register();
        let mut out = Vec::new();
        assert_eq!(h.get_batch(8, &mut out), Ok(1), "hot-spot lists stay per-access");
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn done_error_displays() {
        assert_eq!(Done.to_string(), "work list drained: all workers idle");
    }

    #[test]
    fn pool_list_closes_itself_on_completion() {
        let list: PoolWorkList<u32> =
            PoolWorkList::new(2, PolicyKind::Linear, NullTiming::new(), 3);
        assert!(!list.is_closed());
        assert_eq!(drain_all(&list, 3, (0..100).collect()), 100);
        assert!(list.is_closed(), "the completion witness closed the pool");
        // A late worker on the closed list drains straight to Done.
        let mut late = list.register();
        assert_eq!(late.get(), Err(Done));
    }

    #[test]
    fn explicit_close_releases_blocked_pool_workers() {
        // Workers park on an empty, never-completing list (an outsider
        // handle keeps the gate from declaring termination); close() must
        // wake and release them all.
        let list: PoolWorkList<u32> =
            PoolWorkList::new(4, PolicyKind::Linear, NullTiming::new(), 9);
        let _outsider = list.register(); // registered, never searches
        let released = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..3 {
                let mut h = list.register();
                let released = &released;
                s.spawn(move || {
                    assert_eq!(h.get(), Err(Done));
                    released.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Give the workers time to park, then shut the list down.
            thread::sleep(std::time::Duration::from_millis(5));
            list.close();
        });
        assert_eq!(released.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn closed_central_list_drains_residue_first() {
        let list: GlobalStack<u32> = GlobalStack::new();
        list.seed(vec![1, 2]);
        list.close();
        let mut h = list.register();
        assert_eq!(h.get(), Ok(2));
        assert_eq!(h.get(), Ok(1));
        assert_eq!(h.get(), Err(Done), "drained residue, then Done");
        assert!(list.is_closed());
    }

    #[test]
    fn close_releases_central_waiters() {
        let list: GlobalQueue<u32> = GlobalQueue::new();
        let _outsider = list.register(); // suppresses the all-searching rule
        thread::scope(|s| {
            let mut h = list.register();
            s.spawn(move || {
                assert_eq!(h.get(), Err(Done));
            });
            thread::sleep(std::time::Duration::from_millis(2));
            list.close();
        });
    }
}
