//! # Shared work lists: the concurrent pool's competitors
//!
//! §4.4 of Kotz & Ellis (1989) compares pools against "the original version
//! that used a stack with a global lock for the work list" (40% slower,
//! speedup 10.7 vs ≈15 at 16 processors). This crate provides that
//! baseline and friends behind one [`SharedWorkList`] abstraction so the
//! application study can swap implementations:
//!
//! * [`GlobalStack`] — `Mutex<Vec<T>>`, the paper's comparator;
//! * [`GlobalQueue`] — `Mutex<VecDeque<T>>` (FIFO variant);
//! * [`LockFreeQueue`] — a modern lock-free MPMC queue
//!   (`crossbeam_queue::SegQueue`): still a *centralized* structure, so it
//!   remains a memory hot spot on a NUMA machine even without a lock;
//! * [`PoolWorkList`] — a concurrent pool (any search policy) adapted to
//!   the same interface.
//!
//! All centralized lists charge their accesses to
//! [`Resource::Shared`]`(0)` so NUMA cost models and the virtual-time
//! scheduler see the hot spot; termination uses the same
//! all-processes-searching rule as the pool ([`cpool::SearchGate`]).
//! Workers that generate work in bursts should deposit it through
//! [`WorkHandle::put_batch`], which the pool-backed list serves with one
//! segment lock per batch ([`cpool::PoolOps::add_batch`]).
//!
//! Like the pools they compete with, every work list is generic over its
//! [`Timing`] cost model (default [`cpool::NullTiming`], statically
//! dispatched); pass a [`cpool::DynTiming`] to select the model at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_queue::SegQueue;
use parking_lot::Mutex;

use cpool::{
    DynPolicy, Handle, NullTiming, PolicyKind, Pool, PoolBuilder, PoolOps, ProcId, Resource,
    SearchGate, Timing, VecSegment, WaitStrategy,
};

/// Returned by [`WorkHandle::get`] when the computation has terminated:
/// the list is empty and every registered worker is looking for work, so no
/// new items can appear.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Done;

impl fmt::Display for Done {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("work list drained: all workers idle")
    }
}

impl Error for Done {}

/// Per-worker handle to a shared work list.
pub trait WorkHandle<T>: Send {
    /// Deposits one work item.
    fn put(&mut self, item: T);

    /// Deposits a batch of work items, paying the list's synchronization
    /// once per batch where the backing structure supports it (the
    /// pool-backed list maps this to [`cpool::PoolOps::add_batch`]; the
    /// default implementation falls back to per-item [`put`](Self::put)).
    fn put_batch<I: IntoIterator<Item = T>>(&mut self, items: I) {
        for item in items {
            self.put(item);
        }
    }

    /// Retrieves a work item, waiting (by re-probing) while other workers
    /// are still active.
    ///
    /// # Errors
    ///
    /// Returns [`Done`] when the list is empty and every registered worker
    /// is simultaneously looking for work.
    fn get(&mut self) -> Result<T, Done>;

    /// The worker's process id (for cost accounting).
    fn proc_id(&self) -> ProcId;
}

/// A shared list of work items, usable from many workers.
pub trait SharedWorkList<T: Send>: Send + Sync {
    /// The per-worker handle type.
    type Handle: WorkHandle<T>;

    /// Registers a worker. The `i`-th registration gets process id `i`.
    fn register(&self) -> Self::Handle;

    /// Deposits initial items without charging any worker (pre-run setup).
    fn seed(&self, items: Vec<T>);

    /// Number of items currently stored (snapshot).
    fn len(&self) -> usize;

    /// Whether the list is currently empty (snapshot).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Centralized lists
// ---------------------------------------------------------------------------

/// Storage discipline of a centralized list.
pub trait CentralBuffer<T>: Send + Sync + Default {
    /// Adds an item.
    fn push(&self, item: T);
    /// Removes an item (LIFO, FIFO, or unordered per implementation).
    fn pop(&self) -> Option<T>;
    /// Number of stored items.
    fn len(&self) -> usize;
    /// Whether the buffer is currently empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// LIFO buffer under one global lock (the paper's work-list baseline).
#[derive(Debug)]
pub struct LockedStackBuffer<T>(Mutex<Vec<T>>);

impl<T> Default for LockedStackBuffer<T> {
    fn default() -> Self {
        LockedStackBuffer(Mutex::new(Vec::new()))
    }
}

impl<T: Send> CentralBuffer<T> for LockedStackBuffer<T> {
    fn push(&self, item: T) {
        self.0.lock().push(item);
    }

    fn pop(&self) -> Option<T> {
        self.0.lock().pop()
    }

    fn len(&self) -> usize {
        self.0.lock().len()
    }
}

/// FIFO buffer under one global lock.
#[derive(Debug)]
pub struct LockedQueueBuffer<T>(Mutex<VecDeque<T>>);

impl<T> Default for LockedQueueBuffer<T> {
    fn default() -> Self {
        LockedQueueBuffer(Mutex::new(VecDeque::new()))
    }
}

impl<T: Send> CentralBuffer<T> for LockedQueueBuffer<T> {
    fn push(&self, item: T) {
        self.0.lock().push_back(item);
    }

    fn pop(&self) -> Option<T> {
        self.0.lock().pop_front()
    }

    fn len(&self) -> usize {
        self.0.lock().len()
    }
}

/// Lock-free MPMC buffer (crossbeam's `SegQueue`).
#[derive(Debug)]
pub struct LockFreeBuffer<T>(SegQueue<T>);

impl<T> Default for LockFreeBuffer<T> {
    fn default() -> Self {
        LockFreeBuffer(SegQueue::new())
    }
}

impl<T: Send> CentralBuffer<T> for LockFreeBuffer<T> {
    fn push(&self, item: T) {
        self.0.push(item);
    }

    fn pop(&self) -> Option<T> {
        self.0.pop()
    }

    fn len(&self) -> usize {
        self.0.len()
    }
}

struct CentralShared<T, B, Ti> {
    buffer: B,
    gate: SearchGate,
    timing: Ti,
    next_proc: AtomicUsize,
    _marker: std::marker::PhantomData<fn(T)>,
}

/// A centralized work list over any [`CentralBuffer`].
///
/// Every access (push, pop, or empty probe) charges
/// [`Resource::Shared`]`(0)`: the whole structure lives on one node and is
/// a hot spot by construction. The cost model is statically dispatched
/// (`Ti: Timing`, default [`NullTiming`]), mirroring the pool.
pub struct Central<T, B, Ti: Timing = NullTiming> {
    shared: Arc<CentralShared<T, B, Ti>>,
}

impl<T, B: fmt::Debug, Ti: Timing> fmt::Debug for Central<T, B, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Central").field("buffer", &self.shared.buffer).finish_non_exhaustive()
    }
}

impl<T, B, Ti: Timing> Clone for Central<T, B, Ti> {
    fn clone(&self) -> Self {
        Central { shared: Arc::clone(&self.shared) }
    }
}

/// The paper's baseline: a stack protected by a global lock.
pub type GlobalStack<T, Ti = NullTiming> = Central<T, LockedStackBuffer<T>, Ti>;
/// FIFO variant of the global-lock baseline.
pub type GlobalQueue<T, Ti = NullTiming> = Central<T, LockedQueueBuffer<T>, Ti>;
/// Modern lock-free centralized queue.
pub type LockFreeQueue<T, Ti = NullTiming> = Central<T, LockFreeBuffer<T>, Ti>;

impl<T: Send + 'static, B: CentralBuffer<T> + 'static> Central<T, B> {
    /// Creates an empty list with no cost model.
    pub fn new() -> Self {
        Self::with_timing(NullTiming::new())
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static, Ti: Timing> Central<T, B, Ti> {
    /// Creates an empty list charging accesses through `timing` (statically
    /// dispatched; pass a [`cpool::DynTiming`] for runtime selection).
    pub fn with_timing(timing: Ti) -> Self {
        Central {
            shared: Arc::new(CentralShared {
                buffer: B::default(),
                gate: SearchGate::new(),
                timing,
                next_proc: AtomicUsize::new(0),
                _marker: std::marker::PhantomData,
            }),
        }
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static> Default for Central<T, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static, Ti: Timing> SharedWorkList<T>
    for Central<T, B, Ti>
{
    type Handle = CentralHandle<T, B, Ti>;

    fn register(&self) -> CentralHandle<T, B, Ti> {
        // Relaxed for the same reason as `Registry::register`: the counter
        // only mints unique ids and publishes nothing.
        let proc = ProcId::new(self.shared.next_proc.fetch_add(1, Ordering::Relaxed));
        self.shared.gate.register();
        CentralHandle { shared: Arc::clone(&self.shared), proc }
    }

    fn seed(&self, items: Vec<T>) {
        for item in items {
            self.shared.buffer.push(item);
        }
    }

    fn len(&self) -> usize {
        self.shared.buffer.len()
    }
}

/// Worker handle to a [`Central`] list.
pub struct CentralHandle<T, B, Ti: Timing = NullTiming> {
    shared: Arc<CentralShared<T, B, Ti>>,
    proc: ProcId,
}

impl<T, B, Ti: Timing> fmt::Debug for CentralHandle<T, B, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralHandle").field("proc", &self.proc).finish_non_exhaustive()
    }
}

impl<T, B, Ti: Timing> Drop for CentralHandle<T, B, Ti> {
    fn drop(&mut self) {
        self.shared.gate.deregister();
    }
}

impl<T: Send + 'static, B: CentralBuffer<T> + 'static, Ti: Timing> WorkHandle<T>
    for CentralHandle<T, B, Ti>
{
    fn put(&mut self, item: T) {
        self.shared.timing.charge(self.proc, Resource::Shared(0));
        self.shared.buffer.push(item);
    }

    // `put_batch` deliberately keeps the default per-`put` implementation:
    // the centralized structure synchronizes (and is charged) per access —
    // that hot spot is the baseline's defining property, and batching the
    // *charge* would falsify the §4.4 pool-vs-central comparison.

    fn get(&mut self) -> Result<T, Done> {
        self.shared.timing.charge(self.proc, Resource::Shared(0));
        if let Some(item) = self.shared.buffer.pop() {
            return Ok(item);
        }
        let _guard = self.shared.gate.begin_search();
        loop {
            self.shared.timing.charge(self.proc, Resource::Shared(0));
            if let Some(item) = self.shared.buffer.pop() {
                return Ok(item);
            }
            if self.shared.gate.all_searching() {
                return Err(Done);
            }
            std::thread::yield_now();
        }
    }

    fn proc_id(&self) -> ProcId {
        self.proc
    }
}

// ---------------------------------------------------------------------------
// Pool-backed work list
// ---------------------------------------------------------------------------

/// A concurrent pool adapted to the [`SharedWorkList`] interface.
///
/// `get` maps to the pool's blocking
/// [`remove`](cpool::PoolOps::remove): transient aborts retry inside the
/// pool, and termination piggybacks on the terminal abort — every worker
/// searching with the pool drained is a stable "done" signal (no process
/// can add while all are searching). `put_batch` maps to
/// [`add_batch`](cpool::PoolOps::add_batch), one segment lock per batch.
pub struct PoolWorkList<T: Send + 'static, Ti: Timing = NullTiming> {
    pool: Pool<VecSegment<T>, DynPolicy, Ti>,
}

impl<T: Send + 'static, Ti: Timing> fmt::Debug for PoolWorkList<T, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolWorkList").field("pool", &self.pool).finish()
    }
}

impl<T: Send + 'static, Ti: Timing> Clone for PoolWorkList<T, Ti> {
    fn clone(&self) -> Self {
        PoolWorkList { pool: self.pool.clone() }
    }
}

impl<T: Send + 'static, Ti: Timing> PoolWorkList<T, Ti> {
    /// Creates a pool-backed work list with `segments` segments, the given
    /// search algorithm, and cost model (statically dispatched; pass a
    /// [`cpool::DynTiming`] for runtime selection).
    ///
    /// The policy is constructed internally for `segments` segments
    /// ([`PoolBuilder::build_policy`]), so the count is stated once.
    pub fn new(segments: usize, policy: PolicyKind, timing: Ti, seed: u64) -> Self {
        let pool = PoolBuilder::new(segments).seed(seed).timing(timing).build_policy(policy);
        PoolWorkList { pool }
    }

    /// The underlying pool (for statistics).
    pub fn pool(&self) -> &Pool<VecSegment<T>, DynPolicy, Ti> {
        &self.pool
    }
}

impl<T: Send + 'static, Ti: Timing> SharedWorkList<T> for PoolWorkList<T, Ti> {
    type Handle = PoolWorkHandle<T, Ti>;

    fn register(&self) -> PoolWorkHandle<T, Ti> {
        PoolWorkHandle { inner: self.pool.register() }
    }

    fn seed(&self, items: Vec<T>) {
        let mut items = items.into_iter();
        self.pool
            .fill_evenly_with(items.len(), |_| items.next().expect("fill count matches items"));
    }

    fn len(&self) -> usize {
        self.pool.total_len()
    }
}

/// Worker handle to a [`PoolWorkList`].
pub struct PoolWorkHandle<T: Send + 'static, Ti: Timing = NullTiming> {
    inner: Handle<VecSegment<T>, DynPolicy, Ti>,
}

impl<T: Send + 'static, Ti: Timing> fmt::Debug for PoolWorkHandle<T, Ti> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolWorkHandle").field("inner", &self.inner).finish()
    }
}

impl<T: Send + 'static, Ti: Timing> WorkHandle<T> for PoolWorkHandle<T, Ti> {
    fn put(&mut self, item: T) {
        self.inner.add(item);
    }

    fn put_batch<I: IntoIterator<Item = T>>(&mut self, items: I) {
        // One segment lock for the whole batch of generated work.
        self.inner.add_batch(items);
    }

    fn get(&mut self) -> Result<T, Done> {
        // The blocking remove owns the retry policy: transient aborts (an
        // element slipped in just before its producer started searching)
        // are retried inside the crate, and the only terminal outcome is
        // abort-while-drained — exactly this trait's "done" condition. An
        // unbounded attempt budget is safe because the drained check ends
        // the wait as soon as the pool is genuinely empty.
        self.inner.remove_with_attempts(WaitStrategy::Spin, usize::MAX).map_err(|_| Done)
    }

    fn proc_id(&self) -> ProcId {
        self.inner.proc_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpool::PolicyKind;
    use std::thread;

    fn drain_all<W, T>(list: &W, workers: usize, items: Vec<T>) -> usize
    where
        T: Send + 'static,
        W: SharedWorkList<T>,
    {
        list.seed(items);
        let handles: Vec<W::Handle> = (0..workers).map(|_| list.register()).collect();
        let got = AtomicUsize::new(0);
        thread::scope(|s| {
            for mut h in handles {
                let got = &got;
                s.spawn(move || {
                    while h.get().is_ok() {
                        got.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        got.load(Ordering::Relaxed)
    }

    #[test]
    fn global_stack_drains_exactly_once() {
        let list: GlobalStack<u32> = GlobalStack::new();
        assert_eq!(drain_all(&list, 4, (0..1000).collect()), 1000);
        assert!(list.is_empty());
    }

    #[test]
    fn global_queue_is_fifo() {
        let list: GlobalQueue<u32> = GlobalQueue::new();
        list.seed(vec![1, 2, 3]);
        let mut h = list.register();
        assert_eq!(h.get(), Ok(1));
        assert_eq!(h.get(), Ok(2));
        assert_eq!(h.get(), Ok(3));
        assert_eq!(h.get(), Err(Done));
    }

    #[test]
    fn global_stack_is_lifo() {
        let list: GlobalStack<u32> = GlobalStack::new();
        list.seed(vec![1, 2, 3]);
        let mut h = list.register();
        assert_eq!(h.get(), Ok(3));
    }

    #[test]
    fn lock_free_queue_drains() {
        let list: LockFreeQueue<u32> = LockFreeQueue::new();
        assert_eq!(drain_all(&list, 4, (0..1000).collect()), 1000);
    }

    #[test]
    fn pool_work_list_drains() {
        let list: PoolWorkList<u32> =
            PoolWorkList::new(4, PolicyKind::Linear, NullTiming::new(), 7);
        assert_eq!(drain_all(&list, 4, (0..1000).collect()), 1000);
        assert_eq!(list.len(), 0);
    }

    #[test]
    fn workers_that_generate_work_are_waited_for() {
        // One worker seeds nothing but generates items on the fly; others
        // must not declare Done while it is still working.
        let list: GlobalStack<u32> = GlobalStack::new();
        list.seed(vec![0]);
        let handles: Vec<_> = (0..3).map(|_| list.register()).collect();
        let processed = AtomicUsize::new(0);
        thread::scope(|s| {
            for mut h in handles {
                let processed = &processed;
                s.spawn(move || {
                    while let Ok(item) = h.get() {
                        processed.fetch_add(1, Ordering::Relaxed);
                        if item < 100 {
                            // Fan out two children per item, simulating a
                            // game-tree expansion.
                            h.put(item * 2 + 100);
                            h.put(item * 2 + 101);
                        }
                    }
                });
            }
        });
        // Item 0 fans out to 100, 101; neither fans further (>= 100).
        assert_eq!(processed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_work_list_with_generation() {
        let list: PoolWorkList<u32> = PoolWorkList::new(3, PolicyKind::Tree, NullTiming::new(), 1);
        list.seed(vec![0]);
        let handles: Vec<_> = (0..3).map(|_| list.register()).collect();
        let processed = AtomicUsize::new(0);
        thread::scope(|s| {
            for mut h in handles {
                let processed = &processed;
                s.spawn(move || {
                    while let Ok(item) = h.get() {
                        processed.fetch_add(1, Ordering::Relaxed);
                        if item < 4 {
                            // Generated children travel as one batch.
                            h.put_batch([item + 1, item + 1]);
                        }
                    }
                });
            }
        });
        // Binary fan-out of depth 4 from one root: 1+2+4+8+16 = 31 items.
        assert_eq!(processed.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn done_error_displays() {
        assert_eq!(Done.to_string(), "work list drained: all workers idle");
    }
}
