//! Parallel game-tree expansion over a shared work list.
//!
//! "In the modified version, each position is placed in a pool when it is
//! generated. Processors repeatedly pull a position from the pool and
//! possibly generate new positions to put in the pool." — §4.4.
//!
//! The expansion enumerates the first `depth` plies from a root position.
//! Leaf evaluations are folded into a shared max-table keyed by the first
//! two moves; after all workers finish, the root minimax value is the
//! max-over-first-moves of the min-over-replies — identical, move for
//! move, to [`minimax`](crate::minimax::minimax) on the same depth (the
//! correctness tests assert this).
//!
//! Leaf handling has two modes:
//!
//! * `batch_leaves = false` (the paper's structure): every position,
//!   including the leaves, flows through the work list — 249,984 pool
//!   removes for the first three moves;
//! * `batch_leaves = true`: items at `depth - 1` evaluate their children
//!   inline instead of re-inserting them, trading pool traffic for batch
//!   work. The positions *examined* are identical.
//!
//! Work is charged through a [`Timing`] (`eval_work_ns` per leaf,
//! `expand_work_ns` per generated child), so under the virtual-time
//! scheduler the experiment models the Butterfly's compute/communication
//! ratio; see [`speedup`](crate::speedup).
//!
//! Termination is close-on-completion: the first worker whose `get` proves
//! the expansion finished (pool drained with every worker searching) closes
//! the list, releasing peers that are parked in event-driven waits — the
//! expansion seals the list again on exit for good measure. No worker burns
//! an attempt budget to discover the end of the computation.

use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use baselines::{SharedWorkList, WorkHandle};
use cpool::Timing;
use numa_sim::SimScheduler;

use crate::board::{Board, CELLS};
use crate::eval::evaluate;

/// Sentinel for "move not yet made" in a [`WorkItem`].
const NO_MOVE: u8 = u8::MAX;

/// One unexpanded position in the work list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WorkItem {
    /// The position itself.
    pub board: Board,
    /// X's first move (the root move this position descends from).
    pub first: u8,
    /// O's reply, if the position is at least two plies deep.
    pub second: u8,
    /// Plies from the root.
    pub depth: u8,
}

impl WorkItem {
    /// The root's children: one item per legal first move.
    pub fn roots(root: &Board) -> Vec<WorkItem> {
        root.moves()
            .map(|m| WorkItem { board: root.place(m), first: m, second: NO_MOVE, depth: 1 })
            .collect()
    }

    fn child(&self, m: u8) -> WorkItem {
        WorkItem {
            board: self.board.place(m),
            first: self.first,
            second: if self.depth == 1 { m } else { self.second },
            depth: self.depth + 1,
        }
    }

    /// The max-table key of a leaf descending from this item via `m`.
    fn leaf_key(&self, m: u8) -> (usize, usize) {
        match self.depth {
            // Depth-1 leaf batches: key (first, first) — unreachable in real
            // play, so the diagonal is free for depth-1 values.
            0 => unreachable!("items start at depth 1"),
            1 => (self.first as usize, m as usize),
            _ => (self.first as usize, self.second as usize),
        }
    }

    /// The max-table key of this item evaluated *as* a leaf.
    fn own_key(&self) -> (usize, usize) {
        match self.depth {
            1 => (self.first as usize, self.first as usize),
            _ => (self.first as usize, self.second as usize),
        }
    }
}

/// Configuration for a parallel expansion.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionConfig {
    /// Plies to enumerate (the paper examines 3).
    pub depth: u8,
    /// Modelled nanoseconds to evaluate one leaf.
    pub eval_work_ns: u64,
    /// Modelled nanoseconds to generate one child position.
    pub expand_work_ns: u64,
    /// Evaluate final-ply children inline instead of round-tripping them
    /// through the work list.
    pub batch_leaves: bool,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        // Calibrated so the §4.4 shape reproduces: per-leaf work dominates a
        // pool access by ~20x, while a centralized list saturates around
        // 10-11 workers (see speedup.rs).
        ExpansionConfig {
            depth: 3,
            eval_work_ns: 800_000,
            expand_work_ns: 20_000,
            batch_leaves: false,
        }
    }
}

/// Result of a parallel expansion.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionResult {
    /// Best first move for X.
    pub best_move: Option<u8>,
    /// Root minimax score (X's perspective).
    pub score: i32,
    /// Leaf positions evaluated (the paper's 249,984 for depth 3).
    pub leaves: u64,
    /// Items pulled from the work list.
    pub items_processed: u64,
    /// Modelled completion time (virtual-time runs only).
    pub makespan_ns: Option<u64>,
    /// Wall-clock duration of the run.
    pub wall_ns: u64,
}

/// Shared max-table: `cell[m1][m2] = max over m3 of eval(leaf)`.
struct ScoreTable {
    cells: Vec<AtomicI32>,
}

impl ScoreTable {
    fn new() -> Self {
        ScoreTable { cells: (0..CELLS * CELLS).map(|_| AtomicI32::new(i32::MIN)).collect() }
    }

    fn record(&self, key: (usize, usize), value: i32) {
        self.cells[key.0 * CELLS + key.1].fetch_max(value, Ordering::AcqRel);
    }

    /// `max over m1 of min over m2` with minimax's first-wins tie-breaking.
    fn root_decision(&self) -> (Option<u8>, i32) {
        let mut best: Option<(u8, i32)> = None;
        for m1 in 0..CELLS {
            let row_min = (0..CELLS)
                .filter_map(|m2| {
                    let v = self.cells[m1 * CELLS + m2].load(Ordering::Acquire);
                    (v != i32::MIN).then_some(v)
                })
                .min();
            if let Some(score) = row_min {
                if best.is_none() || score > best.expect("checked").1 {
                    best = Some((m1 as u8, score));
                }
            }
        }
        match best {
            Some((m, s)) => (Some(m), s),
            None => (None, 0),
        }
    }
}

/// Runs a parallel expansion of `root` on `workers` workers over `list`.
///
/// Under a virtual-time run, pass the scheduler: workers bracket their
/// execution with `start`/`finish` and the result carries the modelled
/// makespan. The `timing` must be the same cost model the work list was
/// built with; it is statically dispatched (use a [`cpool::DynTiming`] for
/// runtime selection).
///
/// # Panics
///
/// Panics if `cfg.depth` is zero or if `root` is within `cfg.depth` plies
/// of a finished game (the expansion does not handle terminal positions,
/// which cannot occur in the paper's first-three-moves workload).
pub fn expand_parallel<W: SharedWorkList<WorkItem>, T: Timing>(
    list: &W,
    workers: usize,
    cfg: &ExpansionConfig,
    timing: &T,
    scheduler: Option<&Arc<SimScheduler>>,
) -> ExpansionResult {
    assert!(cfg.depth > 0, "expansion needs at least one ply");
    assert!(workers > 0, "expansion needs at least one worker");
    assert_eq!(Board::new().winner(), None);

    let table = ScoreTable::new();
    let leaves = AtomicU64::new(0);
    let items = AtomicU64::new(0);

    // Seed the root's children without charging any worker, then register
    // every worker before any thread runs (virtual-time discipline).
    let root = Board::new();
    list.seed(WorkItem::roots(&root));
    let handles: Vec<W::Handle> = (0..workers).map(|_| list.register()).collect();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for mut handle in handles {
            let table = &table;
            let leaves = &leaves;
            let items = &items;
            let scheduler = scheduler.map(Arc::clone);
            scope.spawn(move || {
                let me = handle.proc_id();
                if let Some(sched) = &scheduler {
                    sched.start(me);
                }
                let mut my_leaves = 0u64;
                let mut my_items = 0u64;
                while let Ok(item) = handle.get() {
                    my_items += 1;
                    debug_assert!(
                        item.board.winner().is_none(),
                        "terminal positions are outside this workload"
                    );
                    if item.depth == cfg.depth {
                        // A full-depth leaf that travelled through the list.
                        timing.charge_work(me, cfg.eval_work_ns);
                        table.record(item.own_key(), evaluate(&item.board));
                        my_leaves += 1;
                    } else if cfg.batch_leaves && item.depth + 1 == cfg.depth {
                        // Evaluate all children inline, one batched charge.
                        let n = item.board.moves().len() as u64;
                        timing.charge_work(me, cfg.eval_work_ns * n);
                        for m in item.board.moves() {
                            table.record(item.leaf_key(m), evaluate(&item.board.place(m)));
                        }
                        my_leaves += n;
                    } else {
                        let n = item.board.moves().len() as u64;
                        timing.charge_work(me, cfg.expand_work_ns * n);
                        // Generated children travel as one batch: the
                        // pool-backed list takes its segment lock once for
                        // all of them instead of once per child.
                        handle.put_batch(item.board.moves().map(|m| item.child(m)));
                    }
                }
                leaves.fetch_add(my_leaves, Ordering::Relaxed);
                items.fetch_add(my_items, Ordering::Relaxed);
                drop(handle);
                if let Some(sched) = &scheduler {
                    sched.finish(me);
                }
            });
        }
    });
    // Completion already closed the list from inside (the worker whose get
    // took the terminal abort closes so parked peers drain out — see
    // `PoolWorkHandle::get`); sealing it here too makes the lifecycle
    // explicit for list implementations that only poll, and guards against
    // a handle leaking into a finished expansion.
    list.close();
    let wall_ns = wall_start.elapsed().as_nanos() as u64;

    let (best_move, score) = table.root_decision();
    ExpansionResult {
        best_move,
        score,
        leaves: leaves.load(Ordering::Relaxed),
        items_processed: items.load(Ordering::Relaxed),
        makespan_ns: scheduler.map(|s| s.makespan()),
        wall_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimax::minimax;
    use baselines::{GlobalStack, PoolWorkList};
    use cpool::{NullTiming, PolicyKind};

    fn null_timing() -> NullTiming {
        NullTiming::new()
    }

    fn fast_cfg(depth: u8, batch: bool) -> ExpansionConfig {
        ExpansionConfig { depth, eval_work_ns: 0, expand_work_ns: 0, batch_leaves: batch }
    }

    #[test]
    fn depth_one_matches_minimax() {
        let list: GlobalStack<WorkItem> = GlobalStack::new();
        let r = expand_parallel(&list, 2, &fast_cfg(1, false), &null_timing(), None);
        let seq = minimax(&Board::new(), 1);
        assert_eq!(r.leaves, 64);
        assert_eq!(r.score, seq.score);
        assert_eq!(r.best_move, seq.best_move);
    }

    #[test]
    fn depth_two_matches_minimax_unbatched() {
        let list: GlobalStack<WorkItem> = GlobalStack::new();
        let r = expand_parallel(&list, 3, &fast_cfg(2, false), &null_timing(), None);
        let seq = minimax(&Board::new(), 2);
        assert_eq!(r.leaves, 64 * 63);
        assert_eq!(r.items_processed, 64 + 64 * 63, "every position flowed through the list");
        assert_eq!(r.score, seq.score);
        assert_eq!(r.best_move, seq.best_move);
    }

    #[test]
    fn depth_two_matches_minimax_batched() {
        let list: GlobalStack<WorkItem> = GlobalStack::new();
        let r = expand_parallel(&list, 3, &fast_cfg(2, true), &null_timing(), None);
        let seq = minimax(&Board::new(), 2);
        assert_eq!(r.leaves, 64 * 63, "batching changes traffic, not coverage");
        assert_eq!(r.items_processed, 64, "only depth-1 items travelled");
        assert_eq!(r.score, seq.score);
        assert_eq!(r.best_move, seq.best_move);
    }

    #[test]
    fn pool_list_matches_central_list() {
        let central: GlobalStack<WorkItem> = GlobalStack::new();
        let a = expand_parallel(&central, 4, &fast_cfg(2, true), &null_timing(), None);
        let pool: PoolWorkList<WorkItem> =
            PoolWorkList::new(4, PolicyKind::Tree, null_timing(), 99);
        let b = expand_parallel(&pool, 4, &fast_cfg(2, true), &null_timing(), None);
        assert_eq!(a.score, b.score);
        assert_eq!(a.best_move, b.best_move);
        assert_eq!(a.leaves, b.leaves);
    }

    #[test]
    fn single_worker_works() {
        let list: GlobalStack<WorkItem> = GlobalStack::new();
        let r = expand_parallel(&list, 1, &fast_cfg(1, false), &null_timing(), None);
        assert_eq!(r.leaves, 64);
    }

    #[test]
    #[ignore = "expensive: full 249,984-position expansion (run with --ignored)"]
    fn depth_three_paper_position_count() {
        let pool: PoolWorkList<WorkItem> =
            PoolWorkList::new(8, PolicyKind::Linear, null_timing(), 1);
        let r = expand_parallel(&pool, 8, &fast_cfg(3, true), &null_timing(), None);
        assert_eq!(r.leaves, crate::PAPER_POSITIONS);
        let seq = minimax(&Board::new(), 3);
        assert_eq!(r.score, seq.score);
        assert_eq!(r.best_move, seq.best_move);
    }
}
