//! Positional evaluation for 4×4×4 tic-tac-toe.
//!
//! The classic line-counting heuristic: a line still open for exactly one
//! player contributes a weight that grows steeply with the number of stones
//! already placed on it; contested lines (both players present) are dead
//! and contribute nothing. Scores are from X's perspective: positive is
//! good for X.

use crate::board::{line_tables, Board};

/// Value of a completed line (a win). Kept well clear of any sum of
/// heuristic weights so that win scores dominate positional scores.
pub const WIN: i32 = 1_000_000;

/// Weight of a line with `n` stones of one player and none of the other.
pub const LINE_WEIGHT: [i32; 5] = [0, 1, 4, 16, WIN];

/// Evaluates a position from X's perspective.
///
/// ```
/// use ttt::board::Board;
/// use ttt::eval::evaluate;
///
/// let empty = Board::new();
/// assert_eq!(evaluate(&empty), 0);
/// let with_x = empty.place(21); // X takes a strong central cell
/// assert!(evaluate(&with_x) > 0);
/// ```
pub fn evaluate(board: &Board) -> i32 {
    let tables = line_tables();
    let x = board.x_bits();
    let o = board.o_bits();
    let mut score = 0i32;
    for mask in &tables.masks {
        let xc = (x & mask).count_ones() as usize;
        let oc = (o & mask).count_ones() as usize;
        match (xc, oc) {
            (0, 0) => {}
            (_, 0) => score += LINE_WEIGHT[xc],
            (0, _) => score -= LINE_WEIGHT[oc],
            _ => {} // contested line: dead
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_board_is_balanced() {
        assert_eq!(evaluate(&Board::new()), 0);
    }

    #[test]
    fn symmetry_between_players() {
        // Swapping the two players' stones negates the evaluation. Use a
        // legal position pair: X at 5 & O at 40, versus X at 40 & O at 5.
        let a = Board::from_bits(1 << 5, 1 << 40);
        let b = Board::from_bits(1 << 40, 1 << 5);
        assert_eq!(evaluate(&a), -evaluate(&b));
    }

    #[test]
    fn central_cells_outvalue_edges() {
        // Cell (1,1,1) = 21 lies on 7 lines; cell (1,0,0) = 1 on 3+1 lines.
        let center = Board::new().place(21);
        let edge = Board::new().place(1);
        assert!(evaluate(&center) > evaluate(&edge));
    }

    #[test]
    fn contested_lines_are_dead() {
        // X on cells 0 and 1 (row 0): row counts with weight 4. O at cell 2
        // kills that row entirely.
        let open = Board::from_bits(0b11, 0);
        let contested = Board::from_bits(0b11, 0b100);
        assert!(evaluate(&contested) < evaluate(&open));
    }

    #[test]
    fn win_dominates_everything() {
        // X completes row 0-3; O's four stones do NOT form a line (8,9,10
        // share a row but 20 breaks the fourth), so nothing cancels the win.
        let b = Board::from_bits(0b1111, 0b0111_0000_0000 | 1 << 20);
        assert!(evaluate(&b) >= WIN - 1000, "a full line scores the WIN weight");
    }

    #[test]
    fn three_in_a_row_is_strong() {
        // Three on an open row (weight 16) beats a lone stone, holding O's
        // stone fixed across both positions.
        let three = Board::from_bits(0b0111, 1 << 9);
        let single = Board::from_bits(0b0001, 1 << 9);
        assert!(evaluate(&three) > evaluate(&single) + 10);
    }
}
