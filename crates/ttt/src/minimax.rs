//! Sequential minimax: the reference the parallel expansion must match.
//!
//! The paper's program "is a program using the minimax algorithm for the
//! game tree" (citing Horowitz & Sahni). This implementation is a plain
//! depth-limited minimax with no pruning — the parallel expansion
//! enumerates the same tree, so node counts line up exactly
//! (64·63·62 = 249,984 leaves for the first three moves).

use crate::board::{Board, Player};
use crate::eval::{evaluate, WIN};

/// Result of a sequential search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SearchResult {
    /// The best move for the side to move (None if the position is terminal
    /// or the depth is zero).
    pub best_move: Option<u8>,
    /// The minimax score from X's perspective.
    pub score: i32,
    /// Number of leaf positions evaluated.
    pub leaves: u64,
}

/// Depth-limited minimax from X's perspective.
///
/// Terminal positions (win or full board) evaluate immediately; otherwise
/// the side to move maximizes (X) or minimizes (O) over all legal moves.
pub fn minimax(board: &Board, depth: u8) -> SearchResult {
    let mut leaves = 0;
    let (score, best_move) = search(board, depth, &mut leaves);
    SearchResult { best_move, score, leaves }
}

fn search(board: &Board, depth: u8, leaves: &mut u64) -> (i32, Option<u8>) {
    if depth == 0 || board.winner().is_some() || board.stones() as usize == crate::board::CELLS {
        *leaves += 1;
        return (terminal_score(board), None);
    }
    let maximizing = board.to_move() == Player::X;
    let mut best_score = if maximizing { i32::MIN } else { i32::MAX };
    let mut best_move = None;
    for cell in board.moves() {
        let child = board.place(cell);
        let (score, _) = search(&child, depth - 1, leaves);
        let better = if maximizing { score > best_score } else { score < best_score };
        if better {
            best_score = score;
            best_move = Some(cell);
        }
    }
    (best_score, best_move)
}

fn terminal_score(board: &Board) -> i32 {
    match board.winner() {
        Some(Player::X) => WIN,
        Some(Player::O) => -WIN,
        None => evaluate(board),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_evaluates_in_place() {
        let r = minimax(&Board::new(), 0);
        assert_eq!(r.leaves, 1);
        assert_eq!(r.best_move, None);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn depth_one_counts_all_first_moves() {
        let r = minimax(&Board::new(), 1);
        assert_eq!(r.leaves, 64);
        // Best first move is a maximal-line cell; any of the 8 "center"
        // cells (on 7 lines) works. minimax picks the first in cell order.
        let best = r.best_move.unwrap();
        assert_eq!(crate::board::line_tables().through_len[best as usize], 7);
    }

    #[test]
    fn depth_two_counts_64_by_63() {
        let r = minimax(&Board::new(), 2);
        assert_eq!(r.leaves, 64 * 63);
        // With O replying optimally the score must be no better than after
        // one X move alone.
        let d1 = minimax(&Board::new(), 1);
        assert!(r.score <= d1.score);
    }

    #[test]
    fn takes_an_immediate_win() {
        // X has 0,1,2 of row 0; O's stones are scattered and harmless.
        let b = Board::from_bits(0b0111, 1 << 30 | 1 << 45 | 1 << 60);
        assert_eq!(b.to_move(), Player::X);
        let r = minimax(&b, 1);
        assert_eq!(r.best_move, Some(3), "complete the row");
        assert_eq!(r.score, WIN);
    }

    #[test]
    fn win_detection_stops_search() {
        // X already won: any-depth search evaluates the position itself.
        let b = Board::from_bits(0b1111, 0b1111_0000_0000);
        let r = minimax(&b, 3);
        assert_eq!(r.leaves, 1);
        assert_eq!(r.score, WIN);
        assert_eq!(r.best_move, None);
    }

    #[test]
    fn blocks_an_opponent_threat() {
        // O threatens cells 16,17,18 (row) with 19 open; X (three scattered
        // stones, no counter-threat) must block at depth 2 — every other
        // move lets O complete the row.
        let b = Board::from_bits(1 << 40 | 1 << 41 | 1 << 62, 0b0111 << 16);
        assert_eq!(b.to_move(), Player::X);
        let r = minimax(&b, 2);
        assert_eq!(r.best_move, Some(19), "block O's row");
    }
}
