//! # 3-D tic-tac-toe: the paper's application study
//!
//! §4.4 of Kotz & Ellis (1989) retrofits "an existing parallel program that
//! plays three-dimensional tic-tac-toe" — minimax over a 4×4×4 board with a
//! central work list of unexpanded nodes — to use concurrent pools. "To
//! examine the first three moves of a 4 by 4 by 4 game requires examining
//! 249,984 board positions." Pools achieved 14.6–15.4× speedup on 16
//! processors; the original global-lock stack got 10.7× and was 40% slower.
//!
//! This crate implements the full application:
//!
//! * [`board`] — the 4×4×4 board, its 76 winning lines, move generation;
//! * [`eval`] — the positional heuristic for leaf evaluation;
//! * [`mod@minimax`] — the sequential reference search;
//! * [`parallel`] — the pool-driven parallel expansion (work items flow
//!   through any [`baselines::SharedWorkList`]);
//! * [`speedup`] — the §4.4 experiment: speedup curves for pools vs. the
//!   global-lock stack under the virtual-time scheduler.
//!
//! ```
//! use ttt::board::Board;
//! use ttt::minimax::minimax;
//!
//! let empty = Board::new();
//! let result = minimax(&empty, 1);
//! assert_eq!(result.leaves, 64, "64 first moves");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod board;
pub mod eval;
pub mod minimax;
pub mod parallel;
pub mod speedup;

pub use board::{Board, Player};
pub use minimax::{minimax, SearchResult};
pub use parallel::{expand_parallel, ExpansionConfig, ExpansionResult, WorkItem};
pub use speedup::{run_speedup, SpeedupConfig, SpeedupCurve, WorkListKind};

/// Number of board positions in the paper's headline measurement: the
/// leaves of the first three moves of a 4×4×4 game, `64 · 63 · 62`.
pub const PAPER_POSITIONS: u64 = 64 * 63 * 62;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_position_count() {
        assert_eq!(PAPER_POSITIONS, 249_984);
    }
}
