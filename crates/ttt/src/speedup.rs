//! The §4.4 speedup experiment.
//!
//! "Speedups for the application were nearly linear (14.6–15.4 with 16
//! processors) ... The original version that used a stack with a global
//! lock for the work list was 40% slower and had worse speedup (only 10.7
//! for 16 processors)."
//!
//! The experiment runs the parallel expansion under the virtual-time
//! scheduler with the Butterfly latency model: every work-list access pays
//! its modelled (possibly queued) cost and every position charges modelled
//! compute time, so the speedup curve is a deterministic function of the
//! configuration — and exhibits exactly the paper's mechanism, a
//! centralized list saturating while the pool's distributed segments keep
//! scaling.

use std::fmt;
use std::str::FromStr;

use baselines::{GlobalQueue, GlobalStack, LockFreeQueue, PoolWorkList};
use cpool::PolicyKind;
use numa_sim::{LatencyModel, SimScheduler, SimTiming, Topology};

use crate::parallel::{expand_parallel, ExpansionConfig, ExpansionResult, WorkItem};

/// The work-list implementations the experiment compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkListKind {
    /// Concurrent pool, linear search.
    PoolLinear,
    /// Concurrent pool, random search.
    PoolRandom,
    /// Concurrent pool, tree search.
    PoolTree,
    /// The paper's baseline: global-lock stack.
    GlobalStack,
    /// Global-lock FIFO queue.
    GlobalQueue,
    /// Lock-free centralized queue (still a hot spot).
    LockFreeQueue,
}

impl WorkListKind {
    /// The kinds the paper compares (three pool policies + the stack).
    pub const PAPER: [WorkListKind; 4] = [
        WorkListKind::PoolLinear,
        WorkListKind::PoolRandom,
        WorkListKind::PoolTree,
        WorkListKind::GlobalStack,
    ];

    /// Whether this is a pool-backed list.
    pub fn is_pool(self) -> bool {
        matches!(self, WorkListKind::PoolLinear | WorkListKind::PoolRandom | WorkListKind::PoolTree)
    }
}

impl fmt::Display for WorkListKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WorkListKind::PoolLinear => "pool-linear",
            WorkListKind::PoolRandom => "pool-random",
            WorkListKind::PoolTree => "pool-tree",
            WorkListKind::GlobalStack => "global-stack",
            WorkListKind::GlobalQueue => "global-queue",
            WorkListKind::LockFreeQueue => "lockfree-queue",
        })
    }
}

impl FromStr for WorkListKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pool-linear" => Ok(WorkListKind::PoolLinear),
            "pool-random" => Ok(WorkListKind::PoolRandom),
            "pool-tree" => Ok(WorkListKind::PoolTree),
            "global-stack" => Ok(WorkListKind::GlobalStack),
            "global-queue" => Ok(WorkListKind::GlobalQueue),
            "lockfree-queue" => Ok(WorkListKind::LockFreeQueue),
            other => Err(format!("unknown work list {other:?}")),
        }
    }
}

/// Configuration of the speedup experiment.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupConfig {
    /// Expansion parameters (depth, work costs, batching).
    pub expansion: ExpansionConfig,
    /// NUMA cost model.
    pub model: LatencyModel,
    /// Pool seed (steal randomization).
    pub seed: u64,
}

impl Default for SpeedupConfig {
    fn default() -> Self {
        SpeedupConfig {
            expansion: ExpansionConfig::default(),
            model: LatencyModel::butterfly(),
            seed: 1989,
        }
    }
}

/// One point of a speedup curve.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupPoint {
    /// Worker count.
    pub workers: usize,
    /// Modelled completion time, ns.
    pub makespan_ns: u64,
    /// `makespan(1 worker) / makespan(workers)`.
    pub speedup: f64,
    /// The expansion result (for verifying move/score agreement).
    pub result: ExpansionResult,
}

/// A speedup curve for one work-list kind.
#[derive(Clone, Debug)]
pub struct SpeedupCurve {
    /// The work list measured.
    pub kind: WorkListKind,
    /// One point per requested worker count, in order.
    pub points: Vec<SpeedupPoint>,
}

impl SpeedupCurve {
    /// The speedup at the largest measured worker count.
    pub fn final_speedup(&self) -> f64 {
        self.points.last().map_or(f64::NAN, |p| p.speedup)
    }
}

/// Runs one virtual-time expansion on `workers` workers.
pub fn run_one(kind: WorkListKind, workers: usize, cfg: &SpeedupConfig) -> ExpansionResult {
    let scheduler = SimScheduler::new(workers, cfg.model, Topology::identity(workers));
    // The cost model is always the virtual-time clock here, so the lists are
    // built over the concrete `SimTiming` — statically dispatched, no
    // trait-object adapter in the measured path.
    let timing: SimTiming = scheduler.timing();
    match kind {
        WorkListKind::PoolLinear | WorkListKind::PoolRandom | WorkListKind::PoolTree => {
            let policy = match kind {
                WorkListKind::PoolLinear => PolicyKind::Linear,
                WorkListKind::PoolRandom => PolicyKind::Random,
                _ => PolicyKind::Tree,
            };
            // Spin, not the Block default: a thread parked on an OS
            // primitive never yields the virtual-time token, and spinning
            // keeps the simulated run deterministic.
            let list: PoolWorkList<WorkItem, SimTiming> = PoolWorkList::with_wait(
                workers,
                policy,
                timing.clone(),
                cfg.seed,
                cpool::WaitStrategy::Spin,
            );
            expand_parallel(&list, workers, &cfg.expansion, &timing, Some(&scheduler))
        }
        WorkListKind::GlobalStack => {
            let list: GlobalStack<WorkItem, SimTiming> = GlobalStack::with_timing(timing.clone());
            expand_parallel(&list, workers, &cfg.expansion, &timing, Some(&scheduler))
        }
        WorkListKind::GlobalQueue => {
            let list: GlobalQueue<WorkItem, SimTiming> = GlobalQueue::with_timing(timing.clone());
            expand_parallel(&list, workers, &cfg.expansion, &timing, Some(&scheduler))
        }
        WorkListKind::LockFreeQueue => {
            let list: LockFreeQueue<WorkItem, SimTiming> =
                LockFreeQueue::with_timing(timing.clone());
            expand_parallel(&list, workers, &cfg.expansion, &timing, Some(&scheduler))
        }
    }
}

/// Runs speedup curves for the given kinds and worker counts.
///
/// # Panics
///
/// Panics if `worker_counts` is empty or does not start at 1 (the speedup
/// baseline).
pub fn run_speedup(
    kinds: &[WorkListKind],
    worker_counts: &[usize],
    cfg: &SpeedupConfig,
) -> Vec<SpeedupCurve> {
    assert!(
        worker_counts.first() == Some(&1),
        "worker counts must start at 1 for the speedup baseline"
    );
    kinds
        .iter()
        .map(|&kind| {
            let mut base_ns = 0u64;
            let points = worker_counts
                .iter()
                .map(|&workers| {
                    let result = run_one(kind, workers, cfg);
                    let makespan_ns = result.makespan_ns.expect("virtual-time run has a makespan");
                    if workers == 1 {
                        base_ns = makespan_ns;
                    }
                    SpeedupPoint {
                        workers,
                        makespan_ns,
                        speedup: base_ns as f64 / makespan_ns as f64,
                        result,
                    }
                })
                .collect();
            SpeedupCurve { kind, points }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SpeedupConfig {
        SpeedupConfig {
            expansion: ExpansionConfig {
                depth: 2,
                eval_work_ns: 800_000,
                expand_work_ns: 20_000,
                batch_leaves: true,
            },
            model: LatencyModel::butterfly(),
            seed: 5,
        }
    }

    #[test]
    fn pools_scale_better_than_the_global_stack() {
        let curves = run_speedup(
            &[WorkListKind::PoolLinear, WorkListKind::GlobalStack],
            &[1, 4],
            &tiny_cfg(),
        );
        let pool = &curves[0];
        let stack = &curves[1];
        assert!(pool.final_speedup() > 2.0, "pool speedup {:.2}", pool.final_speedup());
        assert!(
            pool.final_speedup() >= stack.final_speedup() * 0.95,
            "pool ({:.2}) should scale at least as well as the stack ({:.2})",
            pool.final_speedup(),
            stack.final_speedup()
        );
    }

    #[test]
    fn all_lists_agree_on_the_answer() {
        let cfg = tiny_cfg();
        let results: Vec<ExpansionResult> =
            WorkListKind::PAPER.iter().map(|&k| run_one(k, 3, &cfg)).collect();
        for r in &results {
            assert_eq!(r.best_move, results[0].best_move);
            assert_eq!(r.score, results[0].score);
            assert_eq!(r.leaves, 64 * 63);
        }
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let cfg = tiny_cfg();
        let a = run_one(WorkListKind::PoolTree, 4, &cfg);
        let b = run_one(WorkListKind::PoolTree, 4, &cfg);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.items_processed, b.items_processed);
    }

    #[test]
    fn kind_parse_roundtrip() {
        for kind in [
            WorkListKind::PoolLinear,
            WorkListKind::PoolRandom,
            WorkListKind::PoolTree,
            WorkListKind::GlobalStack,
            WorkListKind::GlobalQueue,
            WorkListKind::LockFreeQueue,
        ] {
            assert_eq!(kind.to_string().parse::<WorkListKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<WorkListKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "must start at 1")]
    fn speedup_requires_baseline() {
        let _ = run_speedup(&[WorkListKind::PoolLinear], &[2, 4], &tiny_cfg());
    }
}
