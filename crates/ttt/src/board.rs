//! The 4×4×4 board.
//!
//! Cells are numbered `0..64`: cell `(x, y, z) = x + 4y + 16z`. Each
//! player's stones are a 64-bit bitboard, so win detection is a mask test
//! and move generation is bit iteration.

use std::fmt;
use std::sync::OnceLock;

/// Board side length.
pub const N: usize = 4;
/// Number of cells.
pub const CELLS: usize = N * N * N;
/// Number of winning lines on a 4×4×4 board.
pub const LINES: usize = 76;

/// A player.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Player {
    /// The maximizing player (moves first).
    X,
    /// The minimizing player.
    O,
}

impl Player {
    /// The opponent.
    pub fn other(self) -> Player {
        match self {
            Player::X => Player::O,
            Player::O => Player::X,
        }
    }
}

impl fmt::Display for Player {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Player::X => "X",
            Player::O => "O",
        })
    }
}

/// Precomputed winning-line tables.
#[derive(Debug)]
pub struct LineTables {
    /// One 4-cell bitmask per winning line.
    pub masks: [u64; LINES],
    /// For each cell, the indices of the (at most 7) lines through it.
    pub through: [[u8; 7]; CELLS],
    /// Number of valid entries in `through[cell]`.
    pub through_len: [u8; CELLS],
}

fn in_bounds(v: i32) -> bool {
    (0..N as i32).contains(&v)
}

fn build_line_tables() -> LineTables {
    let mut masks = [0u64; LINES];
    let mut count = 0usize;
    // Canonical directions: first nonzero component positive.
    let mut dirs = Vec::new();
    for dx in -1i32..=1 {
        for dy in -1i32..=1 {
            for dz in -1i32..=1 {
                if (dx, dy, dz) == (0, 0, 0) {
                    continue;
                }
                if dx > 0 || (dx == 0 && dy > 0) || (dx == 0 && dy == 0 && dz > 0) {
                    dirs.push((dx, dy, dz));
                }
            }
        }
    }
    debug_assert_eq!(dirs.len(), 13);
    for z in 0..N as i32 {
        for y in 0..N as i32 {
            for x in 0..N as i32 {
                for &(dx, dy, dz) in &dirs {
                    // (x,y,z) starts a line iff the previous cell is out of
                    // bounds and the line's far end is in bounds.
                    let prev_ok = !(in_bounds(x - dx) && in_bounds(y - dy) && in_bounds(z - dz));
                    let end_ok =
                        in_bounds(x + 3 * dx) && in_bounds(y + 3 * dy) && in_bounds(z + 3 * dz);
                    if prev_ok && end_ok {
                        let mut mask = 0u64;
                        for step in 0..4i32 {
                            let cell = (x + step * dx)
                                + N as i32 * (y + step * dy)
                                + (N * N) as i32 * (z + step * dz);
                            mask |= 1u64 << cell;
                        }
                        assert!(count < LINES, "more lines than expected");
                        masks[count] = mask;
                        count += 1;
                    }
                }
            }
        }
    }
    assert_eq!(count, LINES, "a 4x4x4 board has exactly 76 lines");

    let mut through = [[0u8; 7]; CELLS];
    let mut through_len = [0u8; CELLS];
    for (line, mask) in masks.iter().enumerate() {
        for cell in 0..CELLS {
            if mask & (1u64 << cell) != 0 {
                let len = &mut through_len[cell];
                through[cell][*len as usize] = line as u8;
                *len += 1;
            }
        }
    }
    LineTables { masks, through, through_len }
}

/// The shared line tables (built on first use).
pub fn line_tables() -> &'static LineTables {
    static TABLES: OnceLock<LineTables> = OnceLock::new();
    TABLES.get_or_init(build_line_tables)
}

/// A 4×4×4 board position.
///
/// X moves first; whose turn it is follows from the stone counts, so the
/// board is two words.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Board {
    x: u64,
    o: u64,
}

impl Board {
    /// The empty board.
    pub fn new() -> Self {
        Board::default()
    }

    /// Builds a board from explicit bitboards.
    ///
    /// Stone-count legality (X moves first, so X has at most one extra
    /// stone) is *not* enforced: synthetic positions are handy in tests and
    /// puzzles. [`to_move`](Self::to_move) reports X whenever the counts
    /// are equal.
    ///
    /// # Panics
    ///
    /// Panics if the bitboards overlap.
    pub fn from_bits(x: u64, o: u64) -> Self {
        assert_eq!(x & o, 0, "players overlap");
        Board { x, o }
    }

    /// X's stones as a bitboard.
    pub fn x_bits(&self) -> u64 {
        self.x
    }

    /// O's stones as a bitboard.
    pub fn o_bits(&self) -> u64 {
        self.o
    }

    /// Number of stones on the board.
    pub fn stones(&self) -> u32 {
        (self.x | self.o).count_ones()
    }

    /// Whose turn it is.
    pub fn to_move(&self) -> Player {
        if self.x.count_ones() == self.o.count_ones() {
            Player::X
        } else {
            Player::O
        }
    }

    /// Whether `cell` is occupied.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 64`.
    pub fn occupied(&self, cell: u8) -> bool {
        assert!((cell as usize) < CELLS, "cell {cell} out of range");
        (self.x | self.o) & (1u64 << cell) != 0
    }

    /// The board after the side to move plays `cell`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is occupied or out of range.
    pub fn place(&self, cell: u8) -> Board {
        assert!(!self.occupied(cell), "cell {cell} already occupied");
        let bit = 1u64 << cell;
        match self.to_move() {
            Player::X => Board { x: self.x | bit, o: self.o },
            Player::O => Board { x: self.x, o: self.o | bit },
        }
    }

    /// Iterates over the empty cells (legal moves).
    pub fn moves(&self) -> Moves {
        Moves { empty: !(self.x | self.o) }
    }

    /// The winner, if any line is fully covered by one player.
    pub fn winner(&self) -> Option<Player> {
        let tables = line_tables();
        for mask in &tables.masks {
            if self.x & mask == *mask {
                return Some(Player::X);
            }
            if self.o & mask == *mask {
                return Some(Player::O);
            }
        }
        None
    }

    /// Faster winner check after a known last move: only lines through that
    /// cell can have completed.
    pub fn winner_after(&self, cell: u8) -> Option<Player> {
        let tables = line_tables();
        let bits = if self.x & (1u64 << cell) != 0 { self.x } else { self.o };
        let player = if self.x & (1u64 << cell) != 0 { Player::X } else { Player::O };
        let count = tables.through_len[cell as usize] as usize;
        for &line in &tables.through[cell as usize][..count] {
            let mask = tables.masks[line as usize];
            if bits & mask == mask {
                return Some(player);
            }
        }
        None
    }
}

impl fmt::Display for Board {
    /// Renders the four z-layers side by side.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in 0..N {
            for z in 0..N {
                for x in 0..N {
                    let cell = x + N * y + N * N * z;
                    let ch = if self.x >> cell & 1 == 1 {
                        'X'
                    } else if self.o >> cell & 1 == 1 {
                        'O'
                    } else {
                        '.'
                    };
                    write!(f, "{ch}")?;
                }
                if z + 1 < N {
                    write!(f, "  ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Iterator over the empty cells of a board.
#[derive(Clone, Copy, Debug)]
pub struct Moves {
    empty: u64,
}

impl Iterator for Moves {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.empty == 0 {
            None
        } else {
            let cell = self.empty.trailing_zeros() as u8;
            self.empty &= self.empty - 1;
            Some(cell)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.empty.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Moves {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_76_lines() {
        let tables = line_tables();
        assert_eq!(tables.masks.len(), 76);
        // Every line has exactly 4 cells.
        for mask in &tables.masks {
            assert_eq!(mask.count_ones(), 4);
        }
        // No duplicate lines.
        let mut sorted = tables.masks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 76);
    }

    #[test]
    fn line_census_by_type() {
        // 48 axis-parallel rows (16 per axis), 24 face diagonals
        // (2 per plane x 4 planes x 3 orientations), 4 space diagonals.
        let tables = line_tables();
        let mut axis = 0;
        let mut face = 0;
        let mut space = 0;
        for mask in &tables.masks {
            let cells: Vec<usize> = (0..64).filter(|c| mask >> c & 1 == 1).collect();
            let coord = |c: usize| (c % 4, c / 4 % 4, c / 16);
            let (x0, y0, z0) = coord(cells[0]);
            let (x1, y1, z1) = coord(cells[1]);
            let varying = [x0 != x1, y0 != y1, z0 != z1].iter().filter(|&&b| b).count();
            match varying {
                1 => axis += 1,
                2 => face += 1,
                3 => space += 1,
                _ => unreachable!(),
            }
        }
        assert_eq!((axis, face, space), (48, 24, 4));
    }

    #[test]
    fn corner_and_center_line_counts() {
        let tables = line_tables();
        // Corner (0,0,0): 3 axis + 3 face diagonals + 1 space diagonal.
        assert_eq!(tables.through_len[0], 7);
        // Every cell lies on at least 3 lines (its three axis rows) and at
        // most 7.
        for cell in 0..CELLS {
            assert!((3..=7).contains(&tables.through_len[cell]), "cell {cell}");
        }
        // Total incidences: 76 lines x 4 cells.
        let total: u32 = tables.through_len.iter().map(|&l| u32::from(l)).sum();
        assert_eq!(total, 76 * 4);
    }

    #[test]
    fn alternating_turns() {
        let b = Board::new();
        assert_eq!(b.to_move(), Player::X);
        let b = b.place(0);
        assert_eq!(b.to_move(), Player::O);
        let b = b.place(63);
        assert_eq!(b.to_move(), Player::X);
        assert_eq!(b.stones(), 2);
    }

    #[test]
    fn moves_iterate_empty_cells() {
        let b = Board::new().place(0).place(5);
        let moves: Vec<u8> = b.moves().collect();
        assert_eq!(moves.len(), 62);
        assert!(!moves.contains(&0));
        assert!(!moves.contains(&5));
        assert_eq!(b.moves().len(), 62, "exact size hint");
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_placement_panics() {
        let _ = Board::new().place(7).place(7);
    }

    #[test]
    fn row_win_detected() {
        // X takes cells 0..4 (a full x-row); O stones placed elsewhere to
        // keep the position legal.
        let b = Board::from_bits(0b1111, 0b1111_0000_0000);
        assert_eq!(b.winner(), Some(Player::X));
        assert_eq!(b.winner_after(0), Some(Player::X));
        assert_eq!(b.winner_after(3), Some(Player::X));
    }

    #[test]
    fn space_diagonal_win_detected() {
        // Diagonal (0,0,0),(1,1,1),(2,2,2),(3,3,3) -> cells 0, 21, 42, 63.
        let diag = 1u64 | 1 << 21 | 1 << 42 | 1 << 63;
        let o = 0b0110_0000_0000_0110 << 1; // 4 O stones elsewhere
        let b = Board::from_bits(diag, o);
        assert_eq!(b.winner(), Some(Player::X));
    }

    #[test]
    fn no_false_wins() {
        let b = Board::new().place(0).place(1).place(2).place(3).place(4);
        assert_eq!(b.winner(), None, "mixed stones cannot win");
    }

    #[test]
    fn winner_after_agrees_with_winner() {
        // Play a fixed sequence; after each move the two checks must agree.
        let mut b = Board::new();
        for cell in [0u8, 16, 1, 17, 2, 18, 3] {
            b = b.place(cell);
            assert_eq!(b.winner_after(cell), b.winner(), "after {cell}");
        }
        // X completed row 0..4.
        assert_eq!(b.winner(), Some(Player::X));
    }

    #[test]
    #[should_panic(expected = "players overlap")]
    fn overlapping_bits_panic() {
        let _ = Board::from_bits(1, 1);
    }

    #[test]
    fn display_renders_layers() {
        let text = Board::new().place(0).to_string();
        assert!(text.starts_with('X'));
        assert_eq!(text.lines().count(), 4);
    }
}
