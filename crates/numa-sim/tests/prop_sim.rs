//! Property-based tests for the NUMA substrate: latency-model algebra and
//! virtual-time scheduler invariants under randomized access scripts.

use std::sync::Arc;

use proptest::prelude::*;

use cpool::{ProcId, Resource, SegIdx, Timing};
use numa_sim::{LatencyModel, SimScheduler, Topology};

fn models() -> impl Strategy<Value = LatencyModel> {
    (1u64..100_000, 1u64..4, 1u64..100_000, 0u64..1_000_000).prop_map(
        |(local, ratio, tree, delay)| LatencyModel {
            local_segment_ns: local,
            remote_segment_ns: local * ratio,
            tree_node_ns: tree,
            remote_delay_ns: delay,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Remote accesses never cost less than local ones, and the artificial
    /// delay applies exactly to remote accesses.
    #[test]
    fn remote_dominates_local(model in models(), procs in 1usize..16) {
        let topo = Topology::identity(procs);
        for p in 0..procs {
            for s in 0..procs {
                let r = Resource::Segment(SegIdx::new(s));
                let cost = model.cost(ProcId::new(p), r, &topo);
                if p == s {
                    prop_assert_eq!(cost, model.local_segment_ns, "local pays base only");
                } else {
                    prop_assert_eq!(cost, model.remote_segment_ns + model.remote_delay_ns);
                    prop_assert!(cost >= model.local_segment_ns);
                }
            }
        }
    }

    /// Increasing only the delay increases every remote cost by exactly the
    /// difference and leaves local costs untouched.
    #[test]
    fn delay_shifts_remote_costs(model in models(), extra in 0u64..1_000_000) {
        let slower = model.with_remote_delay(model.remote_delay_ns + extra);
        let topo = Topology::identity(4);
        for p in 0..4 {
            for s in 0..4 {
                let r = Resource::Segment(SegIdx::new(s));
                let before = model.cost(ProcId::new(p), r, &topo);
                let after = slower.cost(ProcId::new(p), r, &topo);
                if p == s {
                    prop_assert_eq!(before, after);
                } else {
                    prop_assert_eq!(after - before, extra);
                }
            }
        }
    }

    /// Single process: the virtual clock is the exact sum of its charges
    /// (no contention, no queueing).
    #[test]
    fn lone_process_clock_is_additive(
        model in models(),
        script in prop::collection::vec((0usize..4, prop::bool::ANY), 0..50),
    ) {
        let sched = SimScheduler::new(1, model, Topology::identity(1));
        let timing = sched.timing();
        let me = ProcId::new(0);
        sched.start(me);
        let mut expected = 0u64;
        let topo = Topology::identity(1);
        for (seg, is_tree) in script {
            let r = if is_tree {
                Resource::TreeNode(seg + 1)
            } else {
                Resource::Segment(SegIdx::new(0))
            };
            expected += model.cost(me, r, &topo);
            timing.charge(me, r);
            prop_assert_eq!(sched.clock(me), expected);
        }
        sched.finish(me);
        prop_assert_eq!(sched.makespan(), expected);
    }

    /// Two processes with disjoint resources overlap perfectly; sharing one
    /// resource serializes: the makespan is bounded between max (perfect
    /// overlap) and sum (full serialization) of the per-process costs.
    #[test]
    fn makespan_is_bounded_by_overlap_extremes(
        ops_a in 1usize..60,
        ops_b in 1usize..60,
        share in prop::bool::ANY,
        cost in 1u64..10_000,
    ) {
        let model = LatencyModel::uniform(cost);
        let sched = SimScheduler::new(2, model, Topology::identity(2));
        std::thread::scope(|s| {
            for (p, ops) in [(0usize, ops_a), (1usize, ops_b)] {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let timing = sched.timing();
                    let me = ProcId::new(p);
                    let seg = if share { 0 } else { p };
                    sched.start(me);
                    for _ in 0..ops {
                        timing.charge(me, Resource::Segment(SegIdx::new(seg)));
                    }
                    sched.finish(me);
                });
            }
        });
        let a_total = ops_a as u64 * cost;
        let b_total = ops_b as u64 * cost;
        let makespan = sched.makespan();
        if share {
            prop_assert_eq!(makespan, a_total + b_total, "hot spot fully serializes");
        } else {
            prop_assert_eq!(makespan, a_total.max(b_total), "disjoint resources overlap");
        }
    }

    /// Work charges (no resource) never queue: N processes doing pure local
    /// work have makespan = max of their totals.
    #[test]
    fn pure_work_overlaps(
        works in prop::collection::vec(1u64..1_000_000, 1..8),
    ) {
        let n = works.len();
        let sched = SimScheduler::new(n, LatencyModel::uniform(1), Topology::identity(n));
        std::thread::scope(|s| {
            for (p, w) in works.iter().copied().enumerate() {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let timing = sched.timing();
                    let me = ProcId::new(p);
                    sched.start(me);
                    timing.charge_work(me, w);
                    sched.finish(me);
                });
            }
        });
        prop_assert_eq!(sched.makespan(), works.iter().copied().max().unwrap_or(0));
    }
}
