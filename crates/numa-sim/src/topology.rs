//! Placement of processes, segments, and tree nodes onto machine nodes.

use std::fmt;

use cpool::{ProcId, Resource, SegIdx};

/// Identifier of a machine node (processor + its local memory module).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Where the superimposed tree's nodes live.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TreePlacement {
    /// Tree nodes are scattered across the machine (node `i % nodes`); an
    /// access is remote unless it happens to land on the accessor's node.
    /// This is the paper's assumption: the tree "is likely to be remote for
    /// most of the processors".
    #[default]
    Scattered,
    /// The whole tree lives on one node (a central hot spot).
    Central(NodeId),
}

/// Maps pool entities to machine nodes.
///
/// The default (the paper's configuration) is the *identity* placement:
/// process `i` runs on node `i` and segment `i` is stored there, so a
/// process's own segment is its only guaranteed-local one.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: usize,
    proc_node: Vec<NodeId>,
    seg_node: Vec<NodeId>,
    tree: TreePlacement,
}

impl Topology {
    /// Identity topology over `n` nodes: process `i` and segment `i` both
    /// live on node `i`; the tree is scattered.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        let ids: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        Topology { nodes: n, proc_node: ids.clone(), seg_node: ids, tree: TreePlacement::default() }
    }

    /// Overrides the tree placement.
    pub fn with_tree_placement(mut self, tree: TreePlacement) -> Self {
        self.tree = tree;
        self
    }

    /// Overrides a single process's home node.
    ///
    /// # Panics
    ///
    /// Panics if `proc` or `node` is out of range.
    pub fn place_proc(mut self, proc: ProcId, node: NodeId) -> Self {
        assert!(node.index() < self.nodes, "node {node} out of range");
        self.proc_node[proc.index()] = node;
        self
    }

    /// Number of machine nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Home node of a process. Processes beyond the configured count wrap
    /// around (matching the pool's home-segment assignment for
    /// over-subscribed runs).
    pub fn node_of_proc(&self, proc: ProcId) -> NodeId {
        self.proc_node[proc.index() % self.proc_node.len()]
    }

    /// Node storing a segment.
    pub fn node_of_seg(&self, seg: SegIdx) -> NodeId {
        self.seg_node[seg.index() % self.seg_node.len()]
    }

    /// Node storing a tree node (by heap index).
    pub fn node_of_tree(&self, heap_index: usize) -> NodeId {
        match self.tree {
            TreePlacement::Scattered => NodeId::new(heap_index % self.nodes),
            TreePlacement::Central(node) => node,
        }
    }

    /// Whether `proc`'s access to `resource` is local.
    ///
    /// Centralized shared structures ([`Resource::Shared`]) live on node 0
    /// by convention and are local only to its resident.
    pub fn is_local(&self, proc: ProcId, resource: Resource) -> bool {
        let home = self.node_of_proc(proc);
        match resource {
            Resource::Segment(seg) => self.node_of_seg(seg) == home,
            Resource::TreeNode(heap_index) => self.node_of_tree(heap_index) == home,
            Resource::Shared(_) => home == NodeId::new(0),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_puts_everything_home() {
        let topo = Topology::identity(4);
        for i in 0..4 {
            assert!(topo.is_local(ProcId::new(i), Resource::Segment(SegIdx::new(i))));
            for j in 0..4 {
                if i != j {
                    assert!(!topo.is_local(ProcId::new(i), Resource::Segment(SegIdx::new(j))));
                }
            }
        }
    }

    #[test]
    fn scattered_tree_is_mostly_remote() {
        let topo = Topology::identity(8);
        let local_count =
            (1..16).filter(|&n| topo.is_local(ProcId::new(3), Resource::TreeNode(n))).count();
        assert!(local_count <= 2, "scattered tree rarely local: {local_count}");
    }

    #[test]
    fn central_tree_local_only_to_host() {
        let topo =
            Topology::identity(4).with_tree_placement(TreePlacement::Central(NodeId::new(2)));
        assert!(topo.is_local(ProcId::new(2), Resource::TreeNode(5)));
        assert!(!topo.is_local(ProcId::new(0), Resource::TreeNode(5)));
    }

    #[test]
    fn shared_resources_live_on_node_zero() {
        let topo = Topology::identity(4);
        assert!(topo.is_local(ProcId::new(0), Resource::Shared(0)));
        assert!(!topo.is_local(ProcId::new(1), Resource::Shared(0)));
    }

    #[test]
    fn oversubscribed_procs_wrap() {
        let topo = Topology::identity(4);
        assert_eq!(topo.node_of_proc(ProcId::new(5)), NodeId::new(1));
    }

    #[test]
    fn place_proc_overrides() {
        let topo = Topology::identity(4).place_proc(ProcId::new(3), NodeId::new(0));
        assert_eq!(topo.node_of_proc(ProcId::new(3)), NodeId::new(0));
        assert!(topo.is_local(ProcId::new(3), Resource::Segment(SegIdx::new(0))));
    }
}
