//! Real-thread cost injection: the paper's own method.
//!
//! "To simulate a higher-cost remote access architecture, delays were added
//! to each remote operation (attempt to steal from a segment) and to each
//! access of nodes in the superimposed tree." — §4.3.
//!
//! [`RealTiming`] runs on ordinary OS threads and busy-waits the modelled
//! cost of every charged access. Concurrency is whatever the host provides;
//! results are *not* deterministic (use [`SimTiming`](crate::SimTiming) for
//! that), but the code path is identical to the paper's: real threads, real
//! locks, injected delays.

use std::time::{Duration, Instant};

use cpool::{ProcId, Resource, Timing};

use crate::latency::LatencyModel;
use crate::spin::spin_for;
use crate::topology::Topology;

/// Spin-injects modelled access costs on real threads.
#[derive(Debug)]
pub struct RealTiming {
    model: LatencyModel,
    topology: Topology,
    origin: Instant,
}

impl RealTiming {
    /// Creates a real-thread cost injector.
    pub fn new(model: LatencyModel, topology: Topology) -> Self {
        RealTiming { model, topology, origin: Instant::now() }
    }

    /// The latency model in use.
    pub fn model(&self) -> LatencyModel {
        self.model
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

impl Timing for RealTiming {
    fn charge(&self, proc: ProcId, resource: Resource) {
        let cost = self.model.cost(proc, resource, &self.topology);
        spin_for(Duration::from_nanos(cost));
    }

    fn charge_work(&self, _proc: ProcId, ns: u64) {
        spin_for(Duration::from_nanos(ns));
    }

    fn now(&self, _proc: ProcId) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpool::SegIdx;

    #[test]
    fn remote_charge_takes_longer_than_local() {
        let model = LatencyModel {
            local_segment_ns: 0,
            remote_segment_ns: 300_000, // 300 µs: far above timer noise
            tree_node_ns: 0,
            remote_delay_ns: 0,
        };
        let timing = RealTiming::new(model, Topology::identity(2));
        let p = ProcId::new(0);

        let t0 = Instant::now();
        timing.charge(p, Resource::Segment(SegIdx::new(0))); // local: free
        let local = t0.elapsed();

        let t1 = Instant::now();
        timing.charge(p, Resource::Segment(SegIdx::new(1))); // remote: 300 µs
        let remote = t1.elapsed();

        assert!(remote >= Duration::from_micros(300));
        assert!(remote > local);
    }

    #[test]
    fn clock_advances() {
        let timing = RealTiming::new(LatencyModel::uniform(0), Topology::identity(1));
        let a = timing.now(ProcId::new(0));
        spin_for(Duration::from_micros(50));
        let b = timing.now(ProcId::new(0));
        assert!(b > a);
    }
}
