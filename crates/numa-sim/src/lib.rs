//! # NUMA machine substrate
//!
//! Kotz & Ellis (1989) ran their concurrent-pool experiments on a BBN
//! Butterfly: a NUMA multiprocessor where every memory module is local to
//! one processor but reachable by all, with remote accesses roughly four
//! times slower than local ones. To study more loosely-coupled machines
//! they *added an adjustable artificial delay* to every remote segment
//! probe and every superimposed-tree node access.
//!
//! This crate substitutes for that hardware:
//!
//! * [`LatencyModel`] — the cost of each access class, with a
//!   [Butterfly-calibrated preset](LatencyModel::butterfly) and the paper's
//!   adjustable [`remote_delay`](LatencyModel::with_remote_delay) knob;
//! * [`Topology`] — which node hosts each process, segment, and tree node;
//! * [`RealTiming`] — the paper's own method on real threads: spin-inject
//!   the configured delay into each remote access;
//! * [`SimScheduler`]/[`SimTiming`] — a deterministic *virtual-time*
//!   executor: processes run as ordinary threads but are serialized in
//!   virtual-time order, with per-resource busy-intervals modelling
//!   contention. Experiments become exactly reproducible and independent
//!   of the host's core count (this matters: the paper used 16 physical
//!   processors; a laptop may have one).
//!
//! ## Virtual time in one paragraph
//!
//! Every chargeable access calls [`Timing::charge`](cpool::Timing::charge)
//! on a [`SimTiming`]. The scheduler computes the access's start time as
//! the maximum of the process's clock and the resource's busy-until time
//! (queueing!), advances both by the modelled cost, and then blocks the
//! calling thread until it holds the globally minimal clock again. Exactly
//! one process executes between any two charges, so the interleaving — and
//! therefore every statistic — is a deterministic function of the seed, yet
//! the *modelled* execution is fully parallel.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod latency;
pub mod real;
pub mod sim;
pub mod spin;
pub mod topology;

pub use latency::LatencyModel;
pub use real::RealTiming;
pub use sim::{SimScheduler, SimTiming};
pub use spin::spin_for;
pub use topology::{NodeId, Topology, TreePlacement};
