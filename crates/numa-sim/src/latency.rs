//! Access-cost models.

use cpool::{ProcId, Resource};

use crate::topology::Topology;

/// Nanosecond costs for each access class, plus the paper's adjustable
/// artificial remote delay.
///
/// The [`butterfly`](LatencyModel::butterfly) preset is calibrated to the
/// machine of the paper: remote references about 4× slower than local
/// (Holliday's timings, the paper's §3.1), undelayed segment operations in
/// the tens of microseconds ("typical undelayed segment operation times are
/// approximately 70 µsec for add operations and 110 µsec for remove
/// operations"), and tree-node overhead "comparable to the segment access
/// time".
///
/// ```
/// use numa_sim::LatencyModel;
/// let m = LatencyModel::butterfly();
/// assert_eq!(m.remote_segment_ns, 4 * m.local_segment_ns);
/// let delayed = m.with_remote_delay_us(100);
/// assert_eq!(delayed.remote_delay_ns, 100_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyModel {
    /// Cost of an access to a segment on the accessor's own node.
    pub local_segment_ns: u64,
    /// Cost of an access to a segment on another node.
    pub remote_segment_ns: u64,
    /// Cost of a superimposed-tree node visit (lock + counter examine/update).
    pub tree_node_ns: u64,
    /// Extra artificial delay added to every *remote* access (segments and
    /// tree nodes) — the knob of §4.3, swept from 1 µs to 100 ms.
    pub remote_delay_ns: u64,
}

impl LatencyModel {
    /// Butterfly-calibrated model: local segment op 10 µs, remote 40 µs
    /// (4:1), tree node 30 µs, no artificial delay.
    pub fn butterfly() -> Self {
        LatencyModel {
            local_segment_ns: 10_000,
            remote_segment_ns: 40_000,
            tree_node_ns: 30_000,
            remote_delay_ns: 0,
        }
    }

    /// A uniform-memory model (local = remote): what the pool looks like on
    /// a small SMP.
    pub fn uniform(access_ns: u64) -> Self {
        LatencyModel {
            local_segment_ns: access_ns,
            remote_segment_ns: access_ns,
            tree_node_ns: access_ns,
            remote_delay_ns: 0,
        }
    }

    /// Returns a copy with the artificial remote delay set (nanoseconds).
    pub fn with_remote_delay(mut self, delay_ns: u64) -> Self {
        self.remote_delay_ns = delay_ns;
        self
    }

    /// Returns a copy with the artificial remote delay set (microseconds,
    /// the unit the paper sweeps in).
    pub fn with_remote_delay_us(self, delay_us: u64) -> Self {
        self.with_remote_delay(delay_us * 1_000)
    }

    /// Cost of `proc` accessing `resource` under `topology`.
    ///
    /// Tree nodes cost [`tree_node_ns`](Self::tree_node_ns) plus the remote
    /// delay when stored remotely; segments and centralized shared
    /// structures cost local/remote plus the remote delay when remote.
    pub fn cost(&self, proc: ProcId, resource: Resource, topology: &Topology) -> u64 {
        let local = topology.is_local(proc, resource);
        let base = match resource {
            Resource::TreeNode(_) => self.tree_node_ns,
            Resource::Segment(_) | Resource::Shared(_) => {
                if local {
                    self.local_segment_ns
                } else {
                    self.remote_segment_ns
                }
            }
            _ => self.remote_segment_ns,
        };
        if local {
            base
        } else {
            base + self.remote_delay_ns
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::butterfly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpool::SegIdx;

    #[test]
    fn butterfly_ratio_is_four() {
        let m = LatencyModel::butterfly();
        assert_eq!(m.remote_segment_ns / m.local_segment_ns, 4);
    }

    #[test]
    fn local_access_costs_local() {
        let m = LatencyModel::butterfly();
        let topo = Topology::identity(4);
        let c = m.cost(ProcId::new(1), Resource::Segment(SegIdx::new(1)), &topo);
        assert_eq!(c, m.local_segment_ns);
    }

    #[test]
    fn remote_access_costs_remote_plus_delay() {
        let m = LatencyModel::butterfly().with_remote_delay_us(5);
        let topo = Topology::identity(4);
        let c = m.cost(ProcId::new(1), Resource::Segment(SegIdx::new(2)), &topo);
        assert_eq!(c, m.remote_segment_ns + 5_000);
    }

    #[test]
    fn local_access_never_pays_delay() {
        let m = LatencyModel::butterfly().with_remote_delay_us(1000);
        let topo = Topology::identity(4);
        let c = m.cost(ProcId::new(2), Resource::Segment(SegIdx::new(2)), &topo);
        assert_eq!(c, m.local_segment_ns);
    }

    #[test]
    fn tree_nodes_pay_tree_cost() {
        let m = LatencyModel::butterfly().with_remote_delay_us(1);
        let topo = Topology::identity(4);
        // Heap node 1 is on node 1; proc 0 accesses remotely.
        let c = m.cost(ProcId::new(0), Resource::TreeNode(1), &topo);
        assert_eq!(c, m.tree_node_ns + 1_000);
        // Proc 1 accesses the same node locally: no delay.
        let c_local = m.cost(ProcId::new(1), Resource::TreeNode(1), &topo);
        assert_eq!(c_local, m.tree_node_ns);
    }

    #[test]
    fn uniform_model_has_no_numa_effect() {
        let m = LatencyModel::uniform(100);
        let topo = Topology::identity(8);
        for p in 0..8 {
            for s in 0..8 {
                assert_eq!(m.cost(ProcId::new(p), Resource::Segment(SegIdx::new(s)), &topo), 100);
            }
        }
    }
}
