//! Deterministic virtual-time execution of pool experiments.
//!
//! The paper measured on 16 real Butterfly processors. To reproduce its
//! experiments *exactly* — same interleavings, same statistics, on any
//! host — this module executes the logical processes under a conservative
//! virtual-time scheduler:
//!
//! * every process has a virtual clock (ns);
//! * every shared resource (segment, tree node, central structure) has a
//!   *busy-until* time: an access starts at `max(proc clock, busy-until)`
//!   and occupies the resource for its modelled cost, so contention appears
//!   as queueing delay exactly where the paper saw lock contention;
//! * after each charge, the calling thread blocks until its clock is the
//!   minimum among unfinished processes (ties broken by process id), so
//!   **exactly one process executes between any two charges**.
//!
//! The result is a deterministic discrete-event simulation whose "event
//! handlers" are the *real* pool algorithms running on real threads — no
//! re-implementation, no model drift.
//!
//! # Protocol
//!
//! Each logical process must call [`SimScheduler::start`] before touching
//! any shared state, perform all shared work between `start` and
//! [`SimScheduler::finish`], and charge every shared access through the
//! [`SimTiming`] (the pool does this automatically). Any state shared among
//! processes (pool handles, budgets) must be created *before* the process
//! threads start. See `harness::sim_runner` for the canonical usage.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use cpool::{ProcId, Resource, Timing};

use crate::latency::LatencyModel;
use crate::topology::Topology;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProcPhase {
    /// Holds the virtual clock at 0, blocking everyone else, until the
    /// process calls `start` — latecomers cannot be overtaken.
    NotStarted,
    Running,
    Finished,
}

#[derive(Debug)]
struct Inner {
    clock: Vec<u64>,
    phase: Vec<ProcPhase>,
    busy: HashMap<Resource, u64>,
}

impl Inner {
    /// The unfinished process with the minimal (clock, pid), if any.
    fn min_unfinished(&self) -> Option<usize> {
        (0..self.clock.len())
            .filter(|&p| self.phase[p] != ProcPhase::Finished)
            .min_by_key(|&p| (self.clock[p], p))
    }
}

/// Conservative virtual-time scheduler for a fixed set of processes.
///
/// See the [module docs](self) for the execution model and protocol.
#[derive(Debug)]
pub struct SimScheduler {
    inner: Mutex<Inner>,
    wakeups: Box<[Condvar]>,
    model: LatencyModel,
    topology: Topology,
}

impl SimScheduler {
    /// Creates a scheduler for processes `0..procs`.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is zero.
    pub fn new(procs: usize, model: LatencyModel, topology: Topology) -> Arc<Self> {
        assert!(procs > 0, "scheduler needs at least one process");
        Arc::new(SimScheduler {
            inner: Mutex::new(Inner {
                clock: vec![0; procs],
                phase: vec![ProcPhase::NotStarted; procs],
                busy: HashMap::new(),
            }),
            wakeups: (0..procs).map(|_| Condvar::new()).collect(),
            model,
            topology,
        })
    }

    /// Number of processes.
    pub fn procs(&self) -> usize {
        self.wakeups.len()
    }

    /// The latency model in use.
    pub fn model(&self) -> LatencyModel {
        self.model
    }

    /// Creates the [`Timing`] facade for this scheduler.
    pub fn timing(self: &Arc<Self>) -> SimTiming {
        SimTiming { scheduler: Arc::clone(self) }
    }

    /// Enters the simulation: blocks until this process holds the minimal
    /// virtual clock. Must be called exactly once per process, before any
    /// shared-state access.
    ///
    /// # Panics
    ///
    /// Panics if called twice for the same process or out of range.
    pub fn start(&self, proc: ProcId) {
        let p = proc.index();
        let mut inner = self.inner.lock();
        assert!(p < inner.clock.len(), "process {proc} out of range");
        assert_eq!(inner.phase[p], ProcPhase::NotStarted, "{proc} started twice");
        inner.phase[p] = ProcPhase::Running;
        self.wait_until_min(p, &mut inner);
    }

    /// Leaves the simulation. The process's clock keeps its final value
    /// (it contributes to [`makespan`](Self::makespan)); the next minimal
    /// process is woken.
    ///
    /// # Panics
    ///
    /// Panics if the process is not running.
    pub fn finish(&self, proc: ProcId) {
        let p = proc.index();
        let mut inner = self.inner.lock();
        assert_eq!(inner.phase[p], ProcPhase::Running, "{proc} finished while not running");
        inner.phase[p] = ProcPhase::Finished;
        if let Some(next) = inner.min_unfinished() {
            self.wakeups[next].notify_one();
        }
    }

    /// Current virtual clock of a process.
    pub fn clock(&self, proc: ProcId) -> u64 {
        self.inner.lock().clock[proc.index()]
    }

    /// Maximum virtual clock across all processes: the modelled parallel
    /// completion time once every process has finished.
    pub fn makespan(&self) -> u64 {
        self.inner.lock().clock.iter().copied().max().unwrap_or(0)
    }

    fn charge_internal(&self, proc: ProcId, resource: Option<Resource>, cost: u64) {
        let p = proc.index();
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.phase[p], ProcPhase::Running, "{proc} charged without start()");
        let start = match resource {
            Some(r) => {
                let busy = inner.busy.get(&r).copied().unwrap_or(0);
                inner.clock[p].max(busy)
            }
            None => inner.clock[p],
        };
        let end = start + cost;
        inner.clock[p] = end;
        if let Some(r) = resource {
            inner.busy.insert(r, end);
        }
        self.wait_until_min(p, &mut inner);
    }

    /// Blocks `p` until it is the minimal unfinished process, waking the
    /// current minimum first. Exactly one process returns from this at a
    /// time, which is what serializes execution.
    fn wait_until_min(&self, p: usize, inner: &mut parking_lot::MutexGuard<'_, Inner>) {
        loop {
            let min = inner.min_unfinished().expect("caller is unfinished");
            if min == p {
                return;
            }
            self.wakeups[min].notify_one();
            self.wakeups[p].wait(inner);
        }
    }
}

/// [`Timing`] facade over a [`SimScheduler`].
///
/// Cloning shares the scheduler.
#[derive(Clone, Debug)]
pub struct SimTiming {
    scheduler: Arc<SimScheduler>,
}

impl SimTiming {
    /// The underlying scheduler.
    pub fn scheduler(&self) -> &Arc<SimScheduler> {
        &self.scheduler
    }
}

impl Timing for SimTiming {
    fn charge(&self, proc: ProcId, resource: Resource) {
        let cost = self.scheduler.model.cost(proc, resource, &self.scheduler.topology);
        self.scheduler.charge_internal(proc, Some(resource), cost);
    }

    fn charge_work(&self, proc: ProcId, ns: u64) {
        if ns == 0 {
            return;
        }
        self.scheduler.charge_internal(proc, None, ns);
    }

    fn now(&self, proc: ProcId) -> u64 {
        self.scheduler.clock(proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpool::SegIdx;
    use std::thread;

    fn uniform_sched(procs: usize, ns: u64) -> Arc<SimScheduler> {
        SimScheduler::new(procs, LatencyModel::uniform(ns), Topology::identity(procs))
    }

    #[test]
    fn single_process_accumulates_cost() {
        let sched = uniform_sched(1, 100);
        let timing = sched.timing();
        let p = ProcId::new(0);
        sched.start(p);
        for _ in 0..5 {
            timing.charge(p, Resource::Segment(SegIdx::new(0)));
        }
        timing.charge_work(p, 42);
        sched.finish(p);
        assert_eq!(sched.clock(p), 542);
        assert_eq!(sched.makespan(), 542);
    }

    #[test]
    fn independent_resources_run_in_parallel() {
        // Two processes hammer two different segments: virtual time overlaps
        // perfectly, so the makespan equals one process's own cost.
        let sched = uniform_sched(2, 50);
        thread::scope(|s| {
            for p in 0..2 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let timing = sched.timing();
                    let me = ProcId::new(p);
                    sched.start(me);
                    for _ in 0..100 {
                        timing.charge(me, Resource::Segment(SegIdx::new(p)));
                    }
                    sched.finish(me);
                });
            }
        });
        assert_eq!(sched.makespan(), 100 * 50, "no shared resource, no queueing");
    }

    #[test]
    fn shared_resource_serializes() {
        // Two processes hammer the SAME resource: accesses queue, so the
        // makespan is the sum of all costs.
        let sched = uniform_sched(2, 50);
        thread::scope(|s| {
            for p in 0..2 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let timing = sched.timing();
                    let me = ProcId::new(p);
                    sched.start(me);
                    for _ in 0..100 {
                        timing.charge(me, Resource::Shared(0));
                    }
                    sched.finish(me);
                });
            }
        });
        assert_eq!(sched.makespan(), 2 * 100 * 50, "hot spot fully serialized");
    }

    #[test]
    fn execution_is_deterministic() {
        // Record the global order of (proc, i) sections across two runs.
        let run = || {
            let sched = uniform_sched(3, 10);
            let order = Arc::new(Mutex::new(Vec::new()));
            thread::scope(|s| {
                for p in 0..3 {
                    let sched = Arc::clone(&sched);
                    let order = Arc::clone(&order);
                    s.spawn(move || {
                        let timing = sched.timing();
                        let me = ProcId::new(p);
                        sched.start(me);
                        for i in 0..50 {
                            // Shared state touched while holding the run
                            // token: ordering must be reproducible.
                            order.lock().push((p, i));
                            timing.charge_work(me, (p as u64 + 1) * 7);
                        }
                        sched.finish(me);
                    });
                }
            });
            Arc::try_unwrap(order).unwrap().into_inner()
        };
        assert_eq!(run(), run(), "same schedule on every run");
    }

    #[test]
    fn makespan_sees_uneven_finishers() {
        let sched = uniform_sched(2, 1);
        thread::scope(|s| {
            for p in 0..2 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let timing = sched.timing();
                    let me = ProcId::new(p);
                    sched.start(me);
                    let work = if p == 0 { 10 } else { 1000 };
                    timing.charge_work(me, work);
                    sched.finish(me);
                });
            }
        });
        assert_eq!(sched.makespan(), 1000);
    }

    #[test]
    fn zero_work_charge_is_free() {
        let sched = uniform_sched(1, 10);
        let timing = sched.timing();
        sched.start(ProcId::new(0));
        timing.charge_work(ProcId::new(0), 0);
        sched.finish(ProcId::new(0));
        assert_eq!(sched.makespan(), 0);
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        let sched = uniform_sched(2, 1);
        sched.start(ProcId::new(0));
        sched.start(ProcId::new(0));
    }

    #[test]
    fn numa_costs_flow_through() {
        let sched = SimScheduler::new(2, LatencyModel::butterfly(), Topology::identity(2));
        let timing = sched.timing();
        let p = ProcId::new(0);
        thread::scope(|s| {
            // Park proc 1 at a huge clock so proc 0 can run alone.
            let sched2 = Arc::clone(&sched);
            s.spawn(move || {
                let t = sched2.timing();
                let me = ProcId::new(1);
                sched2.start(me);
                t.charge_work(me, 10_000_000);
                sched2.finish(me);
            });
            let sched0 = Arc::clone(&sched);
            s.spawn(move || {
                sched0.start(p);
                timing.charge(p, Resource::Segment(SegIdx::new(0))); // local: 10 µs
                timing.charge(p, Resource::Segment(SegIdx::new(1))); // remote: 40 µs
                assert_eq!(sched0.clock(p), 50_000);
                sched0.finish(p);
            });
        });
    }
}
