//! Precise busy-wait delays.
//!
//! The paper injected artificial delays into remote operations while the
//! process *kept its processor* (a delay loop, not a sleep): the point is to
//! model a slow interconnect, during which the processor is stalled. A
//! `thread::sleep` would yield the CPU and deschedule the thread for far
//! longer than requested at microsecond scales; a spin loop gives
//! microsecond-accurate delays.

use std::hint;
use std::time::{Duration, Instant};

/// Busy-waits for at least `delay`.
///
/// Returns immediately for a zero delay. Accuracy is bounded by the OS
/// scheduler (the thread can still be preempted mid-spin), which mirrors
/// the paper's situation faithfully: their delay loops ran on timeshared
/// Butterfly nodes too.
pub fn spin_for(delay: Duration) {
    if delay.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < delay {
        hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_returns_fast() {
        let start = Instant::now();
        spin_for(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn spin_waits_at_least_the_delay() {
        let delay = Duration::from_micros(200);
        let start = Instant::now();
        spin_for(delay);
        assert!(start.elapsed() >= delay);
    }
}
