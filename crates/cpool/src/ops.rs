//! The unified pool-operations vocabulary: [`PoolOps`].
//!
//! Kotz & Ellis (1989) evaluate pools as a *shared operation vocabulary*
//! — add / remove / steal-half — over interchangeable search algorithms.
//! This module captures that vocabulary as one trait implemented by every
//! pool frontend's handle ([`Handle`](crate::Handle) and
//! [`KeyedHandle`](crate::KeyedHandle)), so schedulers, baselines, and the
//! experiment harness all program against the same surface:
//!
//! * **Single operations** — [`add`](PoolOps::add) and
//!   [`try_remove`](PoolOps::try_remove), exactly the paper's vocabulary.
//! * **Blocking remove** — [`remove`](PoolOps::remove) waits under a
//!   [`WaitStrategy`] until an element arrives, the pool
//!   [closes](PoolOps::close), or waiting is provably futile (the §3.2
//!   terminal abort). [`WaitStrategy::Block`] waits *event-driven*: the
//!   consumer parks on the pool's [`notify`](crate::notify) subsystem and
//!   is woken by the add that satisfies it. [`remove_timeout`](PoolOps::remove_timeout)
//!   bounds the wait by a deadline.
//! * **Async remove** — [`remove_async`](PoolOps::remove_async) and
//!   [`remove_timeout_async`](PoolOps::remove_timeout_async) return
//!   std-only futures that wait on the same notifier *without a thread*:
//!   a pending future registers its task's waker instead of parking. See
//!   [`future`](crate::future) for the protocol and bundled executor.
//! * **Lifecycle** — [`close`](PoolOps::close) flips the pool-wide shutdown
//!   state: blocked and future removers drain the remaining elements and
//!   then observe [`RemoveError::Closed`], replacing attempt-budget
//!   starvation as the way to terminate consumers.
//! * **Batch operations** — [`add_batch`](PoolOps::add_batch),
//!   [`try_remove_batch`](PoolOps::try_remove_batch), and
//!   [`drain`](PoolOps::drain) take the segment lock **once per batch**
//!   instead of once per element, and charge the cost model accordingly
//!   (one probe per batch plus the per-element transfer). Batched removes
//!   return a [`SmallDrain`] over the frontend's
//!   [`TransferBatch`] currency ([`PoolOps::Batch`]) — elements drained
//!   from a block pool stay in their blocks until the consumer pops them,
//!   and the spent containers recycle into the pool's free lists
//!   (see [`transfer`](crate::transfer)).
//!
//! # Example
//!
//! ```
//! use cpool::prelude::*;
//! use std::thread;
//!
//! let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(2).build();
//! thread::scope(|s| {
//!     let mut producer = pool.register();
//!     let mut consumer = pool.register();
//!     s.spawn(move || {
//!         producer.add_batch(0..100);
//!         producer.close(); // everything produced: begin shutdown
//!     });
//!     s.spawn(move || {
//!         let mut got = 0;
//!         // Parks between fruitless search laps; woken by adds. The pool
//!         // delivers all 100 elements before reporting Closed.
//!         while consumer.remove(WaitStrategy::Block).is_ok() {
//!             got += 1;
//!         }
//!         assert_eq!(got, 100);
//!     });
//! });
//! assert_eq!(pool.total_len(), 0);
//! ```

use std::fmt;
use std::iter::FusedIterator;
use std::time::{Duration, Instant};

use crate::error::RemoveError;
use crate::transfer::TransferBatch;

/// How a blocking [`remove`](PoolOps::remove) waits after each **fruitless
/// search lap** (one full round over the victim segments with nothing
/// found).
///
/// A blocking remove searches like any other remove; what the strategy
/// decides is what happens when a whole lap finds nothing and the §3.2
/// abort condition does *not* hold (some registered process is not
/// searching, so an add may still be coming):
///
/// * [`Spin`](WaitStrategy::Spin) — probe the next lap immediately (a CPU
///   [`spin_loop`](std::hint::spin_loop) hint only). Deterministic under
///   the virtual-time engine, so simulation runs reproduce bit-for-bit.
/// * [`Yield`](WaitStrategy::Yield) — surrender the time slice between
///   laps.
/// * [`Park`](WaitStrategy::Park) — sleep for an exponentially growing,
///   capped interval between laps. Polling backoff: cheap to run, but a
///   new element is only discovered once the current sleep expires.
/// * [`Block`](WaitStrategy::Block) — park on the pool's
///   [`notify`](crate::notify) subsystem and wake **on the add edge**: the
///   producer that makes an element available unparks the consumer.
///   Lowest handoff latency and zero busy work, at the cost of one
///   park/unpark round trip. Not for virtual-time pools (a parked thread
///   never yields the simulation token); use `Spin` there.
///
/// Every strategy carries the same default lap budget
/// ([`DEFAULT_ATTEMPTS`](Self::DEFAULT_ATTEMPTS)); use
/// [`remove_with_attempts`](PoolOps::remove_with_attempts) to choose a
/// different one.
///
/// ```
/// use cpool::WaitStrategy;
///
/// assert_eq!(WaitStrategy::default(), WaitStrategy::Yield);
/// assert_eq!(WaitStrategy::Spin.default_attempts(), WaitStrategy::DEFAULT_ATTEMPTS);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[non_exhaustive]
pub enum WaitStrategy {
    /// Start the next search lap immediately (spin-loop hint only).
    Spin,
    /// Yield the thread between search laps.
    #[default]
    Yield,
    /// Sleep between search laps with capped exponential backoff, starting
    /// at one microsecond and doubling up to [`PARK_CAP`](Self::PARK_CAP).
    Park,
    /// Park on the pool's notifier; woken by the add edge, by
    /// [`close`](PoolOps::close), and by the gate's all-searching
    /// transition. See [`notify`](crate::notify).
    Block,
}

impl WaitStrategy {
    /// Default number of fruitless search laps a blocking remove completes
    /// before giving up with [`RemoveError::Aborted`]. Each lap examines
    /// every victim segment once, so the budget guards against pathological
    /// livelock, not ordinary contention.
    pub const DEFAULT_ATTEMPTS: usize = 1024;

    /// Longest single pause [`Park`](Self::Park) sleeps between laps.
    pub const PARK_CAP: Duration = Duration::from_micros(128);

    /// The lap budget [`PoolOps::remove`] uses for this strategy.
    pub fn default_attempts(self) -> usize {
        Self::DEFAULT_ATTEMPTS
    }

    /// Pauses the calling thread before lap number `attempt` (0-based).
    ///
    /// Exposed so custom retry loops outside the trait can share the exact
    /// backoff behavior of the polling strategies. `Block` has no
    /// standalone pause — parking correctly requires the pool's notifier,
    /// which only the in-crate blocking remove can reach — so here it
    /// degrades to a yield.
    pub fn pause(self, attempt: usize) {
        match self {
            WaitStrategy::Spin => std::hint::spin_loop(),
            WaitStrategy::Yield | WaitStrategy::Block => std::thread::yield_now(),
            WaitStrategy::Park => {
                let micros = 1u64 << attempt.min(7);
                std::thread::sleep(Duration::from_micros(micros).min(Self::PARK_CAP));
            }
        }
    }
}

impl fmt::Display for WaitStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WaitStrategy::Spin => "spin",
            WaitStrategy::Yield => "yield",
            WaitStrategy::Park => "park",
            WaitStrategy::Block => "block",
        };
        f.write_str(name)
    }
}

/// An owning batch of elements drained from a pool by
/// [`try_remove_batch`](PoolOps::try_remove_batch) or
/// [`drain`](PoolOps::drain).
///
/// The drain iterates directly over the frontend's [`TransferBatch`]
/// currency ([`PoolOps::Batch`]) — elements drained from a
/// [`BlockSegment`](crate::BlockSegment) pool stay in their blocks until
/// this iterator pops them; no intermediate vector is built. Iterating
/// yields the elements in an unspecified order (the pool is an unordered
/// collection). Dropping the drain without consuming it drops the
/// elements — they have already left the pool — hence the `#[must_use]`.
///
/// ```
/// use cpool::prelude::*;
///
/// let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(1).build();
/// let mut h = pool.register();
/// h.add_batch([1, 2, 3]);
/// let batch = h.try_remove_batch(2);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.into_vec().len(), 2);
/// assert_eq!(pool.total_len(), 1);
/// ```
#[must_use = "the elements have already left the pool and are dropped if unused"]
pub struct SmallDrain<B: TransferBatch> {
    inner: B,
}

impl<B: TransferBatch> SmallDrain<B> {
    /// Wraps a drained batch (crate-internal: only pools mint drains).
    pub(crate) fn new(batch: B) -> Self {
        SmallDrain { inner: batch }
    }

    /// Number of elements not yet consumed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether every element has been consumed (or none was drained).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts the remaining elements into a plain vector.
    pub fn into_vec(self) -> Vec<B::Item> {
        self.inner.into_vec()
    }
}

impl<B: TransferBatch> fmt::Debug for SmallDrain<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmallDrain").field("remaining", &self.inner.len()).finish()
    }
}

impl<B: TransferBatch> Iterator for SmallDrain<B> {
    type Item = B::Item;

    fn next(&mut self) -> Option<B::Item> {
        self.inner.take_one()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.inner.len(), Some(self.inner.len()))
    }
}

impl<B: TransferBatch> ExactSizeIterator for SmallDrain<B> {}
impl<B: TransferBatch> FusedIterator for SmallDrain<B> {}

/// The common handle contract of every pool frontend.
///
/// Implemented by [`Handle`](crate::Handle) (`Item = S::Item`) and
/// [`KeyedHandle`](crate::KeyedHandle) (`Item = (K, V)`), so generic
/// consumers — work-list adapters, schedulers, the harness — can program
/// against one operation surface. See the [module docs](self) for the
/// design rationale.
///
/// Both handles also keep their inherent methods (which shadow the trait
/// methods of the same name for direct calls); the trait adds the blocking,
/// lifecycle, and batch vocabulary on top.
pub trait PoolOps {
    /// The element type this pool stores. For keyed pools this is the
    /// `(key, value)` pair.
    type Item;

    /// The [`TransferBatch`] currency batched removes return: the segment
    /// family's batch type for [`Handle`](crate::Handle) (so a block pool's
    /// drains stay block-organized end to end), a plain vector of pairs for
    /// [`KeyedHandle`](crate::KeyedHandle).
    type Batch: TransferBatch<Item = Self::Item>;

    /// The future [`remove_async`](Self::remove_async) returns:
    /// [`RemoveFuture`](crate::RemoveFuture) for [`Handle`](crate::Handle),
    /// [`KeyedRemoveFuture`](crate::KeyedRemoveFuture) for
    /// [`KeyedHandle`](crate::KeyedHandle). Always `Unpin` (pool futures
    /// are plain owned state), so generic drivers can poll without pin
    /// projection — e.g. through [`future::exec::Fleet`](crate::future::exec::Fleet).
    type RemoveFuture: std::future::Future<Output = Result<Self::Item, RemoveError>> + Unpin;

    /// Adds one element (to the local segment, or wherever the frontend's
    /// placement rules send it), waking consumers parked in
    /// [`WaitStrategy::Block`] removes.
    fn add(&mut self, item: Self::Item);

    /// Removes an arbitrary element, searching (and stealing from) remote
    /// segments when the local segment is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RemoveError::Aborted`] when the livelock breaker fired:
    /// every registered process was searching simultaneously. Returns
    /// [`RemoveError::Closed`] instead when the pool is
    /// [closed](Self::close) and drained.
    fn try_remove(&mut self) -> Result<Self::Item, RemoveError>;

    /// Whether a snapshot of the pool shows no element reachable by this
    /// handle's removes.
    ///
    /// Used by the blocking [`remove`](Self::remove) to decide whether an
    /// abort is terminal: no process can add while every process is
    /// searching, so *abort + drained* is a stable "empty and nobody
    /// producing" signal (see [`RemoveError::Aborted`]).
    fn is_drained(&self) -> bool;

    /// Closes the pool: a sticky, idempotent, pool-wide lifecycle
    /// transition.
    ///
    /// Removers blocked in [`remove`](Self::remove) are woken; they and all
    /// future removers first drain whatever elements remain and then
    /// observe [`RemoveError::Closed`]. Adds are not rejected (the
    /// operation stays infallible and conservation properties hold), but a
    /// well-behaved application stops adding once it closes.
    ///
    /// This replaces the attempt-budget hack — letting consumers burn
    /// search attempts until the all-searching abort — as the way to shut
    /// a pool's consumers down.
    fn close(&self);

    /// Whether [`close`](Self::close) has been called on this pool.
    fn is_closed(&self) -> bool;

    /// Removes an element, waiting under `wait` with the strategy's
    /// [default lap budget](WaitStrategy::default_attempts).
    ///
    /// This replaces the hand-rolled `Err(Aborted) => retry` spin loop
    /// every consumer of `try_remove` used to carry — and with
    /// [`WaitStrategy::Block`], replaces polling entirely: the consumer
    /// parks and the add edge wakes it.
    ///
    /// # Errors
    ///
    /// * [`RemoveError::Closed`] — the pool was closed and every remaining
    ///   element has been drained.
    /// * [`RemoveError::Aborted`] — the terminal starvation signal (every
    ///   registered process searching with the pool drained), or the lap
    ///   budget ran out.
    fn remove(&mut self, wait: WaitStrategy) -> Result<Self::Item, RemoveError> {
        self.remove_bounded(wait, wait.default_attempts(), None)
    }

    /// [`remove`](Self::remove) with an explicit lap budget.
    ///
    /// Each attempt is one full fruitless search lap (every victim segment
    /// examined once). Pass `usize::MAX` to wait until the pool is drained
    /// or closed — termination is still guaranteed by the terminal-abort
    /// and close paths as long as producers eventually stop or someone
    /// closes the pool.
    ///
    /// # Errors
    ///
    /// As [`remove`](Self::remove).
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    fn remove_with_attempts(
        &mut self,
        wait: WaitStrategy,
        attempts: usize,
    ) -> Result<Self::Item, RemoveError> {
        self.remove_bounded(wait, attempts, None)
    }

    /// Removes an element, parking ([`WaitStrategy::Block`]) for at most
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// [`RemoveError::Timeout`] when the deadline passes first; otherwise
    /// as [`remove`](Self::remove).
    fn remove_timeout(&mut self, timeout: Duration) -> Result<Self::Item, RemoveError> {
        self.remove_bounded(WaitStrategy::Block, usize::MAX, Some(Instant::now() + timeout))
    }

    /// Returns a future resolving to an element — the async counterpart of
    /// [`remove`](Self::remove) with [`WaitStrategy::Block`]: instead of
    /// parking a thread, a pending future registers its task's waker on
    /// the pool's notifier and is woken by the add edge. The future holds
    /// no borrow of the handle, so one handle can have many futures
    /// pending at once (see [`future`](crate::future) for the protocol
    /// and the bundled executor).
    ///
    /// The future resolves terminally with [`RemoveError::Closed`] once
    /// the pool is [closed](Self::close) and drained, and with
    /// [`RemoveError::Aborted`] on the §3.2 starvation signal.
    fn remove_async(&self) -> Self::RemoveFuture;

    /// [`remove_async`](Self::remove_async) with a deadline: past
    /// `timeout` the future resolves with [`RemoveError::Timeout`].
    fn remove_timeout_async(&self, timeout: Duration) -> Self::RemoveFuture;

    /// The blocking-remove primitive the convenience methods above lower
    /// to: wait under `wait` for at most `attempts` fruitless laps, bounded
    /// by `deadline`.
    ///
    /// # Errors
    ///
    /// As [`remove`](Self::remove), plus [`RemoveError::Timeout`] when
    /// `deadline` passes before an element arrives.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    fn remove_bounded(
        &mut self,
        wait: WaitStrategy,
        attempts: usize,
        deadline: Option<Instant>,
    ) -> Result<Self::Item, RemoveError>;

    /// Adds every element of `items`, taking the local segment lock once
    /// for the whole batch instead of once per element.
    ///
    /// The cost model is charged one segment probe for the batch plus the
    /// per-element transfer the frontend performs; statistics count one add
    /// per element. Parked consumers are woken once per batch.
    fn add_batch<I: IntoIterator<Item = Self::Item>>(&mut self, items: I);

    /// Removes up to `n` arbitrary elements.
    ///
    /// The local segment is drained under a single lock acquisition; only
    /// when it is empty does the frontend fall back to one steal search
    /// (whose two-phase transfer already moves a batch) and then top the
    /// result up locally. The returned drain holds between `0` and `n`
    /// elements — fewer than `n` (or none) when the pool ran dry or the
    /// search aborted.
    fn try_remove_batch(&mut self, n: usize) -> SmallDrain<Self::Batch>;

    /// Removes every element currently reachable, visiting each segment
    /// once (one lock acquisition per segment, no search).
    ///
    /// This is a snapshot drain: elements added concurrently while the
    /// sweep is in flight may or may not be included.
    fn drain(&mut self) -> SmallDrain<Self::Batch>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_strategy_display_and_default() {
        assert_eq!(WaitStrategy::Spin.to_string(), "spin");
        assert_eq!(WaitStrategy::Yield.to_string(), "yield");
        assert_eq!(WaitStrategy::Park.to_string(), "park");
        assert_eq!(WaitStrategy::Block.to_string(), "block");
        assert_eq!(WaitStrategy::default(), WaitStrategy::Yield);
    }

    #[test]
    fn pauses_do_not_block_indefinitely() {
        // Also at high attempt numbers the park backoff stays capped, and
        // the standalone Block pause degrades to a yield rather than
        // parking a thread nobody will unpark.
        for strategy in
            [WaitStrategy::Spin, WaitStrategy::Yield, WaitStrategy::Park, WaitStrategy::Block]
        {
            for attempt in [0, 1, 7, 63, usize::MAX] {
                strategy.pause(attempt);
            }
        }
    }

    #[test]
    fn small_drain_iterates_and_reports_len() {
        let mut drain = SmallDrain::new(vec![1, 2, 3]);
        assert_eq!(drain.len(), 3);
        assert!(!drain.is_empty());
        assert_eq!(drain.next(), Some(3), "vector batches yield back-first");
        assert_eq!(drain.len(), 2);
        assert_eq!(drain.size_hint(), (2, Some(2)));
        assert_eq!(drain.into_vec(), vec![1, 2]);
    }

    #[test]
    fn small_drain_iterates_block_batches_without_flattening() {
        use crate::segment::BlockBatch;
        let drain = SmallDrain::new(BlockBatch::from_vec((0..40u32).collect()));
        assert_eq!(drain.len(), 40);
        let mut got: Vec<u32> = drain.collect();
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn small_drain_debug_hides_elements() {
        struct Opaque;
        let drain = SmallDrain::new(vec![Opaque, Opaque]);
        assert_eq!(format!("{drain:?}"), "SmallDrain { remaining: 2 }");
    }
}
