//! The linear search algorithm (§2.2 of Kotz & Ellis 1989).
//!
//! "The linear algorithm starts looking at the segment where it last found
//! elements, and travels from one segment to the next segment, as if they
//! were arranged in a ring, until it finds a non-empty segment to split."

use crate::ids::SegIdx;

use super::{ProbeOutcome, SearchEnv, SearchOutcome, SearchPolicy};

/// Ring-traversal search: resume where elements were last found.
///
/// The first search of a process begins at its own segment
/// (`LinearSearch(MyLeaf)` in the paper); subsequent searches begin at the
/// segment where elements were last stolen (`LinearSearch(LastFound)`),
/// which the paper observes usually succeeds immediately for
/// producer/consumer workloads.
#[derive(Clone, Copy, Debug)]
pub struct LinearSearch {
    segments: usize,
}

impl LinearSearch {
    /// Creates a linear policy for a pool of `segments` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "pool must have at least one segment");
        LinearSearch { segments }
    }
}

/// Per-process state for [`LinearSearch`]: the ring position to resume from.
#[derive(Clone, Copy, Debug)]
pub struct LinearState {
    last_found: SegIdx,
}

impl LinearState {
    /// Segment the next search will probe first.
    pub fn last_found(&self) -> SegIdx {
        self.last_found
    }
}

impl SearchPolicy for LinearSearch {
    type State = LinearState;

    fn name(&self) -> &'static str {
        "linear"
    }

    fn init_state(&self, me: SegIdx, segments: usize, _seed: u64) -> LinearState {
        debug_assert_eq!(segments, self.segments);
        LinearState { last_found: me }
    }

    fn search(&self, state: &mut LinearState, env: &mut dyn SearchEnv) -> SearchOutcome {
        let n = env.segments();
        debug_assert_eq!(n, self.segments);
        let mut seg = state.last_found;
        loop {
            if let ProbeOutcome::Stolen { .. } = env.try_steal(seg) {
                state.last_found = seg;
                return SearchOutcome::Found;
            }
            // Persist the ring cursor before a possible abort: the gate can
            // fire after a single probe (e.g. a lone registered process), and
            // a caller that retries after `Aborted` must resume at the *next*
            // segment or it would re-probe this one forever while elements
            // sit elsewhere in the ring. Successful searches still overwrite
            // this with the victim, so the paper's `LastFound` semantics are
            // untouched on every path it defines.
            seg = seg.next_in_ring(n);
            state.last_found = seg;
            if env.should_abort() {
                return SearchOutcome::Aborted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testenv::ScriptEnv;

    fn run(counts: Vec<usize>, me: usize) -> (SearchOutcome, ScriptEnv, LinearState) {
        let policy = LinearSearch::new(counts.len());
        let mut state = policy.init_state(SegIdx::new(me), counts.len(), 0);
        let mut env = ScriptEnv::new(counts, me);
        let outcome = policy.search(&mut state, &mut env);
        (outcome, env, state)
    }

    #[test]
    fn first_search_starts_at_own_segment() {
        let (outcome, env, _) = run(vec![3, 0, 0, 0], 0);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(env.probes, vec![0], "own segment probed first");
    }

    #[test]
    fn travels_the_ring_in_order() {
        let (outcome, env, state) = run(vec![0, 0, 0, 6], 1);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(env.probes, vec![1, 2, 3], "ring order from own segment");
        assert_eq!(state.last_found(), SegIdx::new(3));
    }

    #[test]
    fn wraps_around_the_ring() {
        let (outcome, env, _) = run(vec![5, 0, 0, 0], 2);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(env.probes, vec![2, 3, 0]);
    }

    #[test]
    fn resumes_from_last_found() {
        let policy = LinearSearch::new(4);
        let mut state = policy.init_state(SegIdx::new(0), 4, 0);
        let mut env = ScriptEnv::new(vec![0, 0, 4, 0], 0);
        assert_eq!(policy.search(&mut state, &mut env), SearchOutcome::Found);
        assert_eq!(state.last_found(), SegIdx::new(2));

        // Victim still has leftovers: the next search must start there and
        // succeed immediately ("it will usually find elements very quickly").
        let mut env2 = ScriptEnv::new(env.counts.clone(), 0);
        assert_eq!(policy.search(&mut state, &mut env2), SearchOutcome::Found);
        assert_eq!(env2.probes, vec![2]);
    }

    #[test]
    fn aborts_when_gate_fires() {
        let policy = LinearSearch::new(3);
        let mut state = policy.init_state(SegIdx::new(0), 3, 0);
        let mut env = ScriptEnv::new(vec![0, 0, 0], 0);
        env.abort_after = Some(7);
        assert_eq!(policy.search(&mut state, &mut env), SearchOutcome::Aborted);
        assert_eq!(env.probes.len(), 7, "kept cycling until the gate fired");
    }

    #[test]
    fn single_segment_pool() {
        let (outcome, env, _) = run(vec![2], 0);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(env.probes, vec![0]);
    }

    #[test]
    fn examines_each_segment_once_per_lap() {
        let policy = LinearSearch::new(8);
        let mut state = policy.init_state(SegIdx::new(3), 8, 0);
        let mut env = ScriptEnv::new(vec![0; 8], 3);
        env.abort_after = Some(8);
        let _ = policy.search(&mut state, &mut env);
        let mut sorted = env.probes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "one full lap probes each segment once");
    }
}
