//! Search algorithms: how a process finds a segment to steal from.
//!
//! "Given a workload that generates a sufficiently high frequency of steals,
//! the search algorithm becomes the dominant factor in the performance of
//! the pool as a whole." — Kotz & Ellis, §2.
//!
//! Three algorithms are provided, exactly those evaluated in the paper:
//!
//! * [`TreeSearch`] — Manber's round-counter tree (§2.1),
//! * [`LinearSearch`] — ring traversal (§2.2),
//! * [`RandomSearch`] — random probing (§2.3).
//!
//! A policy is straight-line code over a [`SearchEnv`], the callback
//! interface the pool provides during a search. All cost accounting
//! (remote probes, tree-node visits) happens inside the environment, so the
//! identical policy code runs on raw threads, with injected NUMA delays, or
//! under a deterministic virtual-time scheduler.

mod linear;
mod random;
pub mod topology;
mod tree;

use std::any::Any;
use std::fmt;
use std::str::FromStr;

pub use linear::{LinearSearch, LinearState};
pub use random::{RandomSearch, RandomState};
pub use tree::{NodeStoreKind, TreeSearch, TreeState};

use crate::ids::SegIdx;

/// Result of probing a victim segment during a search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeOutcome {
    /// The probe stole `stolen` elements (⌈n/2⌉ of the victim's `n`); one of
    /// them satisfies the pending remove and the rest were moved into the
    /// searcher's own segment.
    Stolen {
        /// Total number of elements taken from the victim.
        stolen: usize,
    },
    /// The victim segment was empty.
    Empty,
}

/// Result of a whole search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchOutcome {
    /// Elements were found and stolen; the pending remove is satisfied.
    Found,
    /// The livelock breaker fired: every registered process was searching.
    Aborted,
}

/// The environment a search policy operates in.
///
/// Implemented by the pool; handed to [`SearchPolicy::search`]. Every method
/// that touches shared memory charges the acting process through the pool's
/// [`Timing`](crate::timing::Timing) before performing the access.
pub trait SearchEnv {
    /// Number of (real) segments in the pool.
    fn segments(&self) -> usize;

    /// The searcher's own segment.
    fn my_segment(&self) -> SegIdx;

    /// Probe `victim` and, if it is non-empty, steal ⌈n/2⌉ of its elements
    /// (moving all but one into the searcher's own segment).
    fn try_steal(&mut self, victim: SegIdx) -> ProbeOutcome;

    /// Charge one access to superimposed-tree node `node` (heap index).
    fn charge_tree_node(&mut self, node: usize);

    /// Whether the search must abort (all registered processes searching).
    fn should_abort(&mut self) -> bool;
}

/// A search algorithm.
///
/// Policies are shared across all processes of a pool (`&self`); any shared
/// algorithm state (e.g. the tree's round counters) lives inside the policy,
/// and any per-process state (round number, last leaf visited, RNG) lives in
/// the associated [`State`](SearchPolicy::State), owned by the process's
/// [`Handle`](crate::Handle).
pub trait SearchPolicy: Send + Sync + 'static {
    /// Per-process search state.
    type State: Send + 'static;

    /// Human-readable algorithm name (used in reports).
    fn name(&self) -> &'static str;

    /// Creates the per-process state for process with home segment `me`.
    ///
    /// `seed` derives any per-process randomness deterministically.
    fn init_state(&self, me: SegIdx, segments: usize, seed: u64) -> Self::State;

    /// Runs one search to completion: probes segments through `env` until
    /// elements are stolen or the abort condition fires.
    fn search(&self, state: &mut Self::State, env: &mut dyn SearchEnv) -> SearchOutcome;
}

/// Selector for the three search algorithms, for configuration surfaces
/// (experiment specs, CLI flags) that choose a policy at runtime.
///
/// ```
/// use cpool::PolicyKind;
/// let k: PolicyKind = "tree".parse().unwrap();
/// assert_eq!(k, PolicyKind::Tree);
/// assert_eq!(k.to_string(), "tree");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PolicyKind {
    /// Ring traversal from the last segment where elements were found.
    Linear,
    /// Uniformly random probing.
    Random,
    /// Manber's round-counter tree search.
    Tree,
}

impl PolicyKind {
    /// All three kinds, in the paper's presentation order.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Tree, PolicyKind::Linear, PolicyKind::Random];

    /// Builds a boxed, type-erased policy of this kind for a pool of
    /// `segments` segments.
    ///
    /// `store` selects the tree's round-counter synchronization and is
    /// ignored by the linear and random policies.
    pub fn build(self, segments: usize, store: NodeStoreKind) -> DynPolicy {
        match self {
            PolicyKind::Linear => DynPolicy::new(LinearSearch::new(segments)),
            PolicyKind::Random => DynPolicy::new(RandomSearch::new(segments)),
            PolicyKind::Tree => DynPolicy::new(TreeSearch::with_store(segments, store)),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PolicyKind::Linear => "linear",
            PolicyKind::Random => "random",
            PolicyKind::Tree => "tree",
        };
        f.write_str(name)
    }
}

/// Error parsing a [`PolicyKind`] from a string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown search policy {:?} (expected linear, random, or tree)", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "linear" => Ok(PolicyKind::Linear),
            "random" => Ok(PolicyKind::Random),
            "tree" => Ok(PolicyKind::Tree),
            other => Err(ParsePolicyError(other.to_string())),
        }
    }
}

/// Object-safe facade over any [`SearchPolicy`].
///
/// Collapses the policy type parameter of [`Pool`](crate::Pool) so that
/// experiment harnesses can select an algorithm at runtime:
/// `Pool<LockedCounter, DynPolicy>` covers all three algorithms.
pub struct DynPolicy {
    inner: Box<dyn ErasedPolicy>,
}

impl fmt::Debug for DynPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynPolicy").field("name", &self.inner.name()).finish()
    }
}

impl DynPolicy {
    /// Wraps a concrete policy.
    pub fn new<P: SearchPolicy>(policy: P) -> Self {
        DynPolicy { inner: Box::new(policy) }
    }
}

trait ErasedPolicy: Send + Sync {
    fn name(&self) -> &'static str;
    fn init_state_erased(&self, me: SegIdx, segments: usize, seed: u64) -> Box<dyn Any + Send>;
    fn search_erased(&self, state: &mut (dyn Any + Send), env: &mut dyn SearchEnv)
        -> SearchOutcome;
}

impl<P: SearchPolicy> ErasedPolicy for P {
    fn name(&self) -> &'static str {
        SearchPolicy::name(self)
    }

    fn init_state_erased(&self, me: SegIdx, segments: usize, seed: u64) -> Box<dyn Any + Send> {
        Box::new(self.init_state(me, segments, seed))
    }

    fn search_erased(
        &self,
        state: &mut (dyn Any + Send),
        env: &mut dyn SearchEnv,
    ) -> SearchOutcome {
        let state =
            state.downcast_mut::<P::State>().expect("DynPolicy state used with a different policy");
        self.search(state, env)
    }
}

impl SearchPolicy for DynPolicy {
    type State = Box<dyn Any + Send>;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn init_state(&self, me: SegIdx, segments: usize, seed: u64) -> Self::State {
        self.inner.init_state_erased(me, segments, seed)
    }

    fn search(&self, state: &mut Self::State, env: &mut dyn SearchEnv) -> SearchOutcome {
        self.inner.search_erased(state.as_mut(), env)
    }
}

#[cfg(test)]
pub(crate) mod testenv {
    //! A scripted [`SearchEnv`] for unit-testing policies in isolation.

    use super::*;

    /// Environment over a vector of segment occupancy counts.
    pub struct ScriptEnv {
        pub counts: Vec<usize>,
        pub me: SegIdx,
        pub probes: Vec<usize>,
        pub node_charges: Vec<usize>,
        /// Abort after this many probes (simulates the gate firing).
        pub abort_after: Option<usize>,
    }

    impl ScriptEnv {
        pub fn new(counts: Vec<usize>, me: usize) -> Self {
            ScriptEnv {
                counts,
                me: SegIdx::new(me),
                probes: Vec::new(),
                node_charges: Vec::new(),
                abort_after: None,
            }
        }
    }

    impl SearchEnv for ScriptEnv {
        fn segments(&self) -> usize {
            self.counts.len()
        }

        fn my_segment(&self) -> SegIdx {
            self.me
        }

        fn try_steal(&mut self, victim: SegIdx) -> ProbeOutcome {
            self.probes.push(victim.index());
            let n = self.counts[victim.index()];
            let take = crate::segment::steal_count(n);
            if take == 0 {
                ProbeOutcome::Empty
            } else {
                self.counts[victim.index()] -= take;
                // One element satisfies the remove; the rest land locally.
                self.counts[self.me.index()] += take - 1;
                ProbeOutcome::Stolen { stolen: take }
            }
        }

        fn charge_tree_node(&mut self, node: usize) {
            self.node_charges.push(node);
        }

        fn should_abort(&mut self) -> bool {
            self.abort_after.is_some_and(|limit| self.probes.len() >= limit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_parse_roundtrip() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("fancy".parse::<PolicyKind>().is_err());
        assert_eq!("TREE".parse::<PolicyKind>().unwrap(), PolicyKind::Tree);
    }

    #[test]
    fn dyn_policy_reports_inner_name() {
        for kind in PolicyKind::ALL {
            let dp = kind.build(8, NodeStoreKind::Locked);
            assert_eq!(SearchPolicy::name(&dp), kind.to_string());
        }
    }

    #[test]
    fn dyn_policy_searches_like_concrete() {
        use testenv::ScriptEnv;
        // Segment 3 holds elements; linear search from 0 must find it.
        let concrete = LinearSearch::new(5);
        let mut cs = concrete.init_state(SegIdx::new(0), 5, 7);
        let mut env1 = ScriptEnv::new(vec![0, 0, 0, 8, 0], 0);
        assert_eq!(concrete.search(&mut cs, &mut env1), SearchOutcome::Found);

        let erased = DynPolicy::new(LinearSearch::new(5));
        let mut es = erased.init_state(SegIdx::new(0), 5, 7);
        let mut env2 = ScriptEnv::new(vec![0, 0, 0, 8, 0], 0);
        assert_eq!(erased.search(&mut es, &mut env2), SearchOutcome::Found);

        assert_eq!(env1.probes, env2.probes, "erasure does not change behaviour");
    }

    #[test]
    #[should_panic(expected = "different policy")]
    fn dyn_policy_state_mismatch_panics() {
        use testenv::ScriptEnv;
        let a = DynPolicy::new(LinearSearch::new(4));
        let b = DynPolicy::new(RandomSearch::new(4));
        let mut state = a.init_state(SegIdx::new(0), 4, 0);
        let mut env = ScriptEnv::new(vec![0; 4], 0);
        let _ = b.search(&mut state, &mut env);
    }
}
