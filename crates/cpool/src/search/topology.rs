//! Shape arithmetic for the superimposed binary search tree.
//!
//! Manber's tree search superimposes a full binary tree on the segments,
//! "with each segment occupying a leaf of the tree. For convenience, we
//! assume that the tree is full so that the number of leaves is a power of
//! two." This module holds the pure index arithmetic — heap layout,
//! parents, siblings, subtree heights, and the *matching descendant* of
//! Figure 1 — so it can be tested exhaustively in isolation.
//!
//! # Heap layout
//!
//! Nodes use 1-based heap indices: the root is `1`, node `x` has children
//! `2x` and `2x+1`, and the `L` leaves occupy `L..2L`. Segment `i` lives at
//! leaf `L + i`. When the segment count is not a power of two the remaining
//! leaves are *phantoms*: permanently empty segments that searches probe
//! (for free) and mark empty like any other.

use crate::ids::SegIdx;

/// Heap index of the tree root.
pub const ROOT: usize = 1;

/// Geometry of the superimposed tree for a pool with a given segment count.
///
/// ```
/// use cpool::search::topology::TreeShape;
/// use cpool::SegIdx;
///
/// let shape = TreeShape::new(16);
/// assert_eq!(shape.leaves(), 16);
/// let leaf = shape.leaf_of(SegIdx::new(5));
/// assert_eq!(shape.seg_of(leaf), Some(SegIdx::new(5)));
/// assert_eq!(shape.parent(leaf), leaf / 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TreeShape {
    segments: usize,
    leaves: usize,
}

impl TreeShape {
    /// Creates the tree shape for `segments` segments.
    ///
    /// The leaf count is `segments` rounded up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "pool must have at least one segment");
        TreeShape { segments, leaves: segments.next_power_of_two() }
    }

    /// Number of real segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Number of leaves (a power of two, ≥ `segments`).
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Total number of heap slots needed to index every node (`2·leaves`;
    /// slot 0 is unused).
    pub fn node_slots(&self) -> usize {
        2 * self.leaves
    }

    /// Number of internal nodes (`leaves - 1`, heap indices `1..leaves`).
    pub fn internal_nodes(&self) -> usize {
        self.leaves - 1
    }

    /// Heap index of the leaf holding segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn leaf_of(&self, seg: SegIdx) -> usize {
        assert!(seg.index() < self.segments, "segment {seg} out of range");
        self.leaves + seg.index()
    }

    /// The segment at leaf `leaf`, or `None` for a phantom leaf.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a leaf index.
    pub fn seg_of(&self, leaf: usize) -> Option<SegIdx> {
        assert!(self.is_leaf(leaf), "node {leaf} is not a leaf");
        let seg = leaf - self.leaves;
        (seg < self.segments).then(|| SegIdx::new(seg))
    }

    /// Whether heap index `node` denotes a leaf.
    pub fn is_leaf(&self, node: usize) -> bool {
        node >= self.leaves && node < 2 * self.leaves
    }

    /// Whether `node` is a valid heap index in this shape.
    pub fn contains(&self, node: usize) -> bool {
        node >= ROOT && node < 2 * self.leaves
    }

    /// Parent of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or out of range.
    pub fn parent(&self, node: usize) -> usize {
        assert!(node > ROOT && self.contains(node), "node {node} has no parent");
        node / 2
    }

    /// Sibling of `node` (the other child of its parent).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or out of range.
    pub fn sibling(&self, node: usize) -> usize {
        assert!(node > ROOT && self.contains(node), "node {node} has no sibling");
        node ^ 1
    }

    /// Height of the subtree rooted at `node`: 0 for leaves,
    /// `log2(leaves)` for the root.
    pub fn height(&self, node: usize) -> u32 {
        debug_assert!(self.contains(node));
        self.leaves.ilog2() - node.ilog2()
    }

    /// Leaves covered by the subtree rooted at `node`, as a heap-index range.
    pub fn leaves_under(&self, node: usize) -> std::ops::Range<usize> {
        let h = self.height(node);
        let first = node << h;
        first..first + (1 << h)
    }

    /// The **matching descendant** (Figure 1 of the paper): given the most
    /// recently visited leaf `last_leaf` (which lies in the subtree rooted
    /// at `child`), returns the leaf occupying the symmetric position in the
    /// *sibling* subtree of `child`.
    ///
    /// Because siblings differ exactly in their lowest heap bit, the
    /// matching descendant is `last_leaf` with the bit at the child's height
    /// flipped.
    ///
    /// ```
    /// use cpool::search::topology::TreeShape;
    /// let shape = TreeShape::new(16);
    /// // Leaf of segment 5 sits in the height-2 subtree over segments 4..8;
    /// // its match across that subtree's sibling (segments 0..4) is segment 1.
    /// let leaf5 = shape.leaf_of(5.into());
    /// let child = leaf5 / 4; // height-2 ancestor
    /// assert_eq!(shape.matching_descendant(leaf5, child), shape.leaf_of(1.into()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `last_leaf` does not lie under `child`.
    pub fn matching_descendant(&self, last_leaf: usize, child: usize) -> usize {
        debug_assert!(self.is_leaf(last_leaf));
        debug_assert!(
            self.leaves_under(child).contains(&last_leaf),
            "last leaf {last_leaf} is not under child {child}"
        );
        last_leaf ^ (1usize << self.height(child))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_of_paper_pool() {
        let shape = TreeShape::new(16);
        assert_eq!(shape.leaves(), 16);
        assert_eq!(shape.internal_nodes(), 15);
        assert_eq!(shape.node_slots(), 32);
        assert_eq!(shape.height(ROOT), 4);
        assert_eq!(shape.height(16), 0);
    }

    #[test]
    fn non_power_of_two_rounds_up() {
        let shape = TreeShape::new(12);
        assert_eq!(shape.leaves(), 16);
        assert_eq!(shape.seg_of(shape.leaves() + 11), Some(SegIdx::new(11)));
        assert_eq!(shape.seg_of(shape.leaves() + 12), None, "phantom leaf");
    }

    #[test]
    fn single_segment_tree() {
        let shape = TreeShape::new(1);
        assert_eq!(shape.leaves(), 1);
        assert!(shape.is_leaf(ROOT), "with one leaf the root is the leaf");
        assert_eq!(shape.internal_nodes(), 0);
    }

    #[test]
    fn parent_sibling_consistency() {
        let shape = TreeShape::new(16);
        for node in 2..shape.node_slots() {
            let p = shape.parent(node);
            let s = shape.sibling(node);
            assert_eq!(shape.parent(s), p, "siblings share a parent");
            assert_ne!(s, node);
            assert_eq!(shape.sibling(s), node, "sibling is an involution");
            assert!(2 * p == node || 2 * p + 1 == node);
        }
    }

    #[test]
    fn leaves_under_root_is_everything() {
        let shape = TreeShape::new(8);
        assert_eq!(shape.leaves_under(ROOT), 8..16);
        assert_eq!(shape.leaves_under(9), 9..10, "a leaf covers itself");
    }

    #[test]
    fn matching_descendant_figure_1() {
        // 16-segment pool as in Figure 1. For every leaf and every proper
        // ancestor-child level, the match must (a) lie in the sibling
        // subtree, (b) occupy the same relative position, (c) be an
        // involution (matching back returns the original leaf).
        let shape = TreeShape::new(16);
        for seg in 0..16 {
            let leaf = shape.leaf_of(SegIdx::new(seg));
            let mut child = leaf;
            while child > ROOT {
                let m = shape.matching_descendant(leaf, child);
                let sib = shape.sibling(child);
                assert!(shape.leaves_under(sib).contains(&m), "match lies in the sibling subtree");
                let pos = leaf - shape.leaves_under(child).start;
                let mpos = m - shape.leaves_under(sib).start;
                assert_eq!(pos, mpos, "match occupies the symmetric position");
                assert_eq!(shape.matching_descendant(m, sib), leaf, "involution");
                child = shape.parent(child);
            }
        }
    }

    #[test]
    fn matching_descendant_concrete_values() {
        let shape = TreeShape::new(16);
        let leaf = |s: usize| shape.leaf_of(SegIdx::new(s));
        // Adjacent leaves match across their shared parent.
        assert_eq!(shape.matching_descendant(leaf(6), leaf(6)), leaf(7));
        // Segment 5 around its height-2 ancestor: 5 ^ 4 = 1.
        assert_eq!(shape.matching_descendant(leaf(5), leaf(5) >> 2), leaf(1));
        // Segment 5 around the root's child: 5 ^ 8 = 13.
        assert_eq!(shape.matching_descendant(leaf(5), leaf(5) >> 3), leaf(13));
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = TreeShape::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_of_out_of_range_panics() {
        let shape = TreeShape::new(4);
        let _ = shape.leaf_of(SegIdx::new(4));
    }

    #[test]
    fn height_levels() {
        let shape = TreeShape::new(16);
        assert_eq!(shape.height(1), 4);
        assert_eq!(shape.height(2), 3);
        assert_eq!(shape.height(3), 3);
        assert_eq!(shape.height(4), 2);
        assert_eq!(shape.height(8), 1);
        assert_eq!(shape.height(31), 0);
    }
}
