//! Manber's tree search algorithm (§2.1 of Kotz & Ellis 1989).
//!
//! A full binary tree is superimposed on the segments, each segment at a
//! leaf. Embedded in the tree is "information that helps the processes
//! avoid subtrees that have recently been found to be devoid of elements":
//! every subtree carries a **round counter** recording the most recent
//! *round* (complete traversal) in which it was found entirely empty, and
//! every process carries its own round number (`MyRound`).
//!
//! After probing a leaf and finding it empty, a process walks upward. At
//! each internal node it compares its round with the counters of the child
//! it came from and that child's sibling, and then either
//!
//! 1. **descends** into the sibling subtree (sibling counter < `MyRound`):
//!    the sibling was not marked empty as recently — jump directly to the
//!    *matching descendant* leaf (Figure 1);
//! 2. **moves further up** (sibling counter = `MyRound`): the sibling was
//!    marked empty as recently as the current subtree — or, at the root,
//!    starts a new round back at its own leaf;
//! 3. **catches up** (a counter > `MyRound`): some other process is already
//!    in a later round — adopt the higher round and restart at its own leaf.
//!
//! "The round counters of the various subtrees must be accessed with locks
//! protecting them so the examination and modification of the counters is
//! done atomically" — [`NodeStoreKind::Locked`] implements exactly that
//! (one lock per internal node guarding its two children's counters).
//! [`NodeStoreKind::Atomic`] is a modern lock-free alternative using
//! monotonic `fetch_max` updates, provided as an ablation: its decision
//! races are benign (a stale read costs extra probes, never correctness).

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::ids::SegIdx;

use super::topology::{TreeShape, ROOT};
use super::{ProbeOutcome, SearchEnv, SearchOutcome, SearchPolicy};

/// Synchronization scheme for the tree's round counters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum NodeStoreKind {
    /// One mutex per internal node protecting its children's counters — the
    /// paper's scheme.
    #[default]
    Locked,
    /// Lock-free counters with monotonic `fetch_max` marking (ablation).
    Atomic,
}

impl FromStr for NodeStoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "locked" => Ok(NodeStoreKind::Locked),
            "atomic" => Ok(NodeStoreKind::Atomic),
            other => Err(format!("unknown node store {other:?} (expected locked or atomic)")),
        }
    }
}

/// Storage for the per-subtree round counters.
///
/// Counters exist for every node except the root (the root's counter is
/// never consulted: reaching the root with an equal sibling starts a new
/// round instead). In the locked variant the counter of node `x` lives in
/// slot `x & 1` of its parent's cell, so one lock acquisition covers the
/// examine-and-modify sequence on both children, as the paper requires.
#[derive(Debug)]
enum NodeStore {
    Locked(Box<[Mutex<[u64; 2]>]>),
    Atomic(Box<[AtomicU64]>),
}

impl NodeStore {
    fn new(kind: NodeStoreKind, shape: TreeShape) -> Self {
        match kind {
            NodeStoreKind::Locked => {
                // Indexed by internal-node heap index 1..leaves; slot 0 unused.
                let cells = (0..shape.leaves()).map(|_| Mutex::new([0, 0])).collect();
                NodeStore::Locked(cells)
            }
            NodeStoreKind::Atomic => {
                // Indexed by node heap index; slots 0 and 1 (root) unused.
                let cells = (0..shape.node_slots()).map(|_| AtomicU64::new(0)).collect();
                NodeStore::Atomic(cells)
            }
        }
    }

    fn kind(&self) -> NodeStoreKind {
        match self {
            NodeStore::Locked(_) => NodeStoreKind::Locked,
            NodeStore::Atomic(_) => NodeStoreKind::Atomic,
        }
    }

    /// Reads node `x`'s round counter (diagnostic / test hook).
    fn read(&self, x: usize) -> u64 {
        match self {
            NodeStore::Locked(cells) => cells[x / 2].lock()[x & 1],
            NodeStore::Atomic(cells) => cells[x].load(Ordering::Acquire),
        }
    }
}

/// Upward-walk decision at an internal node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Decision {
    /// Case 1: descend to the matching descendant in the sibling subtree.
    DescendSibling,
    /// Case 2: both subtrees marked this round; continue to the parent.
    Ascend,
    /// Case 2 at the root: the whole tree is empty this round; a new round
    /// begins at the process's own leaf.
    NewRound,
    /// Case 3: this process is behind; it adopted the higher round and
    /// restarts at its own leaf.
    Behind,
}

/// Manber's round-counter tree search.
///
/// The policy owns the shared tree (round counters); per-process state
/// ([`TreeState`]) holds `MyRound`, the process's own leaf, and the most
/// recently visited leaf.
#[derive(Debug)]
pub struct TreeSearch {
    shape: TreeShape,
    store: NodeStore,
}

impl TreeSearch {
    /// Creates a tree policy with the paper's locked round counters.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        Self::with_store(segments, NodeStoreKind::Locked)
    }

    /// Creates a tree policy with an explicit counter-store kind.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn with_store(segments: usize, kind: NodeStoreKind) -> Self {
        let shape = TreeShape::new(segments);
        TreeSearch { shape, store: NodeStore::new(kind, shape) }
    }

    /// The tree geometry in use.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// The counter-store kind in use.
    pub fn store_kind(&self) -> NodeStoreKind {
        self.store.kind()
    }

    /// Round counter currently recorded for `node` (diagnostic).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or out of range.
    pub fn round_counter(&self, node: usize) -> u64 {
        assert!(node > ROOT && self.shape.contains(node), "node {node} has no round counter");
        self.store.read(node)
    }

    /// One examine-and-modify visit to `parent`, having come up from
    /// `child`. Implements the three cases of the paper's pseudocode.
    fn visit(&self, parent: usize, child: usize, my_round: &mut u64) -> Decision {
        debug_assert_eq!(child / 2, parent);
        match &self.store {
            NodeStore::Locked(cells) => {
                let mut cell = cells[parent].lock();
                let slot = child & 1;
                let rc_child = cell[slot];
                let rc_sibling = cell[slot ^ 1];
                if rc_child > *my_round || rc_sibling > *my_round {
                    // Case 3: behind — adopt the higher round, do not mark.
                    *my_round = rc_child.max(rc_sibling);
                    return Decision::Behind;
                }
                // Mark the subtree we came from empty as of our round. Under
                // the lock we know rc_child <= my_round, so this never lowers
                // the counter.
                cell[slot] = *my_round;
                if rc_sibling == *my_round {
                    if parent == ROOT {
                        *my_round += 1;
                        Decision::NewRound
                    } else {
                        Decision::Ascend
                    }
                } else {
                    Decision::DescendSibling
                }
            }
            NodeStore::Atomic(cells) => {
                let sibling = child ^ 1;
                let rc_child = cells[child].load(Ordering::Acquire);
                let rc_sibling = cells[sibling].load(Ordering::Acquire);
                if rc_child > *my_round || rc_sibling > *my_round {
                    *my_round = rc_child.max(rc_sibling);
                    return Decision::Behind;
                }
                // fetch_max keeps counters monotone even if another process
                // raced past us between the loads and this mark.
                cells[child].fetch_max(*my_round, Ordering::AcqRel);
                if rc_sibling == *my_round {
                    if parent == ROOT {
                        *my_round += 1;
                        Decision::NewRound
                    } else {
                        Decision::Ascend
                    }
                } else {
                    Decision::DescendSibling
                }
            }
        }
    }
}

/// Per-process state for [`TreeSearch`].
#[derive(Clone, Copy, Debug)]
pub struct TreeState {
    /// The process's current round number (`MyRound`; initially 1).
    my_round: u64,
    /// Heap index of the leaf holding the process's own segment (`MyLeaf`).
    my_leaf: usize,
    /// Heap index of the most recently visited leaf (`LastLeaf`).
    last_leaf: usize,
}

impl TreeState {
    /// The process's current round number.
    pub fn my_round(&self) -> u64 {
        self.my_round
    }

    /// Heap index of the most recently visited leaf.
    pub fn last_leaf(&self) -> usize {
        self.last_leaf
    }
}

impl SearchPolicy for TreeSearch {
    type State = TreeState;

    fn name(&self) -> &'static str {
        "tree"
    }

    fn init_state(&self, me: SegIdx, segments: usize, _seed: u64) -> TreeState {
        debug_assert_eq!(segments, self.shape.segments());
        let my_leaf = self.shape.leaf_of(me);
        TreeState { my_round: 1, my_leaf, last_leaf: my_leaf }
    }

    fn search(&self, state: &mut TreeState, env: &mut dyn SearchEnv) -> SearchOutcome {
        let shape = self.shape;
        debug_assert_eq!(env.segments(), shape.segments());

        // Degenerate single-leaf tree: the root is the only (own) leaf;
        // there is nowhere to steal from, so poll until add or abort.
        if shape.leaves() == 1 {
            loop {
                if let ProbeOutcome::Stolen { .. } = env.try_steal(SegIdx::new(0)) {
                    return SearchOutcome::Found;
                }
                if env.should_abort() {
                    return SearchOutcome::Aborted;
                }
            }
        }

        // The paper's first search starts at MyLeaf; init_state seeds
        // last_leaf with my_leaf so both cases begin at last_leaf.
        let mut target = state.last_leaf;
        loop {
            // --- leaf visit ---------------------------------------------
            state.last_leaf = target;
            if let Some(seg) = shape.seg_of(target) {
                if let ProbeOutcome::Stolen { .. } = env.try_steal(seg) {
                    return SearchOutcome::Found;
                }
            }
            // (phantom leaves of a non-power-of-two pool are permanently
            // empty and probed for free)

            // --- upward walk ---------------------------------------------
            let mut child = target;
            target = loop {
                let parent = shape.parent(child);
                env.charge_tree_node(parent);
                match self.visit(parent, child, &mut state.my_round) {
                    Decision::Ascend => {
                        child = parent;
                    }
                    Decision::DescendSibling => {
                        break shape.matching_descendant(state.last_leaf, child);
                    }
                    Decision::NewRound | Decision::Behind => {
                        break state.my_leaf;
                    }
                }
            };

            // Persist forward progress before a possible abort: the gate can
            // fire after a single probe (e.g. a lone registered process), and
            // a caller that retries after `Aborted` must resume at the leaf
            // the walk chose — re-probing the same leaf forever would
            // livelock while elements sit elsewhere in the tree.
            state.last_leaf = target;
            if env.should_abort() {
                return SearchOutcome::Aborted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testenv::ScriptEnv;

    fn policy(n: usize) -> TreeSearch {
        TreeSearch::new(n)
    }

    fn run(
        policy: &TreeSearch,
        state: &mut TreeState,
        counts: Vec<usize>,
        me: usize,
        abort_after: Option<usize>,
    ) -> (SearchOutcome, ScriptEnv) {
        let mut env = ScriptEnv::new(counts, me);
        env.abort_after = abort_after;
        let outcome = policy.search(state, &mut env);
        (outcome, env)
    }

    #[test]
    fn finds_element_in_own_leaf_first() {
        let p = policy(4);
        let mut st = p.init_state(SegIdx::new(2), 4, 0);
        let (outcome, env) = run(&p, &mut st, vec![0, 0, 5, 0], 2, None);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(env.probes, vec![2], "first probe is the process's own leaf");
    }

    #[test]
    fn matching_descendant_skips_probed_subtrees() {
        // Segments 0..4, process 0, elements only at segment 3. The walk is:
        // probe 0 (empty), mark leaf0, descend to match -> leaf 1; probe 1
        // (empty), mark leaf1, ascend, mark subtree {0,1}, descend to
        // match(leaf1 around subtree) -> leaf 3. Segment 2 is never probed.
        let p = policy(4);
        let mut st = p.init_state(SegIdx::new(0), 4, 0);
        let (outcome, env) = run(&p, &mut st, vec![0, 0, 0, 9], 0, None);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(env.probes, vec![0, 1, 3], "jumped to the matching descendant");
    }

    #[test]
    fn empty_tree_round_marks_all_counters() {
        let p = policy(4);
        let mut st = p.init_state(SegIdx::new(0), 4, 0);
        assert_eq!(st.my_round(), 1);
        // Empty pool: let it do a bit more than one full round, then abort.
        let (outcome, _env) = run(&p, &mut st, vec![0; 4], 0, Some(5));
        assert_eq!(outcome, SearchOutcome::Aborted);
        assert!(st.my_round() >= 2, "a full empty traversal starts a new round");
        // After a complete round every non-root node was marked with round 1.
        for node in 2..8 {
            assert!(p.round_counter(node) >= 1, "node {node} unmarked after a full round");
        }
    }

    #[test]
    fn lagging_process_catches_up() {
        let p = policy(8);
        // Process A exhausts several rounds on an empty pool.
        let mut a = p.init_state(SegIdx::new(0), 8, 0);
        let (_, _) = run(&p, &mut a, vec![0; 8], 0, Some(40));
        assert!(a.my_round() > 2);

        // Process B starts fresh (round 1); on its first upward walk it must
        // observe a counter from A's later round and jump forward (case 3)
        // rather than repeating A's wasted work.
        let mut b = p.init_state(SegIdx::new(5), 8, 0);
        let (_, env_b) = run(&p, &mut b, vec![0; 8], 5, Some(3));
        assert!(
            b.my_round() >= a.my_round() - 1,
            "B caught up to round {} (A reached {})",
            b.my_round(),
            a.my_round()
        );
        assert!(env_b.probes.len() <= 3, "catch-up is quick");
    }

    #[test]
    fn new_round_restarts_at_own_leaf() {
        let p = policy(4);
        let mut st = p.init_state(SegIdx::new(1), 4, 0);
        // One full empty round from leaf 1 probes 1, then its match 0, then
        // across the root. After the round the process restarts at leaf 1.
        let (_, env) = run(&p, &mut st, vec![0; 4], 1, Some(5));
        assert_eq!(env.probes[0], 1);
        // The 5th probe (index 4) begins round 2 back at the process's leaf.
        assert_eq!(env.probes[4], 1, "new round restarts at own leaf: {:?}", env.probes);
    }

    #[test]
    fn second_search_starts_at_last_leaf() {
        let p = policy(4);
        let mut st = p.init_state(SegIdx::new(0), 4, 0);
        let (outcome, _) = run(&p, &mut st, vec![0, 0, 0, 8], 0, None);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(st.last_leaf(), p.shape().leaf_of(SegIdx::new(3)));
        // Victim still holds elements; next search resumes at that leaf.
        let (outcome2, env2) = run(&p, &mut st, vec![0, 0, 0, 4], 0, None);
        assert_eq!(outcome2, SearchOutcome::Found);
        assert_eq!(env2.probes, vec![3], "resumed at LastLeaf");
    }

    #[test]
    fn examines_fewer_segments_than_linear_on_occupied_far_segment() {
        // The design rationale of the tree (§4.3: "the tree algorithm ...
        // examines many fewer segments in the course of a steal"): with the
        // only stocked victim ring-farthest from the searcher, the linear
        // search crawls all n segments while the tree's matching-descendant
        // jumps skip subtrees it has marked empty along the way.
        let n = 16;
        let far = {
            let mut c = vec![0; n];
            c[n - 1] = 100;
            c
        };

        let tree = policy(n);
        let mut tree_state = tree.init_state(SegIdx::new(0), n, 0);
        let (outcome, tree_env) = run(&tree, &mut tree_state, far.clone(), 0, None);
        assert_eq!(outcome, SearchOutcome::Found);

        let linear = crate::search::LinearSearch::new(n);
        let mut linear_state = SearchPolicy::init_state(&linear, SegIdx::new(0), n, 0);
        let mut linear_env = ScriptEnv::new(far, 0);
        assert_eq!(
            SearchPolicy::search(&linear, &mut linear_state, &mut linear_env),
            SearchOutcome::Found
        );

        assert!(
            tree_env.probes.len() < linear_env.probes.len(),
            "tree probed {} segments, linear {}",
            tree_env.probes.len(),
            linear_env.probes.len()
        );

        // And once the round counters are warm, a repeat search with the
        // same occupancy resumes at the stocked leaf immediately.
        let (outcome2, env2) = run(
            &tree,
            &mut tree_state,
            {
                let mut c = vec![0; n];
                c[n - 1] = 50;
                c
            },
            0,
            None,
        );
        assert_eq!(outcome2, SearchOutcome::Found);
        assert_eq!(env2.probes, vec![n - 1], "steering goes straight back");
    }

    #[test]
    fn tree_charges_internal_nodes() {
        let p = policy(8);
        let mut st = p.init_state(SegIdx::new(0), 8, 0);
        let (_, env) = run(&p, &mut st, vec![0, 0, 0, 0, 0, 0, 0, 2], 0, None);
        assert!(!env.node_charges.is_empty(), "tree search pays for node accesses");
        for node in &env.node_charges {
            assert!(*node >= ROOT && *node < 8, "only internal nodes are visited: {node}");
        }
    }

    #[test]
    fn atomic_store_behaves_like_locked_when_single_threaded() {
        for kind in [NodeStoreKind::Locked, NodeStoreKind::Atomic] {
            let p = TreeSearch::with_store(4, kind);
            let mut st = p.init_state(SegIdx::new(0), 4, 0);
            let (outcome, env) = run(&p, &mut st, vec![0, 0, 0, 9], 0, None);
            assert_eq!(outcome, SearchOutcome::Found, "{kind:?}");
            assert_eq!(env.probes, vec![0, 1, 3], "{kind:?}");
        }
    }

    #[test]
    fn phantom_leaves_are_skipped_gracefully() {
        // 3 segments -> 4 leaves; leaf 3 is a phantom. Elements at segment 2.
        let p = policy(3);
        let mut st = p.init_state(SegIdx::new(0), 3, 0);
        let (outcome, env) = run(&p, &mut st, vec![0, 0, 7], 0, None);
        assert_eq!(outcome, SearchOutcome::Found);
        assert_eq!(*env.probes.last().unwrap(), 2);
        assert!(env.probes.iter().all(|&s| s < 3), "phantoms never reach the env");
    }

    #[test]
    fn single_segment_polls_until_abort() {
        let p = policy(1);
        let mut st = p.init_state(SegIdx::new(0), 1, 0);
        let (outcome, env) = run(&p, &mut st, vec![0], 0, Some(3));
        assert_eq!(outcome, SearchOutcome::Aborted);
        assert_eq!(env.probes, vec![0, 0, 0]);
    }

    #[test]
    fn store_kind_accessors() {
        assert_eq!(TreeSearch::new(4).store_kind(), NodeStoreKind::Locked);
        assert_eq!(
            TreeSearch::with_store(4, NodeStoreKind::Atomic).store_kind(),
            NodeStoreKind::Atomic
        );
        assert_eq!("atomic".parse::<NodeStoreKind>().unwrap(), NodeStoreKind::Atomic);
        assert!("other".parse::<NodeStoreKind>().is_err());
    }

    #[test]
    fn full_round_visits_every_segment() {
        // Within one round every leaf is examined at least once (the
        // definition of a round). Run on an empty 8-pool and record probes
        // until the round increments.
        let p = policy(8);
        let mut st = p.init_state(SegIdx::new(3), 8, 0);
        let mut env = ScriptEnv::new(vec![0; 8], 3);
        env.abort_after = Some(64);
        let _ = p.search(&mut st, &mut env);
        let mut seen: Vec<usize> = env.probes.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..8).collect::<Vec<_>>(), "round covered all segments");
    }
}
