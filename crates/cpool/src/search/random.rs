//! The random search algorithm (§2.3 of Kotz & Ellis 1989).
//!
//! "Another simple algorithm chooses segments at random until it finds a
//! non-empty segment to split."

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::SegIdx;

use super::{ProbeOutcome, SearchEnv, SearchOutcome, SearchPolicy};

/// Random-probing search.
///
/// Each probe targets a uniformly random segment (the process's own segment
/// included, as in the paper). Randomness is deterministic per process: the
/// per-process RNG is seeded from the pool seed and the process id, so
/// experiment runs are reproducible.
#[derive(Clone, Copy, Debug)]
pub struct RandomSearch {
    segments: usize,
}

impl RandomSearch {
    /// Creates a random policy for a pool of `segments` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "pool must have at least one segment");
        RandomSearch { segments }
    }
}

/// Per-process state for [`RandomSearch`]: the process's private RNG.
#[derive(Clone, Debug)]
pub struct RandomState {
    rng: SmallRng,
}

impl SearchPolicy for RandomSearch {
    type State = RandomState;

    fn name(&self) -> &'static str {
        "random"
    }

    fn init_state(&self, me: SegIdx, segments: usize, seed: u64) -> RandomState {
        debug_assert_eq!(segments, self.segments);
        // Mix the process identity into the seed so processes probe
        // different sequences even with the same pool seed.
        let mixed = seed ^ (me.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        RandomState { rng: SmallRng::seed_from_u64(mixed) }
    }

    fn search(&self, state: &mut RandomState, env: &mut dyn SearchEnv) -> SearchOutcome {
        let n = env.segments();
        debug_assert_eq!(n, self.segments);
        loop {
            let victim = SegIdx::new(state.rng.gen_range(0..n));
            if let ProbeOutcome::Stolen { .. } = env.try_steal(victim) {
                return SearchOutcome::Found;
            }
            if env.should_abort() {
                return SearchOutcome::Aborted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::testenv::ScriptEnv;

    #[test]
    fn finds_the_only_occupied_segment() {
        let policy = RandomSearch::new(8);
        let mut state = policy.init_state(SegIdx::new(0), 8, 42);
        let mut env = ScriptEnv::new(vec![0, 0, 0, 0, 0, 10, 0, 0], 0);
        assert_eq!(policy.search(&mut state, &mut env), SearchOutcome::Found);
        assert_eq!(*env.probes.last().unwrap(), 5, "search ends at the occupied segment");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let policy = RandomSearch::new(8);
        let probes = |seed: u64| {
            let mut state = policy.init_state(SegIdx::new(2), 8, seed);
            let mut env = ScriptEnv::new(vec![0; 8], 2);
            env.abort_after = Some(20);
            let _ = policy.search(&mut state, &mut env);
            env.probes
        };
        assert_eq!(probes(7), probes(7), "same seed, same probe sequence");
        assert_ne!(probes(7), probes(8), "different seed, different sequence");
    }

    #[test]
    fn distinct_processes_probe_differently() {
        let policy = RandomSearch::new(8);
        let probes_for = |me: usize| {
            let mut state = policy.init_state(SegIdx::new(me), 8, 1);
            let mut env = ScriptEnv::new(vec![0; 8], me);
            env.abort_after = Some(20);
            let _ = policy.search(&mut state, &mut env);
            env.probes
        };
        assert_ne!(probes_for(0), probes_for(1));
    }

    #[test]
    fn probes_are_roughly_uniform() {
        let policy = RandomSearch::new(4);
        let mut state = policy.init_state(SegIdx::new(0), 4, 99);
        let mut env = ScriptEnv::new(vec![0; 4], 0);
        env.abort_after = Some(4000);
        let _ = policy.search(&mut state, &mut env);
        let mut hist = [0usize; 4];
        for p in &env.probes {
            hist[*p] += 1;
        }
        for count in hist {
            // Each of 4 segments expects ~1000 probes of 4000; allow wide slack.
            assert!((700..1300).contains(&count), "unexpectedly skewed: {hist:?}");
        }
    }

    #[test]
    fn aborts_when_gate_fires() {
        let policy = RandomSearch::new(2);
        let mut state = policy.init_state(SegIdx::new(0), 2, 3);
        let mut env = ScriptEnv::new(vec![0, 0], 0);
        env.abort_after = Some(5);
        assert_eq!(policy.search(&mut state, &mut env), SearchOutcome::Aborted);
    }
}
