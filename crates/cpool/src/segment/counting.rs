//! Counting segments: the paper's measurement simplification.
//!
//! "We simplified the segments, representing them as a single counter that
//! is atomically added to, subtracted from, or split in half (since the
//! values of the elements do not matter to the simulation, we need only
//! store the number of elements in each segment)." — Kotz & Ellis, §3.2.
//!
//! Two variants are provided so the locking discipline itself can be
//! studied (the 1989 implementation used locks; modern hardware offers
//! compare-and-swap):
//!
//! * [`LockedCounter`] — a mutex-protected count, mirroring the paper.
//! * [`AtomicCounter`] — a lock-free CAS loop.
//!
//! Both transfer in [`CountBatch`] currency — a bare count, one machine
//! word — so the unified batch-typed steal interface costs the counter
//! representation nothing.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use super::{steal_count, Segment};
use crate::transfer::{CountBatch, TransferBatch};

/// Mutex-protected element count (the paper's segment representation).
///
/// Mutations still serialize on the mutex — that locking discipline is the
/// thing being studied — but the count is mirrored in an atomic written
/// under the lock, so [`len`](Segment::len) / [`is_empty`](Segment::is_empty)
/// observe occupancy without contending with mutators (search probes skip
/// empty victims lock-free).
///
/// ```
/// use cpool::segment::{LockedCounter, Segment};
/// use cpool::transfer::TransferBatch;
/// let seg = LockedCounter::new();
/// seg.add(());
/// seg.add(());
/// seg.add(());
/// assert_eq!(seg.steal_half().len(), 2); // ceil(3/2)
/// assert_eq!(seg.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LockedCounter {
    count: Mutex<usize>,
    /// Lock-free occupancy mirror: written (`Release`) only while `count`
    /// is locked, read (`Acquire`) without the lock.
    mirror: AtomicUsize,
}

impl LockedCounter {
    /// Publishes the locked count to the lock-free mirror; must be called
    /// with the `count` lock held, after the mutation.
    fn publish(&self, count: usize) {
        self.mirror.store(count, Ordering::Release);
    }
}

impl Segment for LockedCounter {
    type Item = ();
    type Batch = CountBatch;

    fn new() -> Self {
        LockedCounter::default()
    }

    fn add(&self, _item: ()) {
        let mut count = self.count.lock();
        *count += 1;
        self.publish(*count);
    }

    fn try_remove(&self) -> Option<()> {
        let mut count = self.count.lock();
        if *count == 0 {
            None
        } else {
            *count -= 1;
            self.publish(*count);
            Some(())
        }
    }

    fn len(&self) -> usize {
        self.mirror.load(Ordering::Acquire)
    }

    fn steal_half(&self) -> CountBatch {
        let mut count = self.count.lock();
        let taken = steal_count(*count);
        *count -= taken;
        self.publish(*count);
        CountBatch::of(taken)
    }

    fn add_bulk(&self, batch: CountBatch) {
        // Guard the empty case: the probe's container-return leg must not
        // acquire the (uncharged) segment lock.
        if !batch.is_empty() {
            let mut count = self.count.lock();
            *count += batch.len();
            self.publish(*count);
        }
    }

    fn remove_up_to(&self, n: usize) -> CountBatch {
        let mut count = self.count.lock();
        let taken = n.min(*count);
        *count -= taken;
        self.publish(*count);
        CountBatch::of(taken)
    }

    fn drain_all(&self) -> CountBatch {
        let mut count = self.count.lock();
        let taken = std::mem::take(&mut *count);
        self.publish(*count);
        CountBatch::of(taken)
    }
}

/// Lock-free element count using a compare-and-swap loop.
///
/// Behaviourally identical to [`LockedCounter`]; used as an ablation to ask
/// whether the paper's segment-lock overhead changes any conclusion.
///
/// ```
/// use cpool::segment::{AtomicCounter, Segment};
/// use cpool::transfer::{CountBatch, TransferBatch};
/// let seg = AtomicCounter::new();
/// seg.add_bulk(CountBatch::of(5));
/// assert_eq!(seg.len(), 5);
/// assert!(seg.try_remove().is_some());
/// assert_eq!(seg.steal_half().len(), 2); // ceil(4/2)
/// ```
#[derive(Debug, Default)]
pub struct AtomicCounter {
    count: AtomicUsize,
}

impl Segment for AtomicCounter {
    type Item = ();
    type Batch = CountBatch;

    fn new() -> Self {
        AtomicCounter { count: AtomicUsize::new(0) }
    }

    fn add(&self, _item: ()) {
        self.count.fetch_add(1, Ordering::AcqRel);
    }

    fn try_remove(&self) -> Option<()> {
        let mut current = self.count.load(Ordering::Acquire);
        loop {
            if current == 0 {
                return None;
            }
            match self.count.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(()),
                Err(actual) => current = actual,
            }
        }
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    fn steal_half(&self) -> CountBatch {
        let mut current = self.count.load(Ordering::Acquire);
        loop {
            let taken = steal_count(current);
            if taken == 0 {
                return CountBatch::of(0);
            }
            match self.count.compare_exchange_weak(
                current,
                current - taken,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return CountBatch::of(taken),
                Err(actual) => current = actual,
            }
        }
    }

    fn add_bulk(&self, batch: CountBatch) {
        if !batch.is_empty() {
            self.count.fetch_add(batch.len(), Ordering::AcqRel);
        }
    }

    fn remove_up_to(&self, n: usize) -> CountBatch {
        let mut current = self.count.load(Ordering::Acquire);
        loop {
            let taken = n.min(current);
            if taken == 0 {
                return CountBatch::of(0);
            }
            match self.count.compare_exchange_weak(
                current,
                current - taken,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return CountBatch::of(taken),
                Err(actual) => current = actual,
            }
        }
    }

    fn drain_all(&self) -> CountBatch {
        CountBatch::of(self.count.swap(0, Ordering::AcqRel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn hammer<S: Segment<Item = ()> + 'static>() {
        let seg = Arc::new(S::new());
        let threads = 4;
        let per_thread = 2500usize;
        thread::scope(|s| {
            for _ in 0..threads {
                let seg = Arc::clone(&seg);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        seg.add(());
                    }
                });
            }
        });
        assert_eq!(seg.len(), threads * per_thread);

        // Concurrent removers + thieves must conserve the count.
        let removed = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for t in 0..threads {
                let seg = Arc::clone(&seg);
                let removed = Arc::clone(&removed);
                s.spawn(move || {
                    if t % 2 == 0 {
                        for _ in 0..per_thread {
                            if seg.try_remove().is_some() {
                                removed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        for _ in 0..32 {
                            let batch = seg.steal_half();
                            removed.fetch_add(batch.len(), Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            removed.load(Ordering::Relaxed) + seg.len(),
            threads * per_thread,
            "elements are conserved under concurrent remove/steal"
        );
    }

    #[test]
    fn locked_counter_concurrent_conservation() {
        hammer::<LockedCounter>();
    }

    #[test]
    fn atomic_counter_concurrent_conservation() {
        hammer::<AtomicCounter>();
    }

    #[test]
    fn locked_counter_len_reads_without_the_lock() {
        let seg = LockedCounter::new();
        seg.add(());
        seg.add(());
        // The mirror must answer even while the mutex is held.
        let _lock = seg.count.lock();
        assert_eq!(seg.len(), 2);
        assert!(!seg.is_empty());
    }

    #[test]
    fn steal_half_sequence_drains() {
        // Repeated halving of 20 elements: 10, 5, 3, 1, 1 (sizes after each
        // steal: 10, 5, 2, 1, 0).
        let seg = LockedCounter::new();
        seg.add_bulk(CountBatch::of(20));
        let takes: Vec<usize> = std::iter::from_fn(|| {
            let batch = seg.steal_half();
            if batch.is_empty() {
                None
            } else {
                Some(batch.len())
            }
        })
        .collect();
        assert_eq!(takes, vec![10, 5, 3, 1, 1]);
        assert!(seg.is_empty());
    }

    #[test]
    fn count_batches_never_touch_the_heap() {
        // A CountBatch is one machine word however many elements it stands
        // for — this is what makes the batch-typed steal interface free for
        // the counter representation.
        assert_eq!(std::mem::size_of::<CountBatch>(), std::mem::size_of::<usize>());
        let batch = CountBatch::of(1_000_000);
        assert_eq!(batch.len(), 1_000_000);
    }
}
