//! Counting segments: the paper's measurement simplification.
//!
//! "We simplified the segments, representing them as a single counter that
//! is atomically added to, subtracted from, or split in half (since the
//! values of the elements do not matter to the simulation, we need only
//! store the number of elements in each segment)." — Kotz & Ellis, §3.2.
//!
//! Two variants are provided so the locking discipline itself can be
//! studied (the 1989 implementation used locks; modern hardware offers
//! compare-and-swap):
//!
//! * [`LockedCounter`] — a mutex-protected count, mirroring the paper.
//! * [`AtomicCounter`] — a lock-free CAS loop.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use super::{steal_count, Segment};

/// Mutex-protected element count (the paper's segment representation).
///
/// ```
/// use cpool::segment::{LockedCounter, Segment};
/// let seg = LockedCounter::new();
/// seg.add(());
/// seg.add(());
/// seg.add(());
/// assert_eq!(seg.steal_half().len(), 2); // ceil(3/2)
/// assert_eq!(seg.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LockedCounter {
    count: Mutex<usize>,
}

impl Segment for LockedCounter {
    type Item = ();

    fn new() -> Self {
        LockedCounter { count: Mutex::new(0) }
    }

    fn add(&self, _item: ()) {
        *self.count.lock() += 1;
    }

    fn try_remove(&self) -> Option<()> {
        let mut count = self.count.lock();
        if *count == 0 {
            None
        } else {
            *count -= 1;
            Some(())
        }
    }

    fn len(&self) -> usize {
        *self.count.lock()
    }

    fn steal_half(&self) -> Vec<()> {
        let taken = {
            let mut count = self.count.lock();
            let taken = steal_count(*count);
            *count -= taken;
            taken
        };
        // Vec<()> never allocates: this is just a length.
        vec![(); taken]
    }

    fn add_bulk(&self, items: Vec<()>) {
        *self.count.lock() += items.len();
    }

    fn remove_up_to(&self, n: usize) -> Vec<()> {
        let taken = {
            let mut count = self.count.lock();
            let taken = n.min(*count);
            *count -= taken;
            taken
        };
        vec![(); taken]
    }

    fn drain_all(&self) -> Vec<()> {
        let taken = std::mem::take(&mut *self.count.lock());
        vec![(); taken]
    }
}

/// Lock-free element count using a compare-and-swap loop.
///
/// Behaviourally identical to [`LockedCounter`]; used as an ablation to ask
/// whether the paper's segment-lock overhead changes any conclusion.
///
/// ```
/// use cpool::segment::{AtomicCounter, Segment};
/// let seg = AtomicCounter::new();
/// seg.add_bulk(vec![(); 5]);
/// assert_eq!(seg.len(), 5);
/// assert!(seg.try_remove().is_some());
/// assert_eq!(seg.steal_half().len(), 2); // ceil(4/2)
/// ```
#[derive(Debug, Default)]
pub struct AtomicCounter {
    count: AtomicUsize,
}

impl Segment for AtomicCounter {
    type Item = ();

    fn new() -> Self {
        AtomicCounter { count: AtomicUsize::new(0) }
    }

    fn add(&self, _item: ()) {
        self.count.fetch_add(1, Ordering::AcqRel);
    }

    fn try_remove(&self) -> Option<()> {
        let mut current = self.count.load(Ordering::Acquire);
        loop {
            if current == 0 {
                return None;
            }
            match self.count.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(()),
                Err(actual) => current = actual,
            }
        }
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    fn steal_half(&self) -> Vec<()> {
        let mut current = self.count.load(Ordering::Acquire);
        loop {
            let taken = steal_count(current);
            if taken == 0 {
                return Vec::new();
            }
            match self.count.compare_exchange_weak(
                current,
                current - taken,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return vec![(); taken],
                Err(actual) => current = actual,
            }
        }
    }

    fn add_bulk(&self, items: Vec<()>) {
        if !items.is_empty() {
            self.count.fetch_add(items.len(), Ordering::AcqRel);
        }
    }

    fn remove_up_to(&self, n: usize) -> Vec<()> {
        let mut current = self.count.load(Ordering::Acquire);
        loop {
            let taken = n.min(current);
            if taken == 0 {
                return Vec::new();
            }
            match self.count.compare_exchange_weak(
                current,
                current - taken,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return vec![(); taken],
                Err(actual) => current = actual,
            }
        }
    }

    fn drain_all(&self) -> Vec<()> {
        let taken = self.count.swap(0, Ordering::AcqRel);
        vec![(); taken]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn hammer<S: Segment<Item = ()> + 'static>() {
        let seg = Arc::new(S::new());
        let threads = 4;
        let per_thread = 2500usize;
        thread::scope(|s| {
            for _ in 0..threads {
                let seg = Arc::clone(&seg);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        seg.add(());
                    }
                });
            }
        });
        assert_eq!(seg.len(), threads * per_thread);

        // Concurrent removers + thieves must conserve the count.
        let removed = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for t in 0..threads {
                let seg = Arc::clone(&seg);
                let removed = Arc::clone(&removed);
                s.spawn(move || {
                    if t % 2 == 0 {
                        for _ in 0..per_thread {
                            if seg.try_remove().is_some() {
                                removed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        for _ in 0..32 {
                            let batch = seg.steal_half();
                            removed.fetch_add(batch.len(), Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            removed.load(Ordering::Relaxed) + seg.len(),
            threads * per_thread,
            "elements are conserved under concurrent remove/steal"
        );
    }

    #[test]
    fn locked_counter_concurrent_conservation() {
        hammer::<LockedCounter>();
    }

    #[test]
    fn atomic_counter_concurrent_conservation() {
        hammer::<AtomicCounter>();
    }

    #[test]
    fn steal_half_sequence_drains() {
        // Repeated halving of 20 elements: 10, 5, 3, 1, 1 (sizes after each
        // steal: 10, 5, 2, 1, 0).
        let seg = LockedCounter::new();
        seg.add_bulk(vec![(); 20]);
        let takes: Vec<usize> = std::iter::from_fn(|| {
            let batch = seg.steal_half();
            if batch.is_empty() {
                None
            } else {
                Some(batch.len())
            }
        })
        .collect();
        assert_eq!(takes, vec![10, 5, 3, 1, 1]);
        assert!(seg.is_empty());
    }

    #[test]
    fn zst_batches_do_not_allocate() {
        // Vec<()> has zero-sized elements; capacity is usize::MAX and no heap
        // allocation happens. This is what makes the unified batch API free
        // for counting segments.
        let v = vec![(); 1_000_000];
        assert_eq!(v.capacity(), usize::MAX);
    }
}
