//! Fully lock-free element segment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_queue::{ArrayQueue, SegQueue};

use super::{steal_count, Segment};
use crate::transfer::{FreeList, SHELL_SPILL_MAX, SHELL_SPILL_MIN};

/// Vector shells a pool-wide cache retains per segment of the family
/// (same sizing as `VecSegment`'s shell cache).
const CACHED_SHELLS_PER_SEGMENT: usize = 2;

/// Slots in the bounded ring that serves as the element fast path.
///
/// The contention matrix (`BENCH_contention.json`, `primitive/*`) measures
/// a push+pop pair through the Vyukov ring at a fraction of the segmented
/// queue's cost — one claimed-slot CAS per operation versus the queue's
/// global-index CAS plus per-slot flag handshake — so the ring carries the
/// working set and the unbounded queue only absorbs the overflow. Sized to
/// hold a typical per-segment working set (pool prefills and steal-refill
/// reserves are tens of elements) while keeping the per-segment footprint
/// small; pools are multisets, so elements spilling to the overflow tier
/// and returning out of FIFO order is observable but contractual noise.
const RING_CAPACITY: usize = 256;

/// A segment whose every operation is lock-free: elements live in a
/// bounded MPMC ring ([`ArrayQueue`], the fast path) that spills into the
/// vendored segmented MPMC queue ([`SegQueue`], the unbounded overflow
/// tier), and occupancy lives in an atomic counter that is the segment's
/// *primary* bookkeeping, not a mirror of locked state.
///
/// # The reservation protocol
///
/// The mutex segments decide "how many may I take?" under their lock.
/// Here the counter itself is the arbiter, the same CAS discipline as
/// [`AtomicCounter`](super::AtomicCounter):
///
/// * `add` pushes the element first, then announces it with a
///   `fetch_add(1)`. An element is never counted before it is present.
/// * Every removal path (`try_remove`, `steal_half`, `remove_up_to`,
///   `drain_all`) first *reserves* `k` elements by CAS-decrementing the
///   counter from `n` to `n - k`, then pops exactly `k` values. Because
///   elements are enqueued before they are counted, a successful
///   reservation proves at least `k` completed pushes precede it — the
///   pop loop can only transiently miss a value whose push is between
///   "enqueued" and "counted", so it retries until the reservation is
///   honored in full. Concurrent removers cannot over-drain: each pop is
///   backed by its own reservation.
///
/// `len` is therefore exact over *completed* operations: it may lag an
/// in-flight `add` (the element is already poppable but not yet counted)
/// but can never over-report — the empty-probe contract of
/// [`Segment::len`].
///
/// The two storage tiers do not weaken the argument: a completed push
/// placed its element in the ring *or* the overflow queue, and every pop
/// probes both, so a reservation is still backed by reachable elements.
/// The pop loop's transient-miss window gains one case — the ring is
/// FIFO, so a producer preempted between claiming the head slot and
/// publishing its stamp briefly hides completed pushes behind it — and
/// the existing spin-then-yield retry covers it just as it covers the
/// enqueued-but-not-yet-counted window.
///
/// # Steal and transfer currency
///
/// `steal_half` is an atomic occupancy split (reserve ⌈n/2⌉ by CAS)
/// followed by a bounded pop-loop into a recycled `Vec` shell — the same
/// plain-vector currency and pool-wide shell cache as
/// [`VecSegment`](super::VecSegment), so the steady-state steal/refill
/// cycle allocates nothing (the ring is pre-allocated at construction and
/// the overflow queue recycles its spent blocks internally, see the
/// vendored `SegQueue` docs).
///
/// Local order is FIFO while the working set fits the ring; once elements
/// spill into the overflow tier, pops serve the ring first and cross-tier
/// order interleaves. The pool's element order is unspecified by
/// contract, so neither is a guarantee.
///
/// ```
/// use cpool::segment::{LfSegment, Segment};
/// let seg = LfSegment::new();
/// seg.add("a");
/// seg.add("b");
/// assert_eq!(seg.len(), 2);
/// assert_eq!(seg.try_remove(), Some("a")); // FIFO locally
/// ```
#[derive(Debug)]
pub struct LfSegment<T> {
    /// Fast path: a pre-allocated bounded ring holding the working set.
    ring: ArrayQueue<T>,
    /// Overflow tier: unbounded, absorbs pushes the full ring rejects.
    overflow: SegQueue<T>,
    /// Primary occupancy: incremented after a push completes, CAS-reserved
    /// before any pop. Not a mirror — there is no locked state to mirror.
    occupancy: AtomicUsize,
    shells: Arc<FreeList<Vec<T>>>,
}

impl<T> LfSegment<T> {
    fn with_shells(shells: Arc<FreeList<Vec<T>>>) -> Self {
        LfSegment {
            ring: ArrayQueue::new(RING_CAPACITY),
            overflow: SegQueue::new(),
            occupancy: AtomicUsize::new(0),
            shells,
        }
    }

    /// Enqueues into the ring, spilling to the overflow queue when full.
    /// Callers count the element *after* this returns.
    fn push(&self, item: T) {
        if let Err(item) = self.ring.push(item) {
            self.overflow.push(item);
        }
    }

    /// Reserves up to `want` elements by CAS-decrementing the occupancy
    /// counter; returns how many were secured (0 if the segment is empty).
    fn reserve(&self, want: usize) -> usize {
        let mut current = self.occupancy.load(Ordering::Acquire);
        loop {
            let take = want.min(current);
            if take == 0 {
                return 0;
            }
            match self.occupancy.compare_exchange_weak(
                current,
                current - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(actual) => current = actual,
            }
        }
    }

    /// Reserves ⌈n/2⌉ of the current occupancy (the steal rule applied
    /// atomically at the counter).
    fn reserve_half(&self) -> usize {
        let mut current = self.occupancy.load(Ordering::Acquire);
        loop {
            let take = steal_count(current);
            if take == 0 {
                return 0;
            }
            match self.occupancy.compare_exchange_weak(
                current,
                current - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(actual) => current = actual,
            }
        }
    }

    /// Pops one element backed by a reservation, spinning out the window
    /// where a racing `add` has enqueued but not yet counted a value.
    ///
    /// A reservation of `k` proves `k` completed adds (counted ⇒ pushed),
    /// so this terminates; the spin only covers other reservers momentarily
    /// popping "our" element while "theirs" is still in that window.
    fn pop_reserved(&self) -> T {
        loop {
            if let Some(item) = self.ring.pop() {
                return item;
            }
            if let Some(item) = self.overflow.pop() {
                return item;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Pops `reserved` elements into `out`.
    fn pop_reserved_into(&self, reserved: usize, out: &mut Vec<T>) {
        for _ in 0..reserved {
            out.push(self.pop_reserved());
        }
    }
}

impl<T> Default for LfSegment<T> {
    fn default() -> Self {
        Self::with_shells(Arc::new(FreeList::new(CACHED_SHELLS_PER_SEGMENT + 2)))
    }
}

impl<T: Send + 'static> Segment for LfSegment<T> {
    type Item = T;
    type Batch = Vec<T>;

    fn new() -> Self {
        Self::default()
    }

    /// One pool's segments share a single shell cache, exactly like
    /// [`VecSegment::new_family`](super::VecSegment).
    fn new_family(count: usize) -> Vec<Self> {
        let shells = Arc::new(FreeList::new(CACHED_SHELLS_PER_SEGMENT * count.max(1) + 2));
        (0..count).map(|_| Self::with_shells(Arc::clone(&shells))).collect()
    }

    fn add(&self, item: T) {
        // Push before counting: a counted element is always poppable.
        self.push(item);
        self.occupancy.fetch_add(1, Ordering::AcqRel);
    }

    fn try_remove(&self) -> Option<T> {
        if self.reserve(1) == 0 {
            return None;
        }
        Some(self.pop_reserved())
    }

    fn len(&self) -> usize {
        self.occupancy.load(Ordering::Acquire)
    }

    fn steal_half(&self) -> Vec<T> {
        let taken = self.reserve_half();
        if taken == 0 {
            return Vec::new(); // no allocation: an empty Vec is a null cap
        }
        if taken < SHELL_SPILL_MIN {
            // Tiny steal: the allocator's small-size fast path beats a
            // free-list round trip (same threshold as VecSegment).
            let mut batch = Vec::with_capacity(taken);
            self.pop_reserved_into(taken, &mut batch);
            return batch;
        }
        let mut batch = self.shells.take().unwrap_or_default();
        self.pop_reserved_into(taken, &mut batch);
        batch
    }

    fn add_bulk(&self, mut batch: Vec<T>) {
        if !batch.is_empty() {
            let count = batch.len();
            for item in batch.drain(..) {
                self.push(item);
            }
            // One announcement for the whole deposit: a thief's refill
            // becomes visible to searchers as a single occupancy step.
            self.occupancy.fetch_add(count, Ordering::AcqRel);
        }
        // Return the emptied shell to the pool-wide cache (bounds as in
        // VecSegment: undersized shells dilute the cache, oversized ones
        // pin unbounded memory).
        if (SHELL_SPILL_MIN..=SHELL_SPILL_MAX).contains(&batch.capacity()) {
            self.shells.put(batch);
        }
    }

    fn remove_up_to(&self, n: usize) -> Vec<T> {
        let taken = self.reserve(n);
        // The result leaves the pool with the caller, so it is a plain
        // allocation, not a cache draw (a shell handed out could never
        // come back).
        let mut batch = Vec::with_capacity(taken);
        self.pop_reserved_into(taken, &mut batch);
        batch
    }

    fn drain_all(&self) -> Vec<T> {
        // Claim everything currently counted in one swap; elements whose
        // add races this call stay behind for the next drain.
        let taken = self.occupancy.swap(0, Ordering::AcqRel);
        let mut batch = Vec::with_capacity(taken);
        self.pop_reserved_into(taken, &mut batch);
        batch
    }

    fn batch_shell(&self) -> Vec<T> {
        self.shells.take().unwrap_or_default()
    }

    fn remove_up_to_into(&self, n: usize, out: &mut Vec<T>) {
        let taken = self.reserve(n);
        self.pop_reserved_into(taken, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn local_ops_are_fifo() {
        let seg = LfSegment::new();
        for i in 0..5 {
            seg.add(i);
        }
        assert_eq!(seg.try_remove(), Some(0));
        assert_eq!(seg.try_remove(), Some(1));
        assert_eq!(seg.len(), 3);
    }

    #[test]
    fn steal_reserves_ceil_half() {
        let seg = LfSegment::new();
        for i in 0..9 {
            seg.add(i);
        }
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 4);
    }

    #[test]
    fn refill_recycles_the_shell() {
        let family = <LfSegment<u32> as Segment>::new_family(2);
        for i in 0..40 {
            family[0].add(i);
        }
        let batch = family[0].steal_half();
        let cap = batch.capacity();
        assert!(cap >= 20);
        family[1].add_bulk(batch);
        let again = family[1].steal_half();
        assert_eq!(again.capacity(), cap, "shell came back from the cache");
        assert_eq!(again.len(), 10);
    }

    #[test]
    fn len_never_over_reports() {
        // Hammer adds/removes and continuously assert the probe invariant:
        // a nonzero len means a remove must succeed *given no concurrent
        // removers* — here the single remover owns all removals, so every
        // observation of len > 0 guarantees its next try_remove() != None.
        let seg = LfSegment::new();
        thread::scope(|s| {
            let seg = &seg;
            s.spawn(move || {
                for i in 0..20_000u64 {
                    seg.add(i);
                }
            });
            s.spawn(move || {
                let mut got = 0u64;
                while got < 20_000 {
                    if seg.len() > 0 {
                        assert!(
                            seg.try_remove().is_some(),
                            "len > 0 with a single remover must mean a poppable element"
                        );
                        got += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(seg.len(), 0);
    }

    #[test]
    fn overflow_spill_conserves_and_drains() {
        // Push far past the ring's capacity so both tiers hold elements,
        // then take everything back out through every removal path.
        let seg = LfSegment::new();
        let total = (RING_CAPACITY * 3) as u64;
        for i in 0..total {
            seg.add(i);
        }
        assert_eq!(seg.len() as u64, total);
        let mut sum = 0u64;
        sum += seg.steal_half().into_iter().sum::<u64>();
        sum += seg.remove_up_to(100).into_iter().sum::<u64>();
        while let Some(v) = seg.try_remove() {
            sum += v;
        }
        assert_eq!(sum, (0..total).sum::<u64>(), "both tiers account for every element");
        assert_eq!(seg.len(), 0);
    }

    #[test]
    fn concurrent_thieves_conserve() {
        let seg = LfSegment::new();
        let total = 10_000u64;
        for i in 0..total {
            seg.add(i);
        }
        let stolen = std::sync::atomic::AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                let (seg, stolen) = (&seg, &stolen);
                s.spawn(move || loop {
                    let batch = seg.steal_half();
                    if batch.is_empty() {
                        break;
                    }
                    stolen.fetch_add(batch.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(stolen.load(Ordering::Relaxed) as u64 + seg.len() as u64, total);
        assert_eq!(seg.len(), 0, "repeated halving drains completely");
    }
}
