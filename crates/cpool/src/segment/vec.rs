//! Element segment backed by a deque.

use std::collections::VecDeque;

use parking_lot::Mutex;

use super::{steal_count, Segment};

/// A segment storing real elements in a mutex-protected deque.
///
/// Local operations are LIFO (`add` pushes and `try_remove` pops the back),
/// which gives task-scheduling workloads the locality of a work-stealing
/// deque: a process keeps working on what it most recently produced.
/// Thieves take the ⌈n/2⌉ *oldest* elements from the front, which both
/// matches the "split half" rule and minimizes contention with the owner's
/// end.
///
/// The pool's element order is unspecified by contract; this layout is an
/// implementation choice, not an ordering guarantee.
///
/// ```
/// use cpool::segment::{Segment, VecSegment};
/// let seg = VecSegment::new();
/// seg.add("a");
/// seg.add("b");
/// assert_eq!(seg.try_remove(), Some("b")); // LIFO locally
/// ```
#[derive(Debug)]
pub struct VecSegment<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Default for VecSegment<T> {
    fn default() -> Self {
        VecSegment { items: Mutex::new(VecDeque::new()) }
    }
}

impl<T: Send + 'static> Segment for VecSegment<T> {
    type Item = T;

    fn new() -> Self {
        Self::default()
    }

    fn add(&self, item: T) {
        self.items.lock().push_back(item);
    }

    fn try_remove(&self) -> Option<T> {
        self.items.lock().pop_back()
    }

    fn len(&self) -> usize {
        self.items.lock().len()
    }

    fn steal_half(&self) -> Vec<T> {
        let mut items = self.items.lock();
        let taken = steal_count(items.len());
        items.drain(..taken).collect()
    }

    fn add_bulk(&self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let mut items = self.items.lock();
        items.extend(batch);
    }

    fn remove_up_to(&self, n: usize) -> Vec<T> {
        let mut items = self.items.lock();
        let take = n.min(items.len());
        // Take from the back — the owner's hot (LIFO) end, like
        // `try_remove` — under a single lock acquisition.
        let at = items.len() - take;
        items.split_off(at).into_iter().collect()
    }

    fn drain_all(&self) -> Vec<T> {
        std::mem::take(&mut *self.items.lock()).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ops_are_lifo() {
        let seg = VecSegment::new();
        for i in 0..5 {
            seg.add(i);
        }
        assert_eq!(seg.try_remove(), Some(4));
        assert_eq!(seg.try_remove(), Some(3));
    }

    #[test]
    fn steal_takes_oldest() {
        let seg = VecSegment::new();
        for i in 0..6 {
            seg.add(i);
        }
        assert_eq!(seg.steal_half(), vec![0, 1, 2]);
        assert_eq!(seg.try_remove(), Some(5), "owner's hot end untouched");
    }

    #[test]
    fn steal_then_refill_conserves() {
        let a = VecSegment::new();
        let b = VecSegment::new();
        for i in 0..100 {
            a.add(i);
        }
        // Simulate the pool's two-phase steal: drain victim, then refill own.
        let batch = a.steal_half();
        b.add_bulk(batch);
        assert_eq!(a.len() + b.len(), 100);
        assert_eq!(b.len(), 50);
    }

    #[test]
    fn empty_steal_is_empty() {
        let seg = VecSegment::<u8>::new();
        assert!(seg.steal_half().is_empty());
    }

    #[test]
    fn add_bulk_of_nothing_is_noop() {
        let seg = VecSegment::<u8>::new();
        seg.add_bulk(Vec::new());
        assert!(seg.is_empty());
    }
}
