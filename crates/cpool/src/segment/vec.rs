//! Element segment backed by a deque.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use super::{steal_count, Segment};
use crate::transfer::{FreeList, SHELL_SPILL_MAX, SHELL_SPILL_MIN};

/// Vector shells a pool-wide cache retains per segment of the family.
const CACHED_SHELLS_PER_SEGMENT: usize = 2;

/// A segment storing real elements in a mutex-protected deque.
///
/// Local operations are LIFO (`add` pushes and `try_remove` pops the back),
/// which gives task-scheduling workloads the locality of a work-stealing
/// deque: a process keeps working on what it most recently produced.
/// Thieves take the ⌈n/2⌉ *oldest* elements from the front, which both
/// matches the "split half" rule and minimizes contention with the owner's
/// end.
///
/// Transfers travel as plain `Vec` batches whose backing vectors are
/// recycled through a pool-wide free list (shared via
/// [`Segment::new_family`]): `steal_half` fills a recycled shell and
/// `add_bulk` returns it, so the steady-state steal/refill cycle allocates
/// nothing once the shells have grown to the transfer size.
///
/// The pool's element order is unspecified by contract; this layout is an
/// implementation choice, not an ordering guarantee.
///
/// Occupancy is mirrored in an atomic counter maintained by the locked
/// mutation paths (every store happens while the mutex is held), so
/// [`len`](Segment::len) / [`is_empty`](Segment::is_empty) never touch the
/// lock — search probes observe emptiness without contending with the
/// owner.
///
/// ```
/// use cpool::segment::{Segment, VecSegment};
/// let seg = VecSegment::new();
/// seg.add("a");
/// seg.add("b");
/// assert_eq!(seg.try_remove(), Some("b")); // LIFO locally
/// ```
#[derive(Debug)]
pub struct VecSegment<T> {
    items: Mutex<VecDeque<T>>,
    /// Lock-free occupancy mirror: written (`Release`) only while `items`
    /// is locked, read (`Acquire`) without the lock by `len`/`is_empty`.
    len: AtomicUsize,
    shells: Arc<FreeList<Vec<T>>>,
}

impl<T> VecSegment<T> {
    fn with_shells(shells: Arc<FreeList<Vec<T>>>) -> Self {
        VecSegment { items: Mutex::new(VecDeque::new()), len: AtomicUsize::new(0), shells }
    }

    /// Publishes the locked deque's length to the lock-free mirror; must be
    /// called with the `items` lock held, after the mutation.
    fn publish_len(&self, items: &VecDeque<T>) {
        self.len.store(items.len(), Ordering::Release);
    }
}

impl<T> Default for VecSegment<T> {
    fn default() -> Self {
        Self::with_shells(Arc::new(FreeList::new(CACHED_SHELLS_PER_SEGMENT + 2)))
    }
}

impl<T: Send + 'static> Segment for VecSegment<T> {
    type Item = T;
    type Batch = Vec<T>;

    fn new() -> Self {
        Self::default()
    }

    /// One pool's segments share a single shell cache, so the vector a
    /// thief carried its last steal in is reused for the next transfer
    /// anywhere in the pool.
    fn new_family(count: usize) -> Vec<Self> {
        let shells = Arc::new(FreeList::new(CACHED_SHELLS_PER_SEGMENT * count.max(1) + 2));
        (0..count).map(|_| Self::with_shells(Arc::clone(&shells))).collect()
    }

    fn add(&self, item: T) {
        let mut items = self.items.lock();
        items.push_back(item);
        self.publish_len(&items);
    }

    fn try_remove(&self) -> Option<T> {
        let mut items = self.items.lock();
        let item = items.pop_back();
        self.publish_len(&items);
        item
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    fn steal_half(&self) -> Vec<T> {
        let mut items = self.items.lock();
        let taken = steal_count(items.len());
        if taken == 0 {
            return Vec::new(); // no allocation: an empty Vec is a null cap
        }
        if taken < SHELL_SPILL_MIN {
            // A tiny steal: the allocator's small-size fast path beats a
            // free-list round trip.
            let batch = items.drain(..taken).collect();
            self.publish_len(&items);
            return batch;
        }
        // A bulk steal fills a recycled shell (capacity carried over from
        // an earlier transfer) instead of collecting into a fresh vector.
        let mut batch = self.shells.take().unwrap_or_default();
        batch.extend(items.drain(..taken));
        self.publish_len(&items);
        batch
    }

    fn add_bulk(&self, mut batch: Vec<T>) {
        if !batch.is_empty() {
            let mut items = self.items.lock();
            items.extend(batch.drain(..));
            self.publish_len(&items);
        }
        // The drained shell goes back to the pool's cache for the next
        // bulk steal (lock already released); undersized shells are not
        // worth the round trip and would dilute the cache, oversized ones
        // (a huge add_batch's backing buffer) would pin unbounded memory.
        if (SHELL_SPILL_MIN..=SHELL_SPILL_MAX).contains(&batch.capacity()) {
            self.shells.put(batch);
        }
    }

    fn remove_up_to(&self, n: usize) -> Vec<T> {
        let mut items = self.items.lock();
        let take = n.min(items.len());
        // Take from the back — the owner's hot (LIFO) end, like
        // `try_remove` — under a single lock acquisition. The result leaves
        // the pool with the caller, so it is a plain allocation, not a
        // cache draw (a shell handed out could never come back).
        let at = items.len() - take;
        let batch = items.drain(at..).collect();
        self.publish_len(&items);
        batch
    }

    fn drain_all(&self) -> Vec<T> {
        let mut items = self.items.lock();
        let drained = std::mem::take(&mut *items);
        self.publish_len(&items);
        drained.into_iter().collect()
    }

    fn batch_shell(&self) -> Vec<T> {
        self.shells.take().unwrap_or_default()
    }

    fn remove_up_to_into(&self, n: usize, out: &mut Vec<T>) {
        let mut items = self.items.lock();
        let take = n.min(items.len());
        if take == 0 {
            return;
        }
        // Drain from the front — the cold end, like `steal_half` — straight
        // into the caller's container under one lock acquisition: the lane
        // sweep's per-call path, where an intermediate batch would shed the
        // shared shell's capacity on every hop.
        out.extend(items.drain(..take));
        self.publish_len(&items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ops_are_lifo() {
        let seg = VecSegment::new();
        for i in 0..5 {
            seg.add(i);
        }
        assert_eq!(seg.try_remove(), Some(4));
        assert_eq!(seg.try_remove(), Some(3));
    }

    #[test]
    fn steal_takes_oldest() {
        let seg = VecSegment::new();
        for i in 0..6 {
            seg.add(i);
        }
        assert_eq!(seg.steal_half(), vec![0, 1, 2]);
        assert_eq!(seg.try_remove(), Some(5), "owner's hot end untouched");
    }

    #[test]
    fn steal_then_refill_conserves() {
        let a = VecSegment::new();
        let b = VecSegment::new();
        for i in 0..100 {
            a.add(i);
        }
        // Simulate the pool's two-phase steal: drain victim, then refill own.
        let batch = a.steal_half();
        b.add_bulk(batch);
        assert_eq!(a.len() + b.len(), 100);
        assert_eq!(b.len(), 50);
    }

    #[test]
    fn refill_recycles_the_shell() {
        let family = <VecSegment<u32> as Segment>::new_family(2);
        for i in 0..40 {
            family[0].add(i);
        }
        let batch = family[0].steal_half();
        let cap = batch.capacity();
        assert!(cap >= 20);
        family[1].add_bulk(batch);
        // The next steal anywhere in the family reuses that very shell.
        let again = family[1].steal_half();
        assert_eq!(again.capacity(), cap, "shell came back from the cache");
        assert_eq!(again.len(), 10);
    }

    #[test]
    fn len_reads_without_the_lock() {
        let seg = VecSegment::new();
        seg.add(1);
        seg.add(2);
        // The occupancy mirror must answer even while the mutex is held.
        let _lock = seg.items.lock();
        assert_eq!(seg.len(), 2);
        assert!(!seg.is_empty());
    }

    #[test]
    fn empty_steal_is_empty() {
        let seg = VecSegment::<u8>::new();
        assert!(seg.steal_half().is_empty());
    }

    #[test]
    fn add_bulk_of_nothing_is_noop() {
        let seg = VecSegment::<u8>::new();
        seg.add_bulk(Vec::new());
        assert!(seg.is_empty());
    }
}
