//! Pool segments: the per-processor local component of a concurrent pool.
//!
//! Manber's pool partitions its elements into one segment per processor;
//! each process adds to and removes from its own segment, and *steals
//! roughly half* of a remote segment when its own runs dry.
//!
//! Two families are provided:
//!
//! * **Counting segments** ([`LockedCounter`], [`AtomicCounter`]) store only
//!   the number of elements. This is the simplification §3.2 of Kotz &
//!   Ellis (1989) adopts for measurement: "we simplified the segments,
//!   representing them as a single counter that is atomically added to,
//!   subtracted from, or split in half", which "minimizes the time involved
//!   in segment operations, allowing the search time to dominate".
//! * **Element segments** ([`VecSegment`], [`BlockSegment`],
//!   [`LfSegment`]) store real values, for applications (the paper's
//!   tic-tac-toe study stores game positions). [`LfSegment`] is fully
//!   lock-free: mutations coordinate through an atomic occupancy counter
//!   and the vendored MPMC queue, never a mutex.
//!
//! A third, composite shape: [`LaneSegment`] shards one logical segment
//! across `K` inner segments ("lanes") so concurrent owners spread over
//! independent locks instead of serializing on one.
//!
//! # The steal rule
//!
//! [`Segment::steal_half`] implements the paper's rule: take
//! ⌈n/2⌉ elements, which for `n == 1` degenerates to "that element is taken
//! immediately". The victim keeps ⌊n/2⌋.
//!
//! # The transfer currency
//!
//! Batch-moving operations are typed over the segment's associated
//! [`Batch`](Segment::Batch), a [`TransferBatch`], so each representation
//! transfers in its native currency: counting segments move a bare
//! [`CountBatch`](crate::transfer::CountBatch), [`VecSegment`] a plain
//! vector, and [`BlockSegment`] a [`BlockBatch`] of whole blocks — pointer
//! moves, no flattening. See [`transfer`](crate::transfer) for the design
//! and for the pooled free lists that make the steady-state transfer paths
//! allocation-free.

mod block;
mod counting;
mod lane;
mod lf;
mod vec;

pub use block::{BlockBatch, BlockSegment};
pub use counting::{AtomicCounter, LockedCounter};
pub use lane::LaneSegment;
pub use lf::LfSegment;
pub use vec::VecSegment;

use crate::transfer::TransferBatch;

/// A single pool segment.
///
/// All methods take `&self`: segments are internally synchronized so that a
/// remote thief and the local owner can race safely. Implementations must
/// never hold an internal lock while calling user code.
///
/// # Consistency
///
/// `len` is a snapshot: by the time the caller inspects the value another
/// process may have changed the segment. The pool's algorithms only use it
/// as a hint (probing emptiness) and for instrumentation.
///
/// Because the search engine now consults that hint *before* draining a
/// victim — an `is_empty` answer skips the victim's lock entirely —
/// implementations should make `len`/`is_empty` cheap and non-blocking.
/// Every in-tree segment answers from an atomic occupancy counter for
/// exactly this reason; how that counter relates to the elements varies
/// by representation. For the mutex-based segments it is a *mirror*,
/// written under the lock after each mutation. For [`LfSegment`] there is
/// no lock to mirror: the counter is the *primary* bookkeeping — removal
/// paths reserve elements by CAS-decrementing it before touching the
/// backing queue — and for [`LaneSegment`] the answer is the sum of its
/// lanes' counters. A third-party segment whose `len` takes its internal
/// lock stays *correct* (the hint is re-validated by `steal_half` under
/// the lock), it just forfeits the empty-probe fast path; one whose `len`
/// over-reports emptiness would make probes skip real elements, which the
/// contract forbids — the hint may lag a racing add, but must reflect
/// every mutation this segment has completed. See the README's
/// "lock-free internals" section for the migration note.
///
/// # Implementing the trait
///
/// Simple segments set `type Batch = Vec<Self::Item>` (the
/// [`TransferBatch`] impl for `Vec` is the compatibility shim — method
/// bodies that already produce and consume vectors keep compiling
/// unchanged) and take the provided [`remove_up_to`](Self::remove_up_to) /
/// [`drain_all`](Self::drain_all) defaults. Representations with a cheaper
/// native currency define their own batch type, as [`BlockSegment`] does.
pub trait Segment: Send + Sync + 'static {
    /// The element type stored in the segment.
    ///
    /// Counting segments use `()`: the elements are indistinguishable, so
    /// their transfers carry only a count.
    type Item: Send + 'static;

    /// The currency of batch transfers: what a steal hands over, a refill
    /// deposits, and a batched remove returns.
    ///
    /// Use `Vec<Self::Item>` unless the representation can move elements
    /// more cheaply in bulk ([`BlockSegment`] moves whole blocks, counting
    /// segments move a bare count).
    type Batch: TransferBatch<Item = Self::Item>;

    /// Creates an empty segment.
    fn new() -> Self
    where
        Self: Sized;

    /// Creates the `count` segments of one pool.
    ///
    /// Segments created together may share pooled resources — the in-tree
    /// element segments share one per-pool free list of recycled blocks and
    /// batch shells ([`transfer`](crate::transfer)), so a block freed by a
    /// consumer's segment refills a producer's without touching the
    /// allocator. The default builds `count` independent segments with
    /// [`new`](Self::new), which keeps third-party implementations
    /// compiling (and correct — sharing is an optimization, never a
    /// semantic requirement).
    fn new_family(count: usize) -> Vec<Self>
    where
        Self: Sized,
    {
        (0..count).map(|_| Self::new()).collect()
    }

    /// Adds one element to the segment.
    fn add(&self, item: Self::Item);

    /// Removes an arbitrary element, or `None` if the segment is empty.
    fn try_remove(&self) -> Option<Self::Item>;

    /// Number of elements currently in the segment (snapshot).
    fn len(&self) -> usize;

    /// Whether the segment is currently empty (snapshot).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomically removes ⌈n/2⌉ of the `n` elements present and returns
    /// them; returns an empty batch if the segment was empty.
    ///
    /// This is the thief side of the steal protocol. The batch is handed
    /// back by value so the thief can move it into its own segment without
    /// ever holding two segment locks at once (deadlock freedom by
    /// construction).
    fn steal_half(&self) -> Self::Batch;

    /// Adds a batch of elements (the thief refilling its own segment).
    ///
    /// Implementations should accept the batch in its native currency —
    /// [`BlockSegment`] splices whole blocks into its own list — and
    /// recycle the batch's container through the pool's free lists where
    /// one exists.
    fn add_bulk(&self, batch: Self::Batch);

    /// Adds a batch of elements supplied as a plain vector (the frontends'
    /// `add_batch`).
    ///
    /// The default converts through
    /// [`TransferBatch::from_vec`] and delegates to
    /// [`add_bulk`](Self::add_bulk); [`BlockSegment`] overrides it to
    /// chunk the elements straight into recycled blocks under its lock,
    /// skipping the intermediate batch's fresh allocations.
    fn add_bulk_vec(&self, items: Vec<Self::Item>) {
        self.add_bulk(Self::Batch::from_vec(items));
    }

    /// Removes up to `n` arbitrary elements in one batch.
    ///
    /// This is the owner side of the batched remove
    /// ([`PoolOps::try_remove_batch`](crate::PoolOps::try_remove_batch)):
    /// implementations take their internal lock **once** for the whole
    /// batch. The default implementation is a per-element
    /// [`try_remove`](Self::try_remove) loop, provided so third-party
    /// segments keep compiling; every in-tree segment overrides it.
    fn remove_up_to(&self, n: usize) -> Self::Batch {
        let mut out = Self::Batch::empty();
        while out.len() < n {
            match self.try_remove() {
                Some(item) => out.put_one(item),
                None => break,
            }
        }
        out
    }

    /// Removes every element currently present, in one batch.
    ///
    /// Like [`remove_up_to`](Self::remove_up_to), implementations take the
    /// lock once; the default loops until the segment reports empty.
    fn drain_all(&self) -> Self::Batch {
        self.remove_up_to(usize::MAX)
    }

    /// An empty batch container suitable for filling incrementally, drawn
    /// from the segment's recycled-container cache when it keeps one.
    ///
    /// Composite segments ([`LaneSegment`]) sweep several inner segments
    /// per steal; starting from one recycled shell and filling it via
    /// [`remove_up_to_into`](Self::remove_up_to_into) keeps that sweep on
    /// the allocation-free steady-state path (a per-lane batch would drop
    /// each donor shell's capacity on append). The default returns
    /// [`TransferBatch::empty`], which is always correct — a third-party
    /// segment that ignores this hook merely forfeits shell reuse.
    fn batch_shell(&self) -> Self::Batch {
        Self::Batch::empty()
    }

    /// Removes up to `n` arbitrary elements, appending them to `out`.
    ///
    /// The sweep-side counterpart of [`remove_up_to`](Self::remove_up_to):
    /// callers that gather one transfer from several segments pass the
    /// same container through every call. The default routes through
    /// `remove_up_to` and [`TransferBatch::append`]; segments with a
    /// container cache override it to drain straight into `out` under one
    /// lock acquisition, so no intermediate batch (and no donor capacity)
    /// is created or lost.
    fn remove_up_to_into(&self, n: usize, out: &mut Self::Batch) {
        out.append(self.remove_up_to(n));
    }
}

/// Number of elements a thief takes from a segment of length `n`: ⌈n/2⌉.
///
/// Exposed so tests and analytical models can share the exact rule.
///
/// ```
/// use cpool::segment::steal_count;
/// assert_eq!(steal_count(0), 0);
/// assert_eq!(steal_count(1), 1); // "taken immediately"
/// assert_eq!(steal_count(2), 1);
/// assert_eq!(steal_count(9), 5);
/// ```
pub fn steal_count(n: usize) -> usize {
    n - n / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_count_is_ceil_half() {
        for n in 0..1000 {
            assert_eq!(steal_count(n), n.div_ceil(2));
        }
    }

    #[test]
    fn steal_count_leaves_floor_half() {
        for n in 0..1000 {
            assert_eq!(n - steal_count(n), n / 2);
        }
    }

    /// Generic contract test run against every segment implementation,
    /// exercised purely through the batch-typed trait surface.
    fn check_contract<S: Segment<Item = ()>>() {
        let seg = S::new();
        assert!(seg.is_empty());
        assert_eq!(seg.len(), 0);
        assert!(seg.try_remove().is_none());
        assert!(seg.steal_half().is_empty());

        for _ in 0..10 {
            seg.add(());
        }
        assert_eq!(seg.len(), 10);
        assert!(!seg.is_empty());

        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 5);

        seg.add_bulk(stolen);
        assert_eq!(seg.len(), 10);

        let mut removed = 0;
        while seg.try_remove().is_some() {
            removed += 1;
        }
        assert_eq!(removed, 10);
        assert!(seg.is_empty());

        // Batch removal contract: bounded take, then a full drain.
        seg.add_bulk(S::Batch::from_vec(vec![(); 7]));
        assert_eq!(seg.remove_up_to(3).len(), 3);
        assert_eq!(seg.remove_up_to(100).len(), 4, "remove_up_to is bounded by occupancy");
        assert!(seg.remove_up_to(5).is_empty());
        seg.add_bulk(S::Batch::from_vec(vec![(); 6]));
        assert_eq!(seg.drain_all().len(), 6);
        assert!(seg.is_empty());
        assert!(seg.drain_all().is_empty());
    }

    #[test]
    fn locked_counter_contract() {
        check_contract::<LockedCounter>();
    }

    #[test]
    fn atomic_counter_contract() {
        check_contract::<AtomicCounter>();
    }

    fn check_element_contract<S: Segment<Item = u32>>() {
        let seg = S::new();
        for i in 0..9u32 {
            seg.add(i);
        }
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 4);
        // Between them, the stolen batch and the residue hold exactly the
        // original elements (the pool is unordered but must conserve items).
        let mut all: Vec<u32> = stolen.into_vec();
        while let Some(x) = seg.try_remove() {
            all.push(x);
        }
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());

        // Batched removal conserves values exactly like per-element ops.
        for i in 10..20u32 {
            seg.add(i);
        }
        let batched = seg.remove_up_to(4);
        assert_eq!(batched.len(), 4);
        let mut batched = batched.into_vec();
        batched.extend(seg.drain_all().into_vec());
        batched.sort_unstable();
        assert_eq!(batched, (10..20).collect::<Vec<_>>());
        assert!(seg.is_empty());
    }

    #[test]
    fn vec_segment_contract() {
        check_element_contract::<VecSegment<u32>>();
    }

    #[test]
    fn block_segment_contract() {
        check_element_contract::<BlockSegment<u32>>();
    }

    #[test]
    fn lf_segment_contract() {
        check_element_contract::<LfSegment<u32>>();
    }

    #[test]
    fn lane_over_vec_contract() {
        check_element_contract::<LaneSegment<VecSegment<u32>, 4>>();
    }

    #[test]
    fn lane_over_block_contract() {
        check_element_contract::<LaneSegment<BlockSegment<u32>, 2>>();
    }

    #[test]
    fn lane_over_lf_contract() {
        check_element_contract::<LaneSegment<LfSegment<u32>, 3>>();
    }

    #[test]
    fn lane_over_counter_contract() {
        check_contract::<LaneSegment<LockedCounter, 2>>();
        check_contract::<LaneSegment<AtomicCounter, 4>>();
    }

    #[test]
    fn batch_shell_and_remove_into_defaults() {
        // The defaulted hooks must compose for a segment that overrides
        // neither (the counting segments): a sweep through the defaults
        // conserves elements exactly.
        let seg = AtomicCounter::new();
        for _ in 0..10 {
            seg.add(());
        }
        let mut out = seg.batch_shell();
        assert!(out.is_empty());
        seg.remove_up_to_into(4, &mut out);
        assert_eq!(out.len(), 4);
        seg.remove_up_to_into(100, &mut out);
        assert_eq!(out.len(), 10, "second sweep appends, bounded by occupancy");
        assert!(seg.is_empty());
    }

    #[test]
    fn single_element_taken_immediately() {
        let seg = VecSegment::<u32>::new();
        seg.add(42);
        let stolen = seg.steal_half();
        assert_eq!(stolen, vec![42], "a lone element is taken outright");
        assert!(seg.is_empty());
    }

    #[test]
    fn new_family_defaults_to_independent_segments() {
        // The default hook just builds `count` fresh segments.
        let family = <LockedCounter as Segment>::new_family(3);
        assert_eq!(family.len(), 3);
        family[0].add(());
        assert_eq!(family[0].len(), 1);
        assert_eq!(family[1].len(), 0);
    }
}
