//! Pool segments: the per-processor local component of a concurrent pool.
//!
//! Manber's pool partitions its elements into one segment per processor;
//! each process adds to and removes from its own segment, and *steals
//! roughly half* of a remote segment when its own runs dry.
//!
//! Two families are provided:
//!
//! * **Counting segments** ([`LockedCounter`], [`AtomicCounter`]) store only
//!   the number of elements. This is the simplification §3.2 of Kotz &
//!   Ellis (1989) adopts for measurement: "we simplified the segments,
//!   representing them as a single counter that is atomically added to,
//!   subtracted from, or split in half", which "minimizes the time involved
//!   in segment operations, allowing the search time to dominate".
//! * **Element segments** ([`VecSegment`], [`BlockSegment`]) store real
//!   values, for applications (the paper's tic-tac-toe study stores game
//!   positions).
//!
//! # The steal rule
//!
//! [`Segment::steal_half`] implements the paper's rule: take
//! ⌈n/2⌉ elements, which for `n == 1` degenerates to "that element is taken
//! immediately". The victim keeps ⌊n/2⌋.

mod block;
mod counting;
mod vec;

pub use block::BlockSegment;
pub use counting::{AtomicCounter, LockedCounter};
pub use vec::VecSegment;

/// A single pool segment.
///
/// All methods take `&self`: segments are internally synchronized so that a
/// remote thief and the local owner can race safely. Implementations must
/// never hold an internal lock while calling user code.
///
/// # Consistency
///
/// `len` is a snapshot: by the time the caller inspects the value another
/// process may have changed the segment. The pool's algorithms only use it
/// as a hint (probing emptiness) and for instrumentation.
pub trait Segment: Send + Sync + 'static {
    /// The element type stored in the segment.
    ///
    /// Counting segments use `()`: a zero-sized item makes `Vec<Item>`
    /// allocation-free, so the unified batch-based steal interface costs
    /// nothing for the counter representation.
    type Item: Send + 'static;

    /// Creates an empty segment.
    fn new() -> Self
    where
        Self: Sized;

    /// Adds one element to the segment.
    fn add(&self, item: Self::Item);

    /// Removes an arbitrary element, or `None` if the segment is empty.
    fn try_remove(&self) -> Option<Self::Item>;

    /// Number of elements currently in the segment (snapshot).
    fn len(&self) -> usize;

    /// Whether the segment is currently empty (snapshot).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomically removes ⌈n/2⌉ of the `n` elements present and returns
    /// them; returns an empty batch if the segment was empty.
    ///
    /// This is the thief side of the steal protocol. The batch is handed
    /// back by value so the thief can move it into its own segment without
    /// ever holding two segment locks at once (deadlock freedom by
    /// construction).
    fn steal_half(&self) -> Vec<Self::Item>;

    /// Adds a batch of elements (the thief refilling its own segment).
    fn add_bulk(&self, items: Vec<Self::Item>);

    /// Removes up to `n` arbitrary elements in one batch.
    ///
    /// This is the owner side of the batched remove
    /// ([`PoolOps::try_remove_batch`](crate::PoolOps::try_remove_batch)):
    /// implementations take their internal lock **once** for the whole
    /// batch. The default implementation is a per-element
    /// [`try_remove`](Self::try_remove) loop, provided so third-party
    /// segments keep compiling; every in-tree segment overrides it.
    fn remove_up_to(&self, n: usize) -> Vec<Self::Item> {
        let mut out = Vec::new();
        while out.len() < n {
            match self.try_remove() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out
    }

    /// Removes every element currently present, in one batch.
    ///
    /// Like [`remove_up_to`](Self::remove_up_to), implementations take the
    /// lock once; the default loops until the segment reports empty.
    fn drain_all(&self) -> Vec<Self::Item> {
        self.remove_up_to(usize::MAX)
    }
}

/// Number of elements a thief takes from a segment of length `n`: ⌈n/2⌉.
///
/// Exposed so tests and analytical models can share the exact rule.
///
/// ```
/// use cpool::segment::steal_count;
/// assert_eq!(steal_count(0), 0);
/// assert_eq!(steal_count(1), 1); // "taken immediately"
/// assert_eq!(steal_count(2), 1);
/// assert_eq!(steal_count(9), 5);
/// ```
pub fn steal_count(n: usize) -> usize {
    n - n / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_count_is_ceil_half() {
        for n in 0..1000 {
            assert_eq!(steal_count(n), n.div_ceil(2));
        }
    }

    #[test]
    fn steal_count_leaves_floor_half() {
        for n in 0..1000 {
            assert_eq!(n - steal_count(n), n / 2);
        }
    }

    /// Generic contract test run against every segment implementation.
    fn check_contract<S: Segment<Item = ()>>() {
        let seg = S::new();
        assert!(seg.is_empty());
        assert_eq!(seg.len(), 0);
        assert!(seg.try_remove().is_none());
        assert!(seg.steal_half().is_empty());

        for _ in 0..10 {
            seg.add(());
        }
        assert_eq!(seg.len(), 10);
        assert!(!seg.is_empty());

        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 5);

        seg.add_bulk(stolen);
        assert_eq!(seg.len(), 10);

        let mut removed = 0;
        while seg.try_remove().is_some() {
            removed += 1;
        }
        assert_eq!(removed, 10);
        assert!(seg.is_empty());

        // Batch removal contract: bounded take, then a full drain.
        seg.add_bulk(vec![(); 7]);
        assert_eq!(seg.remove_up_to(3).len(), 3);
        assert_eq!(seg.remove_up_to(100).len(), 4, "remove_up_to is bounded by occupancy");
        assert!(seg.remove_up_to(5).is_empty());
        seg.add_bulk(vec![(); 6]);
        assert_eq!(seg.drain_all().len(), 6);
        assert!(seg.is_empty());
        assert!(seg.drain_all().is_empty());
    }

    #[test]
    fn locked_counter_contract() {
        check_contract::<LockedCounter>();
    }

    #[test]
    fn atomic_counter_contract() {
        check_contract::<AtomicCounter>();
    }

    fn check_element_contract<S: Segment<Item = u32>>() {
        let seg = S::new();
        for i in 0..9u32 {
            seg.add(i);
        }
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 4);
        // Between them, the stolen batch and the residue hold exactly the
        // original elements (the pool is unordered but must conserve items).
        let mut all: Vec<u32> = stolen;
        while let Some(x) = seg.try_remove() {
            all.push(x);
        }
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());

        // Batched removal conserves values exactly like per-element ops.
        for i in 10..20u32 {
            seg.add(i);
        }
        let mut batched = seg.remove_up_to(4);
        assert_eq!(batched.len(), 4);
        batched.extend(seg.drain_all());
        batched.sort_unstable();
        assert_eq!(batched, (10..20).collect::<Vec<_>>());
        assert!(seg.is_empty());
    }

    #[test]
    fn vec_segment_contract() {
        check_element_contract::<VecSegment<u32>>();
    }

    #[test]
    fn block_segment_contract() {
        check_element_contract::<BlockSegment<u32>>();
    }

    #[test]
    fn single_element_taken_immediately() {
        let seg = VecSegment::<u32>::new();
        seg.add(42);
        let stolen = seg.steal_half();
        assert_eq!(stolen, vec![42], "a lone element is taken outright");
        assert!(seg.is_empty());
    }
}
