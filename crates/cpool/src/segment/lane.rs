//! Sharded segment adapter: one logical segment spread across K lanes.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use super::{steal_count, Segment};
use crate::transfer::TransferBatch;

/// Source of fresh thread-affinity hints: each thread draws one, once.
static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's affinity hint (`usize::MAX` = not yet drawn). The raw
    /// value is taken modulo a segment's lane count, so one hint serves
    /// every `LaneSegment` the thread touches.
    static HOME: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's affinity hint, drawn on first use.
fn affinity() -> usize {
    HOME.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            v = NEXT_HOME.fetch_add(1, Ordering::Relaxed);
            h.set(v);
        }
        v
    })
}

/// One lane: an inner segment plus an advisory contention counter, padded
/// so neighboring lanes' hot words never share a cache line.
#[repr(align(64))]
struct Lane<S> {
    seg: S,
    /// Number of threads currently operating on this lane. Advisory only —
    /// the inner segment is internally synchronized, so entering a "busy"
    /// lane is always *correct*; the counter exists so local operations
    /// can prefer an idle lane instead of queueing on a hot one. This is
    /// the generic analogue of `try_lock` for an inner segment whose lock
    /// (if any) is private.
    active: AtomicUsize,
}

impl<S> Lane<S> {
    fn new(seg: S) -> Self {
        Lane { seg, active: AtomicUsize::new(0) }
    }

    /// Claims the lane if no other thread is currently inside it.
    fn try_enter(&self) -> bool {
        if self.active.fetch_add(1, Ordering::AcqRel) == 0 {
            true
        } else {
            self.active.fetch_sub(1, Ordering::AcqRel);
            false
        }
    }

    /// Claims the lane unconditionally (the contended fallback).
    fn enter(&self) {
        self.active.fetch_add(1, Ordering::AcqRel);
    }

    fn exit(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A segment sharded across `K` independently synchronized lanes.
///
/// PR 6's profile said the remaining serialization is the one mutex every
/// element segment guards its representation with: all of a segment's
/// owners and thieves queue on it. `LaneSegment<S, K>` keeps the inner
/// representation `S` untouched and spreads one *logical* segment over
/// `K` instances of it, so concurrent operations land on independent
/// locks — the sharding half of the simpledb/Blelloch–Wei recipe, applied
/// inside a segment.
///
/// # Lane selection
///
/// Local operations (`add`, `try_remove`, batch deposits) start at the
/// calling thread's *home lane* — a per-thread hint taken modulo `K` — and
/// rotate to the next lane when the preferred one is busy (tracked by an
/// advisory per-lane contention counter). If every lane is busy the
/// operation proceeds on the home lane
/// anyway: lanes are internally synchronized, so the counter only shapes
/// *preference*, never correctness. Removal paths additionally skip lanes
/// whose lock-free occupancy probe says empty.
///
/// # Victim-side sweep
///
/// [`steal_half`](Segment::steal_half) computes the take from the summed
/// occupancy snapshot (⌈n/2⌉ over the whole logical segment), then fills
/// one recycled container ([`Segment::batch_shell`] +
/// [`Segment::remove_up_to_into`]) by sweeping lanes — uncontended lanes
/// first, so a thief harvests idle lanes without ever queueing behind the
/// owner's hot lane; only if the uncontended pass cannot meet the quota
/// does it wait on busy lanes. Concurrent mutation can make the realized
/// take differ from the snapshot's ⌈n/2⌉ (the split is atomic per lane,
/// not across lanes); element conservation is exact regardless.
///
/// `len` sums the lanes' lock-free occupancy counters, so the emptiness
/// contract is inherited: the sum may lag racing adds but never counts an
/// element that is not (or no longer) present.
///
/// ```
/// use cpool::segment::{LaneSegment, Segment, VecSegment};
/// let seg: LaneSegment<VecSegment<u32>, 4> = LaneSegment::new();
/// seg.add(7);
/// assert_eq!(seg.len(), 1);
/// assert_eq!(seg.try_remove(), Some(7));
/// ```
pub struct LaneSegment<S, const K: usize = 4> {
    lanes: [Lane<S>; K],
}

impl<S: Segment, const K: usize> LaneSegment<S, K> {
    fn from_segments(segs: Vec<S>) -> Self {
        assert!(K > 0, "LaneSegment requires at least one lane");
        assert_eq!(segs.len(), K);
        let mut segs = segs.into_iter();
        LaneSegment { lanes: std::array::from_fn(|_| Lane::new(segs.next().unwrap())) }
    }

    /// The calling thread's home lane for this segment.
    fn home(&self) -> usize {
        affinity() % K
    }

    /// Enters a lane for a mutation: the first idle lane in rotation order
    /// from home, or the home lane unconditionally when all are busy.
    /// Returns its index; the caller must `exit` it afterwards.
    fn enter_lane(&self) -> usize {
        let home = self.home();
        for i in 0..K {
            let idx = (home + i) % K;
            if self.lanes[idx].try_enter() {
                return idx;
            }
        }
        self.lanes[home].enter();
        home
    }

    /// Sweeps lanes appending into `out` until `target` elements were
    /// gathered; `contended` selects the fallback pass that no longer
    /// skips busy lanes.
    fn sweep_into(&self, target: usize, out: &mut S::Batch, contended: bool) {
        let home = self.home();
        for i in 0..K {
            if out.len() >= target {
                return;
            }
            let lane = &self.lanes[(home + i) % K];
            if lane.seg.is_empty() {
                continue;
            }
            if contended {
                lane.enter();
            } else if !lane.try_enter() {
                continue;
            }
            lane.seg.remove_up_to_into(target - out.len(), out);
            lane.exit();
        }
    }
}

impl<S: Segment, const K: usize> Segment for LaneSegment<S, K> {
    type Item = S::Item;
    /// Transfers stay in the inner segment's native currency: a steal from
    /// a lane-over-block segment still moves whole blocks.
    type Batch = S::Batch;

    fn new() -> Self {
        // A lone segment's lanes still share pooled resources with each
        // other (they are one `new_family` of the inner type).
        Self::from_segments(S::new_family(K))
    }

    /// One inner family spans the whole pool — `count × K` inner segments
    /// sharing one set of free lists — so a shell or block recycled by any
    /// lane of any segment refills any other.
    fn new_family(count: usize) -> Vec<Self> {
        assert!(K > 0, "LaneSegment requires at least one lane");
        let mut inner = S::new_family(count.max(1) * K).into_iter();
        (0..count.max(1)).map(|_| Self::from_segments(inner.by_ref().take(K).collect())).collect()
    }

    fn add(&self, item: S::Item) {
        let idx = self.enter_lane();
        self.lanes[idx].seg.add(item);
        self.lanes[idx].exit();
    }

    fn try_remove(&self) -> Option<S::Item> {
        let home = self.home();
        // Uncontended pass: idle, non-empty lanes in rotation order.
        for i in 0..K {
            let lane = &self.lanes[(home + i) % K];
            if lane.seg.is_empty() || !lane.try_enter() {
                continue;
            }
            let got = lane.seg.try_remove();
            lane.exit();
            if got.is_some() {
                return got;
            }
        }
        // Fallback pass: a present element must never be invisible just
        // because its lane is busy, so retry every non-empty lane and
        // accept the wait.
        for i in 0..K {
            let lane = &self.lanes[(home + i) % K];
            if lane.seg.is_empty() {
                continue;
            }
            lane.enter();
            let got = lane.seg.try_remove();
            lane.exit();
            if got.is_some() {
                return got;
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.lanes.iter().map(|lane| lane.seg.len()).sum()
    }

    fn steal_half(&self) -> S::Batch {
        let target = steal_count(self.len());
        if target == 0 {
            return S::Batch::empty();
        }
        let mut out = self.lanes[0].seg.batch_shell();
        self.sweep_into(target, &mut out, false);
        if out.len() < target {
            self.sweep_into(target, &mut out, true);
        }
        out
    }

    fn add_bulk(&self, batch: S::Batch) {
        // The whole batch lands in one lane so the deposit is a single
        // native-currency splice (and the container recycles through the
        // inner segment's cache as usual).
        let idx = self.enter_lane();
        self.lanes[idx].seg.add_bulk(batch);
        self.lanes[idx].exit();
    }

    fn add_bulk_vec(&self, items: Vec<S::Item>) {
        // Delegate so inner representations keep their override (the block
        // segment chunks the elements straight into recycled blocks).
        let idx = self.enter_lane();
        self.lanes[idx].seg.add_bulk_vec(items);
        self.lanes[idx].exit();
    }

    fn remove_up_to(&self, n: usize) -> S::Batch {
        // The result leaves the pool with the caller, so start from a
        // plain container, not a cached shell.
        let mut out = S::Batch::empty();
        self.sweep_into(n, &mut out, false);
        if out.len() < n {
            self.sweep_into(n, &mut out, true);
        }
        out
    }

    fn drain_all(&self) -> S::Batch {
        let mut out = S::Batch::empty();
        for lane in &self.lanes {
            lane.enter();
            out.append(lane.seg.drain_all());
            lane.exit();
        }
        out
    }

    fn batch_shell(&self) -> S::Batch {
        self.lanes[0].seg.batch_shell()
    }

    fn remove_up_to_into(&self, n: usize, out: &mut S::Batch) {
        let before = out.len();
        self.sweep_into(before + n, out, false);
        if out.len() < before + n {
            self.sweep_into(before + n, out, true);
        }
    }
}

impl<S: Segment, const K: usize> fmt::Debug for LaneSegment<S, K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaneSegment")
            .field("lanes", &K)
            .field("len", &self.len())
            .field(
                "active",
                &self.lanes.iter().map(|l| l.active.load(Ordering::Relaxed)).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{BlockSegment, VecSegment};
    use std::thread;

    #[test]
    fn add_remove_round_trips() {
        let seg: LaneSegment<VecSegment<u32>, 4> = LaneSegment::new();
        for i in 0..20 {
            seg.add(i);
        }
        assert_eq!(seg.len(), 20);
        let mut got: Vec<u32> = std::iter::from_fn(|| seg.try_remove()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert!(seg.is_empty());
    }

    #[test]
    fn elements_visible_from_any_affinity() {
        // The empty-probe regression: whatever lane the producer's affinity
        // put the elements in, every other thread (with an arbitrary home
        // lane of its own) must see a nonzero len and be able to remove
        // and steal them — the sweep may never skip a lane with elements.
        let seg: LaneSegment<VecSegment<u64>, 4> = LaneSegment::new();
        for i in 0..8 {
            seg.add(i);
        }
        // Each spawned thread draws a fresh affinity hint, so their home
        // lanes differ from the producer's.
        thread::scope(|s| {
            for _ in 0..3 {
                let seg = &seg;
                s.spawn(move || {
                    assert!(!seg.is_empty(), "foreign threads must see the elements");
                    assert!(seg.try_remove().is_some(), "sweep must find a busy-free lane");
                });
            }
        });
        assert_eq!(seg.len(), 5);
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 3, "steal takes ceil-half of the summed occupancy");
    }

    #[test]
    fn steal_sweeps_across_lanes() {
        let seg: LaneSegment<VecSegment<u32>, 4> = LaneSegment::new();
        // Scatter elements into every lane by adding from distinct threads.
        thread::scope(|s| {
            for t in 0..4 {
                let seg = &seg;
                s.spawn(move || {
                    for i in 0..10 {
                        seg.add(t * 10 + i);
                    }
                });
            }
        });
        assert_eq!(seg.len(), 40);
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 20, "sweep gathers the quota across lanes");
        assert_eq!(seg.len(), 20);
    }

    #[test]
    fn lane_over_block_preserves_native_currency() {
        let seg: LaneSegment<BlockSegment<u32>, 2> = LaneSegment::new();
        for i in 0..64 {
            seg.add(i);
        }
        let batch = seg.steal_half();
        assert_eq!(batch.len(), 32);
        let other: LaneSegment<BlockSegment<u32>, 2> = LaneSegment::new();
        other.add_bulk(batch);
        assert_eq!(other.len(), 32);
        let mut all = other.drain_all().into_vec();
        all.extend(seg.drain_all().into_vec());
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn single_lane_degenerates_to_inner() {
        let seg: LaneSegment<VecSegment<u32>, 1> = LaneSegment::new();
        for i in 0..6 {
            seg.add(i);
        }
        assert_eq!(seg.steal_half().len(), 3);
        assert_eq!(seg.remove_up_to(2).len(), 2);
        assert_eq!(seg.drain_all().len(), 1);
    }

    #[test]
    fn family_shares_inner_resources() {
        // 2 segments × 2 lanes = one inner family of 4: a shell stolen out
        // of segment 0 and deposited into segment 1 comes back from the
        // shared cache on segment 1's next steal.
        let family = <LaneSegment<VecSegment<u32>, 2> as Segment>::new_family(2);
        for i in 0..40 {
            family[0].add(i);
        }
        let batch = family[0].steal_half();
        let cap = batch.capacity();
        assert!(cap >= 20);
        family[1].add_bulk(batch);
        let again = family[1].steal_half();
        assert_eq!(again.capacity(), cap, "shell recycled across the family");
    }

    #[test]
    fn contended_lane_is_still_usable() {
        // Saturate every lane's advisory counter, then operate anyway: the
        // counter must shape preference, never block correctness.
        let seg: LaneSegment<VecSegment<u32>, 2> = LaneSegment::new();
        for lane in &seg.lanes {
            lane.enter();
        }
        seg.add(5);
        assert_eq!(seg.len(), 1);
        assert_eq!(seg.try_remove(), Some(5));
        seg.add(6);
        assert_eq!(seg.steal_half().len(), 1);
        for lane in &seg.lanes {
            lane.exit();
        }
    }
}
