//! Element segment organized as a list of fixed-size blocks.
//!
//! Manber (1986) describes a segment representation with O(1) add, remove,
//! and split for arbitrary elements. [`BlockSegment`] approximates it: the
//! segment is a deque of blocks of up to `B` elements, and a split hands
//! over whole blocks, touching O(n/B) block *pointers* instead of O(n)
//! elements.
//!
//! Since the transfer layer became batch-typed, that invariant holds **end
//! to end**: `steal_half` returns a [`BlockBatch`] of whole block handles,
//! the steal engine's two-phase probe moves the batch without opening it,
//! and `add_bulk` splices the blocks into the thief's own deque — pointer
//! moves the whole way, never an element copy. (Before the batch-typed
//! [`Segment::Batch`] boundary, every transfer was flattened into a
//! `Vec<Item>` at the trait edge, so splits moved block pointers only
//! *inside* the segment and every steal copied — and allocated for — all
//! ⌈n/2⌉ elements anyway.) The paper notes its measured experiments
//! eliminated "the block transfer of stolen elements between processes";
//! this segment keeps the transfer but makes it cheap.
//!
//! Containers are recycled at **bundle granularity** so the recycling
//! itself stays off the hot path: each segment keeps a small stash of
//! spare blocks *inside its own lock* (local add/remove churn costs no
//! extra synchronization at all), and the pool-wide [`BlockCache`] free
//! list — shared across a pool's segments via [`Segment::new_family`] —
//! moves whole *bundles* (a batch shell together with the spare blocks it
//! carries) in a single operation, however many blocks they hold. The
//! steady-state steal/refill cycle and the add/remove churn around it
//! therefore perform **zero heap allocations** (`tests/alloc_steal.rs`
//! asserts this with a counting allocator) while paying O(1) free-list
//! operations per *transfer*, not per block.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use super::{steal_count, Segment};
use crate::transfer::{FreeList, TransferBatch};

/// Default number of elements per block.
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// Most spare blocks a segment stashes under its own lock before flushing
/// them to the pool-wide cache as one bundle.
const SPARE_BLOCKS_MAX: usize = 8;

/// Most blocks one cached bundle retains (memory bound per bundle).
const BUNDLE_BLOCKS_MAX: usize = 32;

/// Bundles the pool-wide cache retains per segment of the family.
const CACHED_BUNDLES_PER_SEGMENT: usize = 4;

/// A pool-wide free list of **bundles**: deque shells carrying zero or
/// more spare (empty, capacity-bearing) blocks.
///
/// Shared by every [`BlockSegment`] of one pool (see
/// [`Segment::new_family`]). One `take`/`put` moves a whole bundle, so the
/// free-list cost of a transfer is O(1) regardless of how many blocks it
/// recycles; the per-block traffic happens inside each segment's private
/// stash, under the lock the operation already holds.
struct BlockCache<T> {
    bundles: FreeList<VecDeque<Vec<T>>>,
    block_size: usize,
}

impl<T> BlockCache<T> {
    fn new(block_size: usize, segments: usize) -> Self {
        BlockCache { bundles: FreeList::new(CACHED_BUNDLES_PER_SEGMENT * segments + 2), block_size }
    }

    /// An empty-or-spare-carrying bundle; `VecDeque::new()` (no
    /// allocation) when the cache is dry.
    fn take_bundle(&self) -> VecDeque<Vec<T>> {
        self.bundles.take().unwrap_or_default()
    }

    /// Returns a bundle of spent containers to the cache in one operation.
    ///
    /// Undersized blocks (an ad-hoc singleton, a small foreign chunk) are
    /// dropped rather than cached: a reissued block must hold a full
    /// `block_size` without reallocating, or the cache would poison every
    /// later add with a growth realloc.
    fn put_bundle(&self, mut bundle: VecDeque<Vec<T>>) {
        bundle.retain(|block| {
            debug_assert!(block.is_empty(), "only spent blocks are recycled");
            block.capacity() >= self.block_size
        });
        bundle.truncate(BUNDLE_BLOCKS_MAX);
        if bundle.capacity() > 0 {
            self.bundles.put(bundle);
        }
    }
}

impl<T> std::fmt::Debug for BlockCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache").field("bundles", &self.bundles).finish_non_exhaustive()
    }
}

/// A batch of whole blocks in transit between [`BlockSegment`]s.
///
/// The [`TransferBatch`] currency of the block segment: a steal moves
/// block *handles* into the batch and a refill splices them out, so an
/// n-element transfer with B-element blocks costs O(n/B) pointer moves and
/// zero element copies.
///
/// Batches minted by a segment stay tethered to the pool's block cache:
/// whatever containers remain when the batch drops — spent blocks a
/// consumer drained, the shell, a lone-element steal's block that never
/// saw a refill — go back as **one bundle** in a single free-list
/// operation.
///
/// ```
/// use cpool::prelude::*;
///
/// let victim = BlockSegment::with_block_size(4);
/// for i in 0..16 {
///     victim.add(i);
/// }
/// let batch = victim.steal_half(); // two whole blocks, by handle
/// assert_eq!(batch.len(), 8);
/// assert_eq!(batch.block_count(), 2);
/// ```
pub struct BlockBatch<T> {
    /// The front block, held inline: single-block batches minted by the
    /// `remove_up_to` fast paths (and ad-hoc `put_one`/`from_vec` batches)
    /// need no shell at all. Steals always carry a shell — its circulation
    /// is the return path for spent blocks.
    first: Option<Vec<T>>,
    /// Further blocks, in a (recycled) shell; empty for small transfers.
    /// Spent blocks are parked at the *front* (consumption runs back to
    /// front) until the whole batch is recycled.
    rest: VecDeque<Vec<T>>,
    /// Leading blocks of `rest` known to be spent/spare (parked there by
    /// [`take_one`]): consumption skips them without re-inspecting.
    parked: usize,
    len: usize,
    /// The minting pool's cache (`None` for caller-built batches).
    cache: Option<Arc<BlockCache<T>>>,
}

impl<T> BlockBatch<T> {
    /// Number of block handles the batch carries, spent ones included
    /// (diagnostic).
    pub fn block_count(&self) -> usize {
        usize::from(self.first.is_some()) + self.rest.len()
    }
}

impl<T> Drop for BlockBatch<T> {
    fn drop(&mut self) {
        let Some(cache) = self.cache.take() else { return };
        let mut bundle = std::mem::take(&mut self.rest);
        // Remaining elements have left the pool and drop here; every
        // block's capacity goes back to the cache as one bundle.
        for block in bundle.iter_mut() {
            block.clear();
        }
        if let Some(mut block) = self.first.take() {
            block.clear();
            bundle.push_back(block);
        }
        cache.put_bundle(bundle);
    }
}

impl<T> std::fmt::Debug for BlockBatch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockBatch")
            .field("len", &self.len)
            .field("blocks", &self.block_count())
            .finish()
    }
}

impl<T: Send + 'static> TransferBatch for BlockBatch<T> {
    type Item = T;

    fn empty() -> Self {
        BlockBatch { first: None, rest: VecDeque::new(), parked: 0, len: 0, cache: None }
    }

    fn take_one(&mut self) -> Option<T> {
        if self.len == 0 {
            return None; // only spent containers remain
        }
        // Consume `rest` back to front, skipping the parked (spent) prefix;
        // each block is parked at most once, so this is O(1) amortized.
        while self.rest.len() > self.parked {
            let back = self.rest.back_mut().expect("rest is longer than its parked prefix");
            if let Some(item) = back.pop() {
                self.len -= 1;
                return Some(item);
            }
            // A spent (or ridden-spare) block: park it at the front — it
            // leaves with the batch's final bundle.
            let spent = self.rest.pop_back().expect("back exists");
            self.rest.push_front(spent);
            self.parked += 1;
        }
        // Every block in `rest` is spent: the remaining elements are in
        // the inline `first` slot.
        let first = self.first.as_mut()?;
        let item = first.pop();
        debug_assert!(item.is_some(), "len > 0 guarantees an element");
        if item.is_some() {
            self.len -= 1;
        }
        item
    }

    fn len(&self) -> usize {
        self.len
    }

    fn put_one(&mut self, item: T) {
        self.len += 1;
        if self.rest.len() > self.parked {
            let back = self.rest.back_mut().expect("active back block");
            if back.len() < back.capacity() {
                back.push(item);
                return;
            }
        } else if let Some(first) = &mut self.first {
            if first.len() < first.capacity() {
                first.push(item);
                return;
            }
        } else {
            self.first = Some(vec![item]);
            return;
        }
        // The target block is at capacity: a fresh singleton beats
        // reallocating (and permanently oversizing) a full block.
        self.rest.push_back(vec![item]);
    }

    fn append(&mut self, mut other: Self) {
        self.len += other.len;
        other.len = 0;
        let incoming_first = other.first.take();
        let mut incoming_rest = std::mem::take(&mut other.rest);
        // `other`'s drop returns its shell (now empty) to the cache; its
        // blocks — spent ones included — ride along in `self` and leave
        // with `self`'s own recycling.
        for block in
            incoming_first.into_iter().chain(std::iter::from_fn(|| incoming_rest.pop_front()))
        {
            if block.is_empty() {
                self.rest.push_front(block);
                self.parked += 1;
            } else if self.first.is_none() && self.rest.is_empty() {
                self.first = Some(block);
            } else {
                self.rest.push_back(block);
            }
        }
        if let Some(cache) = &other.cache {
            cache.put_bundle(incoming_rest);
        }
        if self.cache.is_none() {
            self.cache = other.cache.take();
        }
    }

    fn from_vec(items: Vec<T>) -> Self {
        let len = items.len();
        let mut batch = BlockBatch::empty();
        batch.len = len;
        let mut items = items.into_iter();
        loop {
            let block: Vec<T> = items.by_ref().take(DEFAULT_BLOCK_SIZE).collect();
            if block.is_empty() {
                break;
            }
            if batch.first.is_none() {
                batch.first = Some(block);
            } else {
                batch.rest.push_back(block);
            }
        }
        batch
    }
}

/// A segment whose elements live in fixed-size blocks so that splits move
/// blocks, not elements.
///
/// Local `add`/`try_remove` work on the back block (LIFO). `steal_half`
/// prefers to hand over whole front blocks; only when the segment has a
/// single block does it fall back to splitting that block element-wise.
/// Transfers travel as [`BlockBatch`]es of block handles, and containers
/// recycle through the segment's private spare stash and the pool's shared
/// bundle cache (see the [module docs](crate::segment::BlockSegment)).
///
/// Blocks *built locally* hold at most [`block_size`](Self::block_size)
/// elements; blocks spliced in by `add_bulk` keep whatever geometry their
/// origin gave them (a pool's segments share one block size, so in
/// practice all blocks agree).
///
/// ```
/// use cpool::segment::{BlockSegment, Segment};
/// use cpool::transfer::TransferBatch;
/// let seg = BlockSegment::with_block_size(4);
/// for i in 0..32 {
///     seg.add(i);
/// }
/// let stolen = seg.steal_half();
/// assert_eq!(stolen.len(), 16);
/// assert_eq!(seg.len(), 16);
/// ```
#[derive(Debug)]
pub struct BlockSegment<T> {
    /// Immutable configuration, deliberately outside the mutex: readers
    /// (`block_size()`, the add fast path) must not take the segment lock
    /// for a value that never changes.
    block_size: usize,
    /// Occupancy, also outside the mutex (the PR that de-mutexed
    /// `block_size` left `len` behind the lock; this finishes the job):
    /// written (`Release`) only while `inner` is locked, read (`Acquire`)
    /// without the lock by `len`/`is_empty`, so search probes observe
    /// emptiness without contending with the owner.
    len: AtomicUsize,
    cache: Arc<BlockCache<T>>,
    inner: Mutex<Blocks<T>>,
}

#[derive(Debug)]
struct Blocks<T> {
    blocks: VecDeque<Vec<T>>,
    /// Spare empty blocks stashed under this segment's own lock: the
    /// add/remove churn recycles here for free, and only overflow (or a
    /// dry stash) touches the shared bundle cache.
    spares: VecDeque<Vec<T>>,
}

impl<T> BlockSegment<T> {
    /// Creates an empty segment with the given block size (and its own,
    /// unshared block cache — pools share one via [`Segment::new_family`]).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self::with_cache(block_size, Arc::new(BlockCache::new(block_size, 1)))
    }

    fn with_cache(block_size: usize, cache: Arc<BlockCache<T>>) -> Self {
        BlockSegment {
            block_size,
            len: AtomicUsize::new(0),
            cache,
            inner: Mutex::new(Blocks { blocks: VecDeque::new(), spares: VecDeque::new() }),
        }
    }

    /// Exact occupancy while the `inner` lock is held (all writers hold the
    /// lock, so the relaxed load cannot race a store).
    fn len_locked(&self, _inner: &Blocks<T>) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Publishes a new occupancy to the lock-free mirror; must be called
    /// with the `inner` lock held, after the mutation.
    fn publish_len(&self, _inner: &Blocks<T>, len: usize) {
        self.len.store(len, Ordering::Release);
    }

    fn check_invariants(&self, inner: &Blocks<T>) {
        debug_assert_eq!(
            self.len.load(Ordering::Relaxed),
            inner.blocks.iter().map(Vec::len).sum::<usize>()
        );
        debug_assert!(inner.blocks.iter().all(|b| !b.is_empty()));
        debug_assert!(inner.spares.iter().all(|b| b.is_empty()));
    }

    /// The configured block size (plain field read; no lock).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks currently holding elements (diagnostic).
    pub fn block_count(&self) -> usize {
        self.inner.lock().blocks.len()
    }

    /// Spare blocks stashed under this segment's lock (diagnostic).
    pub fn spare_blocks(&self) -> usize {
        self.inner.lock().spares.len()
    }

    /// Bundles of spent containers parked in the (possibly shared) pool
    /// cache, awaiting reuse (diagnostic snapshot).
    pub fn cached_bundles(&self) -> usize {
        self.cache.bundles.cached()
    }

    /// An empty block ready for `block_size` elements: from the segment's
    /// stash, else a bundle drawn from the shared cache, else fresh.
    fn issue_block(&self, inner: &mut Blocks<T>) -> Vec<T> {
        if let Some(block) = inner.spares.pop_back() {
            return block;
        }
        // Dry stash: adopt a cache bundle as the new stash, and send the
        // displaced (empty) stash buffer back as a pure shell — container
        // conservation, or steady-state traffic would slowly bleed deque
        // buffers to the allocator.
        let bundle = self.cache.take_bundle();
        let displaced = std::mem::replace(&mut inner.spares, bundle);
        if displaced.capacity() > 0 {
            self.cache.put_bundle(displaced);
        }
        inner.spares.pop_back().unwrap_or_else(|| Vec::with_capacity(self.block_size))
    }

    /// Retires a spent block into the stash, flushing overflow to the
    /// shared cache as one bundle.
    fn retire_block(&self, inner: &mut Blocks<T>, block: Vec<T>) {
        debug_assert!(block.is_empty());
        inner.spares.push_back(block);
        if inner.spares.len() > SPARE_BLOCKS_MAX {
            let bundle = std::mem::take(&mut inner.spares);
            self.cache.put_bundle(bundle);
        }
    }
}

impl<T> Default for BlockSegment<T> {
    fn default() -> Self {
        Self::with_block_size(DEFAULT_BLOCK_SIZE)
    }
}

impl<T: Send + 'static> Segment for BlockSegment<T> {
    type Item = T;
    type Batch = BlockBatch<T>;

    fn new() -> Self {
        Self::default()
    }

    /// One pool's segments share a single bundle cache, so blocks spent by
    /// one process's removes are reissued to another process's adds.
    fn new_family(count: usize) -> Vec<Self> {
        let cache = Arc::new(BlockCache::new(DEFAULT_BLOCK_SIZE, count.max(1)));
        (0..count).map(|_| Self::with_cache(DEFAULT_BLOCK_SIZE, Arc::clone(&cache))).collect()
    }

    fn add(&self, item: T) {
        let mut inner = self.inner.lock();
        match inner.blocks.back_mut() {
            Some(block) if block.len() < self.block_size => block.push(item),
            _ => {
                let mut block = self.issue_block(&mut inner);
                block.push(item);
                inner.blocks.push_back(block);
            }
        }
        self.publish_len(&inner, self.len_locked(&inner) + 1);
        self.check_invariants(&inner);
    }

    fn try_remove(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        let item = inner.blocks.back_mut()?.pop();
        debug_assert!(item.is_some(), "invariant: no empty blocks stored");
        if inner.blocks.back().is_some_and(Vec::is_empty) {
            let spent = inner.blocks.pop_back().expect("back exists");
            self.retire_block(&mut inner, spent);
        }
        self.publish_len(&inner, self.len_locked(&inner) - 1);
        self.check_invariants(&inner);
        item
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    fn steal_half(&self) -> BlockBatch<T> {
        let mut inner = self.inner.lock();
        let want = steal_count(self.len_locked(&inner));
        if want == 0 {
            return BlockBatch::empty();
        }
        // The shell draw doubles as the victim's block resupply: spare
        // blocks the bundle carries (exported by earlier refills on the
        // consumer side) stay HERE, in the victim's stash — the segment
        // being stolen from is the producer that is about to lose whole
        // blocks, so it is exactly where spares are needed next. This
        // steal→refill shell circulation is what keeps the steady state
        // allocation-free in both directions.
        let mut shell = self.cache.take_bundle();
        while let Some(spare) = shell.pop_front() {
            self.retire_block(&mut inner, spare);
        }
        let mut taken = 0;
        // Move whole blocks from the front, by handle, while they fit
        // within the quota.
        while let Some(front) = inner.blocks.front() {
            if taken + front.len() > want {
                break;
            }
            let block = inner.blocks.pop_front().expect("front exists");
            taken += block.len();
            shell.push_back(block);
        }
        // Top up element-wise from the front block if the quota is not met
        // (always the case when a single block holds everything). The
        // top-up block comes from the stash/cache, so even this path
        // allocates nothing in the steady state.
        if taken < want {
            let need = want - taken;
            let mut top = self.issue_block(&mut inner);
            let front = inner.blocks.front_mut().expect("len accounting guarantees a block");
            // `need < front.len()`: the whole-block loop above would have
            // taken an exactly-fitting front, so a top-up never empties it.
            debug_assert!(need < front.len());
            top.extend(front.drain(..need));
            shell.push_back(top);
        }
        self.publish_len(&inner, self.len_locked(&inner) - want);
        self.check_invariants(&inner);
        let cache = Some(Arc::clone(&self.cache));
        BlockBatch { first: None, rest: shell, parked: 0, len: want, cache }
    }

    fn add_bulk(&self, mut batch: BlockBatch<T>) {
        let len = batch.len;
        batch.len = 0;
        let first = batch.first.take();
        let mut rest = std::mem::take(&mut batch.rest);
        drop(batch); // disarmed: nothing left for its drop to recycle
        if len == 0 {
            // Pure container return (the probe's lone-element path): no
            // element moves, so the segment lock — an access the cost
            // model deliberately does not charge on this path — is never
            // taken; every container goes back to the cache as one bundle.
            if let Some(block) = first {
                debug_assert!(block.is_empty());
                rest.push_back(block);
            }
            self.cache.put_bundle(rest);
            return;
        }
        {
            let mut inner = self.inner.lock();
            self.publish_len(&inner, self.len_locked(&inner) + len);
            // Splice the handles; blocks the batch spent in transit (the
            // two-phase steal keeps one element back, which can empty a
            // block; a recycled shell may carry spares) retire into this
            // segment's own stash — the thief's next adds reuse them.
            let total = usize::from(first.is_some()) + rest.len();
            for block in
                first.into_iter().chain(std::iter::from_fn(|| rest.pop_front())).take(total)
            {
                if block.is_empty() {
                    self.retire_block(&mut inner, block);
                } else {
                    inner.blocks.push_back(block);
                }
            }
            // Ship the stash out with the shell: a refilling segment is a
            // consumer accumulating spare blocks, and the next steal's
            // shell draw hands them to a producer that just lost whole
            // blocks — per-round circulation instead of bursty flushes.
            while let Some(spare) = inner.spares.pop_back() {
                if rest.len() >= BUNDLE_BLOCKS_MAX {
                    inner.spares.push_back(spare);
                    break;
                }
                rest.push_back(spare);
            }
            self.check_invariants(&inner);
        }
        // Lock released: recycling the shell (and the spares riding in it)
        // needs no segment state.
        self.cache.put_bundle(rest);
    }

    fn add_bulk_vec(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let block_size = self.block_size;
        let mut inner = self.inner.lock();
        self.publish_len(&inner, self.len_locked(&inner) + items.len());
        let mut items = items.into_iter();
        // Top off the back block, then chunk the rest into recycled blocks
        // — one lock, no fresh allocations in the steady state.
        if let Some(back) = inner.blocks.back_mut() {
            while back.len() < block_size {
                match items.next() {
                    Some(item) => back.push(item),
                    None => break,
                }
            }
        }
        while let Some(first) = items.next() {
            let mut block = self.issue_block(&mut inner);
            block.push(first);
            while block.len() < block_size {
                match items.next() {
                    Some(item) => block.push(item),
                    None => break,
                }
            }
            inner.blocks.push_back(block);
        }
        self.check_invariants(&inner);
    }

    fn remove_up_to(&self, n: usize) -> BlockBatch<T> {
        let mut inner = self.inner.lock();
        let want = n.min(self.len_locked(&inner));
        if want == 0 {
            return BlockBatch::empty();
        }
        let cache = Some(Arc::clone(&self.cache));
        // Take whole blocks from the back — the owner's LIFO end, like
        // `try_remove` — while they fit within the quota, then top up
        // element-wise from the (new) back block. The batch stays tethered
        // to the cache, so its containers return as the caller consumes
        // (or drops) the drain.
        let back_len = inner.blocks.back().map_or(0, Vec::len);
        if want == back_len {
            let block = inner.blocks.pop_back().expect("back exists");
            self.publish_len(&inner, self.len_locked(&inner) - want);
            self.check_invariants(&inner);
            return BlockBatch {
                first: Some(block),
                rest: VecDeque::new(),
                parked: 0,
                len: want,
                cache,
            };
        }
        if want < back_len {
            let mut top = self.issue_block(&mut inner);
            let back = inner.blocks.back_mut().expect("back exists");
            let at = back.len() - want;
            top.extend(back.drain(at..));
            self.publish_len(&inner, self.len_locked(&inner) - want);
            self.check_invariants(&inner);
            return BlockBatch {
                first: Some(top),
                rest: VecDeque::new(),
                parked: 0,
                len: want,
                cache,
            };
        }
        let mut blocks = self.cache.take_bundle();
        // As in `steal_half`: spares the bundle carries stay in this
        // segment's stash instead of riding out with the caller.
        while let Some(spare) = blocks.pop_front() {
            self.retire_block(&mut inner, spare);
        }
        let mut taken = 0;
        while let Some(back) = inner.blocks.back() {
            if taken + back.len() > want {
                break;
            }
            let block = inner.blocks.pop_back().expect("back exists");
            taken += block.len();
            blocks.push_back(block);
        }
        if taken < want {
            let need = want - taken;
            let mut top = self.issue_block(&mut inner);
            let back = inner.blocks.back_mut().expect("len accounting guarantees a block");
            let at = back.len() - need;
            top.extend(back.drain(at..));
            blocks.push_back(top);
        }
        self.publish_len(&inner, self.len_locked(&inner) - want);
        self.check_invariants(&inner);
        BlockBatch { first: None, rest: blocks, parked: 0, len: want, cache }
    }

    fn drain_all(&self) -> BlockBatch<T> {
        let mut inner = self.inner.lock();
        let len = self.len_locked(&inner);
        let blocks = std::mem::take(&mut inner.blocks);
        self.publish_len(&inner, 0);
        self.check_invariants(&inner);
        BlockBatch {
            first: None,
            rest: blocks,
            parked: 0,
            len,
            cache: Some(Arc::clone(&self.cache)),
        }
    }

    fn batch_shell(&self) -> BlockBatch<T> {
        // An empty batch tethered to this pool's bundle cache: blocks a
        // lane sweep appends into it (and the spent containers a consumer
        // leaves behind) recycle instead of dropping.
        BlockBatch {
            first: None,
            rest: VecDeque::new(),
            parked: 0,
            len: 0,
            cache: Some(Arc::clone(&self.cache)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_fill_to_capacity() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..9 {
            seg.add(i);
        }
        assert_eq!(seg.len(), 9);
        assert_eq!(seg.block_count(), 3, "9 elements in blocks of 4 -> 3 blocks");
    }

    #[test]
    fn block_size_reads_without_contention() {
        // The config read must work even while the segment lock is held.
        let seg = BlockSegment::<u8>::with_block_size(7);
        let _lock = seg.inner.lock();
        assert_eq!(seg.block_size(), 7);
    }

    #[test]
    fn len_reads_without_the_lock() {
        // Occupancy, like block_size, must answer while the lock is held.
        let seg = BlockSegment::with_block_size(4);
        for i in 0..9 {
            seg.add(i);
        }
        let _lock = seg.inner.lock();
        assert_eq!(seg.len(), 9);
        assert!(!seg.is_empty());
    }

    #[test]
    fn remove_prunes_empty_blocks() {
        let seg = BlockSegment::with_block_size(2);
        seg.add(1);
        seg.add(2);
        seg.add(3);
        assert_eq!(seg.block_count(), 2);
        assert_eq!(seg.try_remove(), Some(3));
        assert_eq!(seg.block_count(), 1);
        assert_eq!(seg.try_remove(), Some(2));
        assert_eq!(seg.try_remove(), Some(1));
        assert_eq!(seg.block_count(), 0);
        assert!(seg.try_remove().is_none());
    }

    #[test]
    fn spent_blocks_are_stashed_not_freed() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..8 {
            seg.add(i);
        }
        assert_eq!(seg.spare_blocks(), 0);
        while seg.try_remove().is_some() {}
        assert_eq!(seg.spare_blocks(), 2, "both spent blocks stashed under the segment lock");
        for i in 0..8 {
            seg.add(i);
        }
        assert_eq!(seg.spare_blocks(), 0, "adds drew the stashed blocks back out");
    }

    #[test]
    fn stash_overflow_flushes_to_the_shared_cache_as_one_bundle() {
        let seg = BlockSegment::with_block_size(2);
        let blocks = SPARE_BLOCKS_MAX + 3;
        for i in 0..(2 * blocks) as u32 {
            seg.add(i);
        }
        while seg.try_remove().is_some() {}
        assert_eq!(seg.cached_bundles(), 1, "overflow left as a single bundle");
        assert_eq!(seg.spare_blocks(), blocks - (SPARE_BLOCKS_MAX + 1));
    }

    #[test]
    fn steal_moves_whole_blocks_when_possible() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..16 {
            seg.add(i);
        }
        // 16 elements, want 8 = exactly 2 front blocks, moved by handle.
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 8);
        assert_eq!(stolen.block_count(), 2);
        let mut got = stolen.into_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(seg.len(), 8);
        assert_eq!(seg.block_count(), 2);
    }

    #[test]
    fn steal_splits_single_block() {
        let seg = BlockSegment::with_block_size(64);
        for i in 0..10 {
            seg.add(i);
        }
        assert_eq!(seg.block_count(), 1);
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 5);
    }

    #[test]
    fn steal_exact_quota_with_partial_topup() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..10 {
            seg.add(i);
        }
        // want = 5: one whole block (4) + 1 from the next.
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 5);
        // Conservation: everything still present exactly once.
        let mut all = stolen.into_vec();
        while let Some(x) = seg.try_remove() {
            all.push(x);
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn add_bulk_splices_blocks_by_handle() {
        let victim = BlockSegment::with_block_size(3);
        let thief = BlockSegment::with_block_size(3);
        for i in 0..12 {
            victim.add(i);
        }
        let batch = victim.steal_half(); // 6 elements = 2 whole blocks
        assert_eq!(batch.block_count(), 2);
        thief.add_bulk(batch);
        assert_eq!(thief.len(), 6);
        assert_eq!(thief.block_count(), 2, "blocks arrive whole, not rebuilt");
    }

    #[test]
    fn add_bulk_vec_chunks_into_blocks() {
        let seg: BlockSegment<u32> = BlockSegment::with_block_size(4);
        seg.add(99); // partial back block gets topped off first
        seg.add_bulk_vec((0..10).collect());
        assert_eq!(seg.len(), 11);
        assert_eq!(seg.block_count(), 3, "11 elements in blocks of 4 -> 3 blocks");
    }

    #[test]
    fn block_batch_put_append_and_from_vec() {
        let mut batch: BlockBatch<u32> = BlockBatch::empty();
        assert!(batch.take_one().is_none());
        batch.put_one(1);
        batch.put_one(2);
        batch.append(BlockBatch::from_vec(vec![3, 4]));
        assert_eq!(batch.len(), 4);
        let mut got = batch.into_vec();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4]);
        assert_eq!(BlockBatch::from_vec((0..40u32).collect()).block_count(), 3);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = BlockSegment::<u8>::with_block_size(0);
    }

    #[test]
    fn repeated_halving_drains() {
        let seg = BlockSegment::with_block_size(4);
        seg.add_bulk_vec((0..100).collect());
        let mut total = 0;
        loop {
            let batch = seg.steal_half();
            if batch.is_empty() {
                break;
            }
            total += batch.len();
        }
        assert_eq!(total, 100);
        assert!(seg.is_empty());
    }

    #[test]
    fn family_shares_one_bundle_cache() {
        let family = <BlockSegment<u32> as Segment>::new_family(2);
        // Fill and fully drain segment 0 with enough blocks to overflow
        // its private stash: the overflow parks in the family-wide cache.
        let elements = DEFAULT_BLOCK_SIZE as u32 * (SPARE_BLOCKS_MAX as u32 + 4);
        for i in 0..elements {
            family[0].add(i);
        }
        while family[0].try_remove().is_some() {}
        assert_eq!(family[0].cached_bundles(), 1);
        // Segment 1's adds draw that very bundle back out and run on its
        // blocks (its stash starts empty, so the first drought adopts the
        // flushed bundle; the displaced empty stash buffer may linger in
        // the cache as a pure shell).
        for i in 0..elements {
            family[1].add(i);
        }
        assert!(family[1].cached_bundles() <= 1, "the block bundle was consumed");
        assert_eq!(family[1].spare_blocks(), 0, "every drawn block is in service");
    }

    #[test]
    fn consumed_batch_returns_its_containers_on_drop() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..16 {
            seg.add(i);
        }
        let batch = seg.steal_half(); // 2 whole blocks, riding a shell
        assert_eq!(seg.cached_bundles(), 0);
        drop(batch); // unconsumed elements drop; containers come back
        assert_eq!(seg.cached_bundles(), 1, "the dropped batch left one bundle");
        assert_eq!(seg.len(), 8, "the pool side is untouched");
    }
}
