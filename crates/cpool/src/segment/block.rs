//! Element segment organized as a list of fixed-size blocks.
//!
//! Manber (1986) describes a segment representation with O(1) add, remove,
//! and split for arbitrary elements. [`BlockSegment`] approximates it: the
//! segment is a deque of blocks of up to `B` elements, and a split hands
//! over whole blocks, touching O(n/B) block *pointers* instead of O(n)
//! elements. With `B` sized to a cache line's worth of items, a steal
//! transfers half the segment while copying only a handful of `Vec`
//! handles — the practical point of Manber's constant-time construction
//! (the paper notes its measured experiments eliminated "the block transfer
//! of stolen elements between processes"; this segment keeps the transfer
//! but makes it cheap).

use std::collections::VecDeque;

use parking_lot::Mutex;

use super::{steal_count, Segment};

/// Default number of elements per block.
pub const DEFAULT_BLOCK_SIZE: usize = 16;

#[derive(Debug)]
struct Blocks<T> {
    blocks: VecDeque<Vec<T>>,
    len: usize,
    block_size: usize,
}

impl<T> Blocks<T> {
    fn check_invariants(&self) {
        debug_assert_eq!(self.len, self.blocks.iter().map(Vec::len).sum::<usize>());
        debug_assert!(self.blocks.iter().all(|b| !b.is_empty()));
        debug_assert!(self.blocks.iter().all(|b| b.len() <= self.block_size));
    }
}

/// A segment whose elements live in fixed-size blocks so that splits move
/// blocks, not elements.
///
/// Local `add`/`try_remove` work on the back block (LIFO). `steal_half`
/// prefers to hand over whole front blocks; only when the segment has a
/// single block does it fall back to splitting that block element-wise.
///
/// ```
/// use cpool::segment::{BlockSegment, Segment};
/// let seg = BlockSegment::with_block_size(4);
/// for i in 0..32 {
///     seg.add(i);
/// }
/// let stolen = seg.steal_half();
/// assert_eq!(stolen.len(), 16);
/// assert_eq!(seg.len(), 16);
/// ```
#[derive(Debug)]
pub struct BlockSegment<T> {
    inner: Mutex<Blocks<T>>,
}

impl<T> BlockSegment<T> {
    /// Creates an empty segment with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockSegment { inner: Mutex::new(Blocks { blocks: VecDeque::new(), len: 0, block_size }) }
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.inner.lock().block_size
    }

    /// Number of blocks currently allocated (diagnostic).
    pub fn block_count(&self) -> usize {
        self.inner.lock().blocks.len()
    }
}

impl<T> Default for BlockSegment<T> {
    fn default() -> Self {
        Self::with_block_size(DEFAULT_BLOCK_SIZE)
    }
}

impl<T: Send + 'static> Segment for BlockSegment<T> {
    type Item = T;

    fn new() -> Self {
        Self::default()
    }

    fn add(&self, item: T) {
        let mut inner = self.inner.lock();
        let block_size = inner.block_size;
        match inner.blocks.back_mut() {
            Some(block) if block.len() < block_size => block.push(item),
            _ => {
                let mut block = Vec::with_capacity(block_size);
                block.push(item);
                inner.blocks.push_back(block);
            }
        }
        inner.len += 1;
        inner.check_invariants();
    }

    fn try_remove(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        let item = inner.blocks.back_mut()?.pop();
        debug_assert!(item.is_some(), "invariant: no empty blocks stored");
        if inner.blocks.back().is_some_and(Vec::is_empty) {
            inner.blocks.pop_back();
        }
        inner.len -= 1;
        inner.check_invariants();
        item
    }

    fn len(&self) -> usize {
        self.inner.lock().len
    }

    fn steal_half(&self) -> Vec<T> {
        let mut inner = self.inner.lock();
        let want = steal_count(inner.len);
        if want == 0 {
            return Vec::new();
        }
        let mut stolen: Vec<T> = Vec::new();
        // Take whole blocks from the front while they fit within the quota.
        while let Some(front) = inner.blocks.front() {
            if stolen.len() + front.len() > want {
                break;
            }
            let mut block = inner.blocks.pop_front().expect("front exists");
            inner.len -= block.len();
            stolen.append(&mut block);
        }
        // Top up from the front block element-wise if the quota is not met
        // (always the case when a single block holds everything).
        if stolen.len() < want {
            let need = want - stolen.len();
            let front = inner.blocks.front_mut().expect("len accounting guarantees a block");
            stolen.extend(front.drain(..need));
            let front_empty = front.is_empty();
            inner.len -= need;
            if front_empty {
                inner.blocks.pop_front();
            }
        }
        inner.check_invariants();
        debug_assert_eq!(stolen.len(), want);
        stolen
    }

    fn add_bulk(&self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let block_size = inner.block_size;
        inner.len += batch.len();
        let mut batch = batch.into_iter();
        loop {
            let block: Vec<T> = batch.by_ref().take(block_size).collect();
            if block.is_empty() {
                break;
            }
            inner.blocks.push_back(block);
        }
        inner.check_invariants();
    }

    fn remove_up_to(&self, n: usize) -> Vec<T> {
        let mut inner = self.inner.lock();
        let want = n.min(inner.len);
        let mut out: Vec<T> = Vec::with_capacity(want);
        // Take whole blocks from the back — the owner's LIFO end, like
        // `try_remove` — while they fit within the quota, then top up
        // element-wise from the (new) back block.
        while let Some(back) = inner.blocks.back() {
            if out.len() + back.len() > want {
                break;
            }
            let mut block = inner.blocks.pop_back().expect("back exists");
            inner.len -= block.len();
            out.append(&mut block);
        }
        if out.len() < want {
            let need = want - out.len();
            let back = inner.blocks.back_mut().expect("len accounting guarantees a block");
            let at = back.len() - need;
            out.extend(back.drain(at..));
            inner.len -= need;
        }
        inner.check_invariants();
        out
    }

    fn drain_all(&self) -> Vec<T> {
        let mut inner = self.inner.lock();
        let mut out: Vec<T> = Vec::with_capacity(inner.len);
        for mut block in std::mem::take(&mut inner.blocks) {
            out.append(&mut block);
        }
        inner.len = 0;
        inner.check_invariants();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_fill_to_capacity() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..9 {
            seg.add(i);
        }
        assert_eq!(seg.len(), 9);
        assert_eq!(seg.block_count(), 3, "9 elements in blocks of 4 -> 3 blocks");
    }

    #[test]
    fn remove_prunes_empty_blocks() {
        let seg = BlockSegment::with_block_size(2);
        seg.add(1);
        seg.add(2);
        seg.add(3);
        assert_eq!(seg.block_count(), 2);
        assert_eq!(seg.try_remove(), Some(3));
        assert_eq!(seg.block_count(), 1);
        assert_eq!(seg.try_remove(), Some(2));
        assert_eq!(seg.try_remove(), Some(1));
        assert_eq!(seg.block_count(), 0);
        assert!(seg.try_remove().is_none());
    }

    #[test]
    fn steal_moves_whole_blocks_when_possible() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..16 {
            seg.add(i);
        }
        // 16 elements, want 8 = exactly 2 front blocks.
        let stolen = seg.steal_half();
        assert_eq!(stolen, (0..8).collect::<Vec<_>>());
        assert_eq!(seg.len(), 8);
        assert_eq!(seg.block_count(), 2);
    }

    #[test]
    fn steal_splits_single_block() {
        let seg = BlockSegment::with_block_size(64);
        for i in 0..10 {
            seg.add(i);
        }
        assert_eq!(seg.block_count(), 1);
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 5);
    }

    #[test]
    fn steal_exact_quota_with_partial_topup() {
        let seg = BlockSegment::with_block_size(4);
        for i in 0..10 {
            seg.add(i);
        }
        // want = 5: one whole block (4) + 1 from the next.
        let stolen = seg.steal_half();
        assert_eq!(stolen.len(), 5);
        assert_eq!(seg.len(), 5);
        // Conservation: everything still present exactly once.
        let mut all = stolen;
        while let Some(x) = seg.try_remove() {
            all.push(x);
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn add_bulk_rebuilds_blocks() {
        let seg = BlockSegment::with_block_size(3);
        seg.add_bulk((0..10).collect());
        assert_eq!(seg.len(), 10);
        assert_eq!(seg.block_count(), 4, "10 elements in blocks of 3 -> 4 blocks");
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = BlockSegment::<u8>::with_block_size(0);
    }

    #[test]
    fn repeated_halving_drains() {
        let seg = BlockSegment::with_block_size(4);
        seg.add_bulk((0..100).collect());
        let mut total = 0;
        loop {
            let batch = seg.steal_half();
            if batch.is_empty() {
                break;
            }
            total += batch.len();
        }
        assert_eq!(total, 100);
        assert!(seg.is_empty());
    }
}
