//! Handle-local magazine caches: the Bonwick magazine layer over a pool.
//!
//! PRs 5–7 made the *bulk* paths allocation-free and lock-free, but a
//! single `add`/`try_remove` still pays a shared-memory round trip every
//! time (segment lock or CAS, occupancy counter, notifier fence). The
//! magazine layer — adapted from Bonwick's slab-allocator magazines —
//! amortizes that cost behind a per-handle cache: each handle owns two
//! bounded element vectors (the *loaded* and *previous* magazines), and
//! the common case of an add or remove is a purely thread-local push or
//! pop with **zero shared-memory read-modify-writes**. Shared structures
//! are touched once per magazine (capacity `M` operations), not once per
//! element:
//!
//! * a producer whose both magazines fill **exchanges** the full previous
//!   magazine with the pool's [`Depot`] — one lock-free ring push — and
//!   keeps caching;
//! * a consumer whose both magazines empty **claims** a full magazine from
//!   the depot — one ring pop — and keeps serving locally;
//! * only when the depot cannot absorb or supply a magazine does the
//!   operation fall through to the ordinary shared path (segment locks,
//!   steal searches).
//!
//! The depot is built on the crate's existing lock-free [`FreeList`] ring:
//! one ring of *full* magazines, one ring of recycled empty *shells*, so
//! the steady-state cache/exchange/claim cycle allocates nothing (asserted
//! by `tests/alloc_magazine.rs`).
//!
//! # Visibility semantics
//!
//! Cached elements are **handle-local**: they are not in any segment, so
//! [`total_len`](crate::Pool::total_len), per-key occupancy, and other
//! handles' removes do not see them. Elements stashed in the depot *are*
//! pool-visible — the [`stashed`](Depot::stashed) gauge is folded into
//! every drained snapshot, wake filter, and §3.2 termination check, and
//! searches raid the depot before giving up. The frontends keep the
//! handle-local window from stranding elements:
//!
//! * a producer's `add` checks the notifier for parked or async waiters
//!   *before* caching; when someone is waiting it flushes its magazines to
//!   the home segment and publishes the new element the ordinary way
//!   (counted as `flush_on_wait`);
//! * `close()`, handle drop, and [`drain`](crate::PoolOps::drain) flush
//!   handle caches back through the pool.
//!
//! The remaining window — a waiter that parks *after* a producer's check —
//! lasts until that producer's next operation, its drop, or a close. See
//! the README's "Handle-local caching" section for when to enable the
//! layer and when not to.
//!
//! The `stashed` gauge is maintained **overstate-only**: it is incremented
//! before a magazine enters the ring and decremented only after its
//! elements have left the depot (consumed or re-homed into a segment), so
//! a concurrent drained check can never observe phantom emptiness while
//! elements sit in the rings.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::transfer::FreeList;

/// The shared per-pool magazine depot: a bounded, lock-free exchange point
/// for full magazines (and recycled empty shells) between handles.
///
/// Built by the pool when [`PoolBuilder::handle_cache`] /
/// [`KeyedPoolBuilder::handle_cache`] is non-zero; handles exchange with it
/// through their [`MagazineCache`], and the remove passes
/// [`raid`](Self::raid) it before declaring the pool empty.
///
/// [`PoolBuilder::handle_cache`]: crate::PoolBuilder::handle_cache
/// [`KeyedPoolBuilder::handle_cache`]: crate::KeyedPoolBuilder::handle_cache
pub struct Depot<T> {
    magazine_cap: usize,
    /// Full magazines stashed by producers, claimed by consumers.
    full: FreeList<Vec<T>>,
    /// Empty magazine shells, recycled so the exchange cycle keeps its
    /// vector capacity in circulation instead of reallocating.
    shells: FreeList<Vec<T>>,
    /// Elements currently stashed in `full` — overstate-only (see the
    /// [module docs](self)): never less than the rings' true content, so
    /// drained snapshots reading it cannot miss stashed elements.
    stashed: AtomicUsize,
}

impl<T> Depot<T> {
    /// Creates a depot whose magazines hold `magazine_cap` elements each
    /// and whose rings retain at most `rings` magazines/shells.
    ///
    /// # Panics
    ///
    /// Panics if `magazine_cap` is zero (a zero-depth cache is expressed
    /// by not building a depot at all).
    pub fn new(magazine_cap: usize, rings: usize) -> Self {
        assert!(magazine_cap > 0, "magazine depth must be at least one element");
        Depot {
            magazine_cap,
            full: FreeList::new(rings),
            shells: FreeList::new(rings),
            stashed: AtomicUsize::new(0),
        }
    }

    /// Elements a full magazine holds (the builder's `handle_cache` depth).
    pub fn magazine_cap(&self) -> usize {
        self.magazine_cap
    }

    /// Elements currently stashed in full magazines (snapshot; may briefly
    /// overstate while an exchange is in flight, never understate).
    pub fn stashed(&self) -> usize {
        self.stashed.load(Ordering::SeqCst)
    }

    /// Stashes a full magazine for consumers to claim.
    ///
    /// The gauge is raised *before* the ring push (and rolled back on
    /// overflow), preserving the overstate-only invariant.
    ///
    /// # Errors
    ///
    /// Returns `Err(mag)` when the ring is at capacity — the caller must
    /// route the elements somewhere pool-visible instead.
    pub fn put_full(&self, mag: Vec<T>) -> Result<(), Vec<T>> {
        self.stashed.fetch_add(mag.len(), Ordering::SeqCst);
        match self.full.try_put(mag) {
            Ok(()) => Ok(()),
            Err(mag) => {
                self.stashed.fetch_sub(mag.len(), Ordering::SeqCst);
                Err(mag)
            }
        }
    }

    /// Claims a stashed full magazine.
    ///
    /// The gauge still counts the magazine's elements after this returns:
    /// once the caller has consumed or re-homed them it must call
    /// [`unstash`](Self::unstash) with their count, so a concurrent
    /// drained check never sees the elements vanish before they land
    /// somewhere visible.
    pub fn take_full(&self) -> Option<Vec<T>> {
        self.full.take()
    }

    /// Lowers the stashed gauge by `n` elements previously claimed with
    /// [`take_full`](Self::take_full) (see there).
    pub fn unstash(&self, n: usize) {
        if n > 0 {
            self.stashed.fetch_sub(n, Ordering::SeqCst);
        }
    }

    /// A recycled empty magazine shell, or a freshly allocated one when
    /// the ring has none to give.
    pub fn take_shell(&self) -> Vec<T> {
        self.shells.take().unwrap_or_else(|| Vec::with_capacity(self.magazine_cap))
    }

    /// Returns an emptied magazine shell for reuse (dropped past the ring
    /// bound — capacity recycling, not element custody).
    pub fn put_shell(&self, shell: Vec<T>) {
        debug_assert!(shell.is_empty(), "shells must not carry elements");
        self.shells.put(shell);
    }

    /// Takes one element out of a stashed magazine and restashes the rest
    /// — the remove passes' depot fallback before a steal search.
    ///
    /// When the remainder cannot be restashed (the ring refilled while the
    /// magazine was out), it is handed back as `Some(rest)`: the caller
    /// **must** re-home those elements somewhere pool-visible and then
    /// call [`unstash`](Self::unstash)`(rest.len())`. The element returned
    /// for the remove itself is already unstashed here.
    pub fn raid(&self) -> Option<(T, Option<Vec<T>>)> {
        let mut mag = self.take_full()?;
        let item = mag.pop().expect("the depot stashes only non-empty magazines");
        self.unstash(1);
        if mag.is_empty() {
            self.put_shell(mag);
            return Some((item, None));
        }
        match self.full.try_put(mag) {
            Ok(()) => Some((item, None)),
            Err(rest) => Some((item, Some(rest))),
        }
    }
}

impl<T> std::fmt::Debug for Depot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Depot")
            .field("magazine_cap", &self.magazine_cap)
            .field("stashed", &self.stashed())
            .field("full_magazines", &self.full.cached())
            .field("shells", &self.shells.cached())
            .finish()
    }
}

/// What [`MagazineCache::cache`] did with the element.
#[derive(Debug)]
pub enum CacheOutcome<T> {
    /// Absorbed into a magazine with room — no shared memory touched.
    Cached,
    /// Absorbed after exchanging a full magazine with the depot (one ring
    /// push; the caller should signal the notifier — a magazine's worth of
    /// elements just became pool-visible).
    Exchanged,
    /// Both magazines and the depot are full: the element is handed back
    /// for the ordinary shared add path.
    Full(T),
}

/// What [`MagazineCache::pop`] produced.
#[derive(Debug)]
pub enum PopOutcome<T> {
    /// Served from a loaded magazine — no shared memory touched.
    Hit(T),
    /// Served after claiming a full magazine from the depot (one ring
    /// pop); the rest of the magazine is now cached for future hits.
    Refilled(T),
    /// Both magazines empty and the depot had nothing: fall through to the
    /// ordinary remove pass.
    Miss,
}

/// A handle's private two-magazine element cache (Bonwick's loaded +
/// previous pair).
///
/// The two-magazine shape guarantees a handle can absorb at least `cap`
/// consecutive adds *and* serve at least `cap` consecutive removes between
/// depot exchanges, whatever state the pair is in — a single magazine
/// would thrash on an alternating add/remove pattern right at the
/// boundary.
///
/// Owned by [`Handle`](crate::Handle) / [`KeyedHandle`](crate::KeyedHandle)
/// when the pool was built with a non-zero `handle_cache` depth; public so
/// the invariants are documented and testable, but constructed only by the
/// frontends.
pub struct MagazineCache<T> {
    cap: usize,
    loaded: Vec<T>,
    previous: Vec<T>,
}

impl<T> MagazineCache<T> {
    /// Creates an empty cache of two `cap`-element magazines.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "magazine depth must be at least one element");
        MagazineCache { cap, loaded: Vec::with_capacity(cap), previous: Vec::with_capacity(cap) }
    }

    /// Elements a single magazine holds.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Elements currently cached across both magazines.
    pub fn len(&self) -> usize {
        self.loaded.len() + self.previous.len()
    }

    /// Whether the cache holds no elements.
    pub fn is_empty(&self) -> bool {
        self.loaded.is_empty() && self.previous.is_empty()
    }

    /// Caches one element, exchanging a full magazine with `depot` when
    /// both magazines are full. See [`CacheOutcome`].
    pub fn cache(&mut self, item: T, depot: &Depot<T>) -> CacheOutcome<T> {
        if self.loaded.len() < self.cap {
            self.loaded.push(item);
            return CacheOutcome::Cached;
        }
        if self.previous.len() < self.cap {
            std::mem::swap(&mut self.loaded, &mut self.previous);
            self.loaded.push(item);
            return CacheOutcome::Cached;
        }
        // Both full: stash the previous magazine, install a recycled empty
        // shell in its place, and rotate it in as the loaded magazine.
        match depot.put_full(std::mem::take(&mut self.previous)) {
            Ok(()) => {
                self.previous = std::mem::replace(&mut self.loaded, depot.take_shell());
                self.loaded.push(item);
                CacheOutcome::Exchanged
            }
            Err(back) => {
                // Depot full: restore the magazine untouched and hand the
                // element back for the shared path.
                self.previous = back;
                CacheOutcome::Full(item)
            }
        }
    }

    /// Pops one cached element, claiming a full magazine from `depot` when
    /// both magazines are empty. See [`PopOutcome`].
    pub fn pop(&mut self, depot: &Depot<T>) -> PopOutcome<T> {
        if let Some(item) = self.loaded.pop() {
            return PopOutcome::Hit(item);
        }
        if !self.previous.is_empty() {
            std::mem::swap(&mut self.loaded, &mut self.previous);
            let item = self.loaded.pop().expect("previous observed non-empty");
            return PopOutcome::Hit(item);
        }
        match depot.take_full() {
            Some(mag) => {
                let claimed = mag.len();
                depot.put_shell(std::mem::replace(&mut self.loaded, mag));
                let item = self.loaded.pop().expect("depot magazines are non-empty");
                // The whole magazine is handle-local now; lower the gauge
                // only after the install so no drained check sees a gap.
                depot.unstash(claimed);
                PopOutcome::Refilled(item)
            }
            None => PopOutcome::Miss,
        }
    }

    /// Removes and returns the first cached element matching `pred`
    /// (loaded magazine first) — the keyed frontend's own-cache scan for
    /// `try_remove_key`. Order within a magazine is not preserved (pools
    /// are unordered).
    pub fn take_matching(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        if let Some(i) = self.loaded.iter().rposition(&mut pred) {
            return Some(self.loaded.swap_remove(i));
        }
        if let Some(i) = self.previous.iter().rposition(&mut pred) {
            return Some(self.previous.swap_remove(i));
        }
        None
    }

    /// Moves every cached element out, surrendering the magazines'
    /// capacity with them — the flush currency of the lifecycle paths
    /// (waiter-present flush, `close`, drop, `drain`), which hand the
    /// vector straight to a segment's bulk add. Not a steady-state path.
    pub fn take_all(&mut self) -> Vec<T> {
        let mut out = std::mem::take(&mut self.loaded);
        out.append(&mut self.previous);
        out
    }
}

impl<T> std::fmt::Debug for MagazineCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MagazineCache")
            .field("cap", &self.cap)
            .field("loaded", &self.loaded.len())
            .field("previous", &self.previous.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_fills_both_magazines_before_touching_the_depot() {
        let depot: Depot<u32> = Depot::new(4, 2);
        let mut cache = MagazineCache::new(4);
        for i in 0..8 {
            assert!(matches!(cache.cache(i, &depot), CacheOutcome::Cached), "element {i}");
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(depot.stashed(), 0, "no exchange while the pair has room");
    }

    #[test]
    fn ninth_element_exchanges_a_full_magazine() {
        let depot: Depot<u32> = Depot::new(4, 2);
        let mut cache = MagazineCache::new(4);
        for i in 0..8 {
            let _ = cache.cache(i, &depot);
        }
        assert!(matches!(cache.cache(8, &depot), CacheOutcome::Exchanged));
        assert_eq!(depot.stashed(), 4);
        assert_eq!(cache.len(), 5, "one fresh element atop the still-full previous");
    }

    #[test]
    fn depot_overflow_hands_the_element_back_untouched() {
        let depot: Depot<u32> = Depot::new(2, 1);
        let mut cache = MagazineCache::new(2);
        for i in 0..4 {
            let _ = cache.cache(i, &depot);
        }
        assert!(matches!(cache.cache(4, &depot), CacheOutcome::Exchanged), "ring takes one");
        for i in 5..7 {
            let _ = cache.cache(i, &depot);
        }
        // Ring full: the overflowing cache must fail closed, conserving
        // both the cached elements and the new one.
        match cache.cache(7, &depot) {
            CacheOutcome::Full(item) => assert_eq!(item, 7),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(cache.len() + depot.stashed(), 6);
    }

    #[test]
    fn pop_serves_lifo_then_previous_then_depot() {
        let depot: Depot<u32> = Depot::new(2, 2);
        let mut cache = MagazineCache::new(2);
        for i in 0..5 {
            let _ = cache.cache(i, &depot);
        }
        // Two in loaded + two in previous + two... actually: 0,1 filled
        // loaded; 2,3 filled the swapped pair; 4 exchanged [0,1] away.
        assert_eq!(depot.stashed(), 2);
        let mut got = Vec::new();
        while let PopOutcome::Hit(v) | PopOutcome::Refilled(v) = cache.pop(&depot) {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4], "every cached element conserved");
        assert_eq!(depot.stashed(), 0);
        assert!(matches!(cache.pop(&depot), PopOutcome::Miss));
    }

    #[test]
    fn exchange_claim_cycle_recycles_shells() {
        let depot: Depot<u32> = Depot::new(2, 4);
        let mut producer = MagazineCache::new(2);
        let mut consumer = MagazineCache::new(2);
        // Warm one full cycle so the shell ring is primed, then cycle
        // again: the depot must end where it started (no capacity leak,
        // no element leak).
        for round in 0..3 {
            for i in 0..6 {
                assert!(
                    !matches!(producer.cache(round * 10 + i, &depot), CacheOutcome::Full(_)),
                    "depot sized for the flow"
                );
            }
            let mut served = 0;
            while let PopOutcome::Hit(_) | PopOutcome::Refilled(_) = consumer.pop(&depot) {
                served += 1;
            }
            assert_eq!(served + producer.len(), 6, "round {round} conserves");
            let flushed = producer.take_all();
            assert_eq!(flushed.len(), producer.len() + flushed.len()); // take_all empties
        }
        assert_eq!(depot.stashed(), 0);
    }

    #[test]
    fn take_matching_scans_both_magazines() {
        let depot: Depot<(u8, u32)> = Depot::new(2, 2);
        let mut cache = MagazineCache::new(2);
        for (k, v) in [(1, 10), (2, 20), (3, 30), (4, 40)] {
            let _ = cache.cache((k, v), &depot);
        }
        assert_eq!(cache.take_matching(|(k, _)| *k == 1), Some((1, 10)), "previous magazine");
        assert_eq!(cache.take_matching(|(k, _)| *k == 4), Some((4, 40)), "loaded magazine");
        assert_eq!(cache.take_matching(|(k, _)| *k == 9), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn raid_restashes_the_remainder() {
        let depot: Depot<u32> = Depot::new(4, 2);
        assert!(depot.put_full(vec![1, 2, 3, 4]).is_ok());
        let (item, rest) = depot.raid().expect("one magazine stashed");
        assert_eq!(item, 4);
        assert!(rest.is_none(), "remainder restashed in place");
        assert_eq!(depot.stashed(), 3);
        // Raid to exhaustion: the last element retires the magazine.
        for _ in 0..3 {
            let (_, rest) = depot.raid().expect("elements remain");
            assert!(rest.is_none());
        }
        assert_eq!(depot.stashed(), 0);
        assert!(depot.raid().is_none());
    }

    #[test]
    fn put_full_overflow_hands_the_magazine_back() {
        let depot: Depot<u32> = Depot::new(2, 1);
        assert!(depot.put_full(vec![1, 2]).is_ok());
        match depot.put_full(vec![3, 4]) {
            Err(back) => assert_eq!(back, vec![3, 4], "elements come back intact"),
            Ok(()) => panic!("ring of one cannot hold two magazines"),
        }
        assert_eq!(depot.stashed(), 2, "rolled back to the stashed magazine only");
    }

    #[test]
    fn concurrent_raids_conserve_elements() {
        // A tight ring under producer/raider contention: raids whose
        // restash loses the race hand the remainder back, and the caller
        // contract (re-home, then unstash) must conserve every element.
        let depot: Depot<u32> = Depot::new(2, 1);
        let stashed = std::sync::atomic::AtomicU32::new(0);
        let recovered = std::sync::atomic::AtomicU32::new(0);
        let banked = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut sent = 0u32;
                while sent < 2_000 {
                    if depot.put_full(vec![sent, sent + 1]).is_ok() {
                        stashed.fetch_add(2, Ordering::SeqCst);
                        sent += 2;
                    }
                }
            });
            s.spawn(|| loop {
                if let Some((item, rest)) = depot.raid() {
                    let mut n = 1;
                    let mut bank = banked.lock().unwrap();
                    bank.push(item);
                    if let Some(rest) = rest {
                        n += rest.len() as u32;
                        bank.extend(rest.iter().copied());
                        depot.unstash(rest.len());
                    }
                    drop(bank);
                    recovered.fetch_add(n, Ordering::SeqCst);
                }
                if recovered.load(Ordering::SeqCst) + depot.stashed() as u32
                    >= stashed.load(Ordering::SeqCst)
                    && stashed.load(Ordering::SeqCst) == 2_000
                    && depot.stashed() == 0
                {
                    break;
                }
                std::hint::spin_loop();
            });
        });
        let mut bank = banked.into_inner().unwrap();
        bank.sort_unstable();
        assert_eq!(bank.len(), 2_000, "every stashed element recovered exactly once");
        assert_eq!(bank, (0..2_000).collect::<Vec<u32>>());
    }

    #[test]
    fn overstate_only_gauge_never_undershoots() {
        let depot: Depot<u32> = Depot::new(2, 1);
        assert!(depot.put_full(vec![1, 2]).is_ok());
        assert_eq!(depot.stashed(), 2);
        let mag = depot.take_full().expect("stashed");
        assert_eq!(depot.stashed(), 2, "claimed magazines still count until unstash");
        depot.unstash(mag.len());
        assert_eq!(depot.stashed(), 0);
    }
}
