//! Identifier newtypes for processes and segments.
//!
//! The paper runs one process and one segment per processor, so the two
//! index spaces coincide there; this crate keeps them distinct so that
//! configurations with more processes than segments (or custom placements)
//! stay type-checked.

use std::fmt;

/// Identifier of a logical process participating in pool operations.
///
/// Process ids are dense: a pool with `n` registered handles uses ids
/// `0..n`. The id also selects the process's *home node* in a NUMA
/// topology.
///
/// ```
/// use cpool::ProcId;
/// let p = ProcId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcId(usize);

impl ProcId {
    /// Creates a process id from a dense index.
    pub fn new(index: usize) -> Self {
        ProcId(index)
    }

    /// Returns the dense index of this process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcId {
    fn from(index: usize) -> Self {
        ProcId(index)
    }
}

/// Index of a pool segment.
///
/// Segments are numbered `0..n`; segment `i` is *local* to the process whose
/// home node hosts it (by default process `i`).
///
/// ```
/// use cpool::SegIdx;
/// let s = SegIdx::new(7);
/// assert_eq!(s.index(), 7);
/// assert_eq!(s.to_string(), "S7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SegIdx(usize);

impl SegIdx {
    /// Creates a segment index.
    pub fn new(index: usize) -> Self {
        SegIdx(index)
    }

    /// Returns the dense index of this segment.
    pub fn index(self) -> usize {
        self.0
    }

    /// The next segment in ring order among `n` segments.
    ///
    /// Used by the linear search algorithm, which treats the segments "as if
    /// they were arranged in a ring".
    ///
    /// ```
    /// use cpool::SegIdx;
    /// assert_eq!(SegIdx::new(15).next_in_ring(16), SegIdx::new(0));
    /// assert_eq!(SegIdx::new(3).next_in_ring(16), SegIdx::new(4));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_in_ring(self, n: usize) -> SegIdx {
        assert!(n > 0, "ring of zero segments");
        SegIdx((self.0 + 1) % n)
    }
}

impl fmt::Display for SegIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<usize> for SegIdx {
    fn from(index: usize) -> Self {
        SegIdx(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_roundtrip() {
        for i in [0usize, 1, 15, 4096] {
            assert_eq!(ProcId::new(i).index(), i);
            assert_eq!(ProcId::from(i), ProcId::new(i));
        }
    }

    #[test]
    fn seg_idx_ring_wraps() {
        let n = 5;
        let mut s = SegIdx::new(0);
        let mut seen = vec![false; n];
        for _ in 0..n {
            seen[s.index()] = true;
            s = s.next_in_ring(n);
        }
        assert!(seen.iter().all(|&v| v), "ring traversal visits every segment");
        assert_eq!(s, SegIdx::new(0), "ring traversal returns to start");
    }

    #[test]
    #[should_panic(expected = "ring of zero segments")]
    fn ring_of_zero_panics() {
        let _ = SegIdx::new(0).next_in_ring(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcId::new(12).to_string(), "P12");
        assert_eq!(SegIdx::new(0).to_string(), "S0");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(ProcId::new(1) < ProcId::new(2));
        assert!(SegIdx::new(9) > SegIdx::new(8));
    }
}
