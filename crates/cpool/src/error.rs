//! Error types for pool operations.

use std::error::Error;
use std::fmt;

/// Error returned by [`Handle::try_remove`](crate::Handle::try_remove) and
/// the blocking [`PoolOps::remove`](crate::PoolOps::remove).
///
/// A removing process that cannot find an element keeps searching remote
/// segments until it either steals some or the livelock breaker fires.
/// Following §3.2 of Kotz & Ellis (1989), a search aborts when *every*
/// process registered with the pool is simultaneously searching — at that
/// point no process can be adding, so the pool is (almost certainly) empty
/// and waiting would livelock. `try_remove` surfaces each abort directly;
/// the blocking `remove` waits out transient aborts under a
/// [`WaitStrategy`](crate::WaitStrategy) and only returns an error when the
/// pool is closed and drained ([`Closed`](Self::Closed)), the wait deadline
/// passes ([`Timeout`](Self::Timeout)), or the abort is terminal / the lap
/// budget is spent ([`Aborted`](Self::Aborted)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum RemoveError {
    /// All registered processes were searching simultaneously, so the
    /// operation was aborted to break the livelock.
    ///
    /// This is usually a reliable "pool empty and nobody producing" signal,
    /// but it is conservative: an element added immediately before the
    /// adding process itself began searching can still be present. Callers
    /// that need a definitive answer should re-check
    /// [`Pool::total_len`](crate::Pool::total_len) after an abort (no
    /// process can add while all are searching, so the check is stable).
    Aborted,
    /// The pool was [closed](crate::PoolOps::close) and no remaining
    /// element is reachable: this remover's work is over.
    ///
    /// Pending [futures](crate::future) resolve with `Closed` terminally:
    /// a close wakes every registered waker, and each woken future drains
    /// its share of the residue before observing `Closed` — no future is
    /// left pending forever on a closed pool.
    ///
    /// Closing is the explicit lifecycle signal — removers observe `Closed`
    /// only once no segment holds an element, so everything added before
    /// the close is delivered first (see the [`notify`](crate::notify)
    /// module and the README's "Blocking, wakeups, and shutdown" section).
    /// Like [`Aborted`](Self::Aborted), the emptiness check is a snapshot
    /// and conservative in one direction: elements mid-steal (drained from
    /// a victim, not yet banked in the thief's segment) are invisible to
    /// it, so a concurrent thief may still complete removes after another
    /// consumer observed `Closed`. No element is ever lost — the in-flight
    /// batch belongs to the thief, whose own subsequent removes drain it
    /// before that thief observes `Closed`.
    Closed,
    /// The deadline passed before an element arrived
    /// ([`PoolOps::remove_timeout`](crate::PoolOps::remove_timeout), or a
    /// `_timeout_async` future past its
    /// [`deadline`](crate::RemoveFuture::deadline) — also terminal: the
    /// future withdraws its waker registration and must not be polled
    /// again).
    ///
    /// The pool may still be live: a timeout says nothing about other
    /// processes, only that this wait expired.
    Timeout,
}

impl fmt::Display for RemoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoveError::Aborted => {
                write!(f, "remove aborted: all registered processes were searching")
            }
            RemoveError::Closed => {
                write!(f, "pool closed and drained: no remove can succeed again")
            }
            RemoveError::Timeout => {
                write!(f, "remove timed out before an element arrived")
            }
        }
    }
}

impl Error for RemoveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        for err in [RemoveError::Aborted, RemoveError::Closed, RemoveError::Timeout] {
            let msg = err.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
        assert!(RemoveError::Aborted.to_string().starts_with("remove aborted"));
        assert!(RemoveError::Closed.to_string().contains("closed"));
        assert!(RemoveError::Timeout.to_string().contains("timed out"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RemoveError>();
    }
}
