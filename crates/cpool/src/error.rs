//! Error types for pool operations.

use std::error::Error;
use std::fmt;

/// Error returned by [`Handle::try_remove`](crate::Handle::try_remove) and
/// the blocking [`PoolOps::remove`](crate::PoolOps::remove).
///
/// A removing process that cannot find an element keeps searching remote
/// segments until it either steals some or the livelock breaker fires.
/// Following §3.2 of Kotz & Ellis (1989), a search aborts when *every*
/// process registered with the pool is simultaneously searching — at that
/// point no process can be adding, so the pool is (almost certainly) empty
/// and waiting would livelock. `try_remove` surfaces each abort directly;
/// the blocking `remove` retries transient aborts under a
/// [`WaitStrategy`](crate::WaitStrategy) and only returns this error when
/// the abort is terminal (pool drained) or its attempt budget is spent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RemoveError {
    /// All registered processes were searching simultaneously, so the
    /// operation was aborted to break the livelock.
    ///
    /// This is usually a reliable "pool empty and nobody producing" signal,
    /// but it is conservative: an element added immediately before the
    /// adding process itself began searching can still be present. Callers
    /// that need a definitive answer should re-check
    /// [`Pool::total_len`](crate::Pool::total_len) after an abort (no
    /// process can add while all are searching, so the check is stable).
    Aborted,
}

impl fmt::Display for RemoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoveError::Aborted => {
                write!(f, "remove aborted: all registered processes were searching")
            }
        }
    }
}

impl Error for RemoveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msg = RemoveError::Aborted.to_string();
        assert!(msg.starts_with("remove aborted"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RemoveError>();
    }
}
