//! Search hints: directing fresh elements to searching processes.
//!
//! §5 of Kotz & Ellis (1989) closes with an open question: "how might
//! concurrent pools be modified so that searching processors leave hints in
//! the pool, and elements added by another processor can be directed to the
//! searching process[?]". This module is our answer.
//!
//! A [`HintBoard`] holds one single-element *mailbox* per process plus a
//! count of processes currently waiting. A process whose search has
//! completed **one full lap without finding anything** *posts* itself on
//! the board; a process performing an add first glances at the waiting
//! count and, if anyone is waiting, *donates* the element straight into one
//! waiter's mailbox instead of adding it to its own segment. The searcher
//! polls its mailbox between probes (through
//! [`SearchEnv::should_abort`](crate::search::SearchEnv::should_abort), so
//! no policy code changes) and completes its remove with the donated
//! element.
//!
//! # Why this helps — and why posting waits a lap
//!
//! Under sparse mixes, the expensive removes are the long-tail searches
//! that lap the pool while nothing is available; a donation ends such a
//! search the moment an element exists, at the cost of one remote access by
//! the *donor* — who knows precisely where the element must go.
//!
//! Posting *immediately* on entering a search is measurably
//! counterproductive: every add gets siphoned into a single-element
//! delivery, segments never accumulate stock, and the batch steal — which
//! transfers ⌈n/2⌉ elements and buys the thief a reserve — never engages.
//! Probes go *up*, not down. Posting after one fruitless lap keeps batch
//! stealing as the first-line mechanism and reserves donations for genuine
//! starvation. The ablation bench (`hint_ablation`) quantifies both
//! effects.
//!
//! # Cost model
//!
//! The board is one more shared structure, so a donation is charged to the
//! donor as one access to
//! [`Resource::Shared`](crate::timing::Resource::Shared)`(`[`HINT_BOARD_RESOURCE`]`)`
//! *before* the mailbox is touched (the usual lock/charge discipline). The
//! waiting-count glance on the add fast path and the searcher's polls of its
//! own (local) mailbox are not charged: both are single-word reads of,
//! respectively, a counter that is only hot when the pool is starving, and
//! process-local memory.
//!
//! # Protocol invariants
//!
//! * A mailbox holds at most one element; `waiting` counts slots in state
//!   `Waiting` exactly (donors move a slot `Waiting → Delivered` and
//!   decrement; the owner moves `Waiting → Idle` on cancel).
//! * An element in a mailbox is owned by the mailbox until the slot owner
//!   takes it (`check`/`cancel`): donation never loses elements, even when
//!   the searcher finds a steal victim concurrently — the leftover delivery
//!   is re-deposited into the searcher's own segment.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::ids::ProcId;

/// The [`Resource::Shared`](crate::timing::Resource::Shared) index charged
/// for hint-board donations (index 0 is conventionally the centralized
/// work-list baseline).
pub const HINT_BOARD_RESOURCE: u16 = 1;

#[derive(Debug)]
enum SlotState<T> {
    /// The owner is not searching (or opted out).
    Idle,
    /// The owner is searching and accepts donations.
    Waiting,
    /// A donor left an element; the owner has not yet collected it.
    Delivered(T),
}

/// One process's mailbox plus the shared waiting count.
///
/// See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct HintBoard<T> {
    waiting: AtomicUsize,
    cursor: AtomicUsize,
    slots: Box<[Mutex<SlotState<T>>]>,
}

impl<T> HintBoard<T> {
    /// Creates a board with one mailbox per process for `procs` processes.
    ///
    /// Processes with ids beyond `procs` simply do not participate (their
    /// posts are ignored), which keeps over-subscribed pools correct.
    pub fn new(procs: usize) -> Self {
        HintBoard {
            waiting: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            slots: (0..procs).map(|_| Mutex::new(SlotState::Idle)).collect(),
        }
    }

    /// Number of mailboxes.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of processes currently posted as waiting.
    pub fn waiting(&self) -> usize {
        self.waiting.load(Ordering::Acquire)
    }

    /// Cheap donor-side filter: is anyone waiting right now?
    pub fn has_waiters(&self) -> bool {
        self.waiting() > 0
    }

    /// Posts `proc` as waiting. Returns `false` (no-op) if the process has
    /// no mailbox or is already posted/delivered-to.
    pub fn post(&self, proc: ProcId) -> bool {
        let Some(slot) = self.slots.get(proc.index()) else {
            return false;
        };
        let mut state = slot.lock();
        match *state {
            SlotState::Idle => {
                *state = SlotState::Waiting;
                // Publish under the lock so `waiting` never exceeds the
                // number of Waiting slots observed by donors.
                self.waiting.fetch_add(1, Ordering::AcqRel);
                true
            }
            SlotState::Waiting | SlotState::Delivered(_) => false,
        }
    }

    /// Attempts to donate `item` to some waiting process.
    ///
    /// On success returns the receiver; on failure (nobody waiting, or every
    /// waiter raced away) returns the item back to the caller.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when no mailbox accepted the donation.
    pub fn try_donate(&self, item: T) -> Result<ProcId, T> {
        if !self.has_waiters() {
            return Err(item);
        }
        let n = self.slots.len();
        // Rotate the scan start so one hungry low-id process does not starve
        // the others of donations.
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n.max(1);
        for off in 0..n {
            let idx = (start + off) % n;
            let mut state = self.slots[idx].lock();
            if matches!(*state, SlotState::Waiting) {
                *state = SlotState::Delivered(item);
                self.waiting.fetch_sub(1, Ordering::AcqRel);
                return Ok(ProcId::new(idx));
            }
        }
        Err(item)
    }

    /// Non-blocking peek: has something been delivered to `proc`?
    ///
    /// Used between search probes; the slot is local to the polling process.
    pub fn delivered(&self, proc: ProcId) -> bool {
        self.slots
            .get(proc.index())
            .is_some_and(|slot| matches!(*slot.lock(), SlotState::Delivered(_)))
    }

    /// Takes a delivered element, leaving the slot `Waiting`-free but still
    /// posted? No — collection ends the post: the slot returns to `Idle`.
    ///
    /// Returns `None` if nothing was delivered (the slot may still be
    /// `Waiting`; use [`cancel`](Self::cancel) to withdraw it).
    pub fn take_delivery(&self, proc: ProcId) -> Option<T> {
        let slot = self.slots.get(proc.index())?;
        let mut state = slot.lock();
        if matches!(*state, SlotState::Delivered(_)) {
            match std::mem::replace(&mut *state, SlotState::Idle) {
                SlotState::Delivered(item) => Some(item),
                _ => unreachable!("state checked under the lock"),
            }
        } else {
            None
        }
    }

    /// Withdraws `proc` from the board at the end of a search, returning any
    /// element that was delivered in the meantime.
    ///
    /// After `cancel` the slot is `Idle` whatever it held, so a late glance
    /// by a donor cannot deliver into a process that stopped searching.
    pub fn cancel(&self, proc: ProcId) -> Option<T> {
        let slot = self.slots.get(proc.index())?;
        let mut state = slot.lock();
        match std::mem::replace(&mut *state, SlotState::Idle) {
            SlotState::Idle => None,
            SlotState::Waiting => {
                self.waiting.fetch_sub(1, Ordering::AcqRel);
                None
            }
            SlotState::Delivered(item) => Some(item),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::thread;

    #[test]
    fn post_take_roundtrip() {
        let board: HintBoard<u32> = HintBoard::new(4);
        assert!(!board.has_waiters());
        assert!(board.post(ProcId::new(2)));
        assert_eq!(board.waiting(), 1);
        assert_eq!(board.try_donate(99), Ok(ProcId::new(2)));
        assert_eq!(board.waiting(), 0);
        assert!(board.delivered(ProcId::new(2)));
        assert_eq!(board.take_delivery(ProcId::new(2)), Some(99));
        assert!(!board.delivered(ProcId::new(2)));
    }

    #[test]
    fn donate_without_waiters_returns_item() {
        let board: HintBoard<u32> = HintBoard::new(4);
        assert_eq!(board.try_donate(7), Err(7));
    }

    #[test]
    fn double_post_is_rejected() {
        let board: HintBoard<u32> = HintBoard::new(2);
        assert!(board.post(ProcId::new(0)));
        assert!(!board.post(ProcId::new(0)));
        assert_eq!(board.waiting(), 1);
    }

    #[test]
    fn cancel_withdraws_waiting() {
        let board: HintBoard<u32> = HintBoard::new(2);
        board.post(ProcId::new(1));
        assert_eq!(board.cancel(ProcId::new(1)), None);
        assert_eq!(board.waiting(), 0);
        assert_eq!(board.try_donate(1), Err(1), "cancelled waiter no longer receives");
    }

    #[test]
    fn cancel_returns_raced_delivery() {
        let board: HintBoard<u32> = HintBoard::new(2);
        board.post(ProcId::new(0));
        assert_eq!(board.try_donate(42), Ok(ProcId::new(0)));
        assert_eq!(board.cancel(ProcId::new(0)), Some(42), "delivery not lost");
        assert_eq!(board.waiting(), 0);
    }

    #[test]
    fn out_of_range_proc_is_a_noop() {
        let board: HintBoard<u32> = HintBoard::new(2);
        assert!(!board.post(ProcId::new(7)));
        assert_eq!(board.cancel(ProcId::new(7)), None);
        assert_eq!(board.take_delivery(ProcId::new(7)), None);
        assert!(!board.delivered(ProcId::new(7)));
    }

    #[test]
    fn donations_rotate_among_waiters() {
        let board: HintBoard<u32> = HintBoard::new(4);
        for p in 0..4 {
            board.post(ProcId::new(p));
        }
        let mut receivers: Vec<usize> =
            (0..4).map(|i| board.try_donate(i).expect("waiters exist").index()).collect();
        receivers.sort_unstable();
        assert_eq!(receivers, vec![0, 1, 2, 3], "every waiter got one donation");
    }

    #[test]
    fn concurrent_donors_and_waiters_conserve_items() {
        let procs = 4;
        let per_donor: u64 = 500;
        let board: HintBoard<u64> = HintBoard::new(procs + 2);
        let received = Counter::new(0);
        let refused = Counter::new(0);

        thread::scope(|s| {
            // Waiters: post, spin for a delivery, repeat.
            for p in 0..procs {
                let board = &board;
                let received = &received;
                s.spawn(move || {
                    let me = ProcId::new(p);
                    loop {
                        board.post(me);
                        let mut spins = 0u32;
                        loop {
                            if let Some(_v) = board.take_delivery(me) {
                                let total = received.fetch_add(1, Ordering::Relaxed) as u64 + 1;
                                if total >= 2 * per_donor {
                                    return;
                                }
                                break;
                            }
                            spins += 1;
                            if spins > 10_000 {
                                // Avoid hanging if donors finished; withdraw.
                                if board.cancel(me).is_some() {
                                    received.fetch_add(1, Ordering::Relaxed);
                                }
                                return;
                            }
                            thread::yield_now();
                        }
                    }
                });
            }
            // Donors.
            for d in 0..2 {
                let board = &board;
                let refused = &refused;
                s.spawn(move || {
                    for i in 0..per_donor {
                        if board.try_donate(d as u64 * per_donor + i).is_err() {
                            refused.fetch_add(1, Ordering::Relaxed);
                        }
                        thread::yield_now();
                    }
                });
            }
        });

        let received = received.load(Ordering::Relaxed) as u64;
        let refused = refused.load(Ordering::Relaxed) as u64;
        // Every donated element was either refused (stays with the donor) or
        // received exactly once; stragglers left in mailboxes were collected
        // by the waiters' cancel path above.
        assert_eq!(received + refused, 2 * per_donor, "no element vanished");
    }
}
