//! The shared steal-engine: the concurrency protocol common to every pool
//! frontend.
//!
//! [`Pool`](crate::Pool) and [`KeyedPool`](crate::KeyedPool) expose
//! different element models (anonymous vs keyed) and different search
//! drivers (pluggable [`SearchPolicy`](crate::search::SearchPolicy) vs a
//! built-in per-key linear walk), but underneath they run the *same*
//! protocol from Kotz & Ellis (1989):
//!
//! 1. **Registration** — processes register with the pool and get a dense
//!    [`ProcId`] plus a home segment (`id mod segments`); deregistration
//!    deposits the process's statistics with the pool ([`Registry`]).
//! 2. **Gate-abort** — a searcher counts probed victims and aborts only
//!    once a *full lap* has been examined while every registered process is
//!    searching ([`SearchSession::should_abort`]).
//! 3. **Two-phase steal-half** — drain ⌈n/2⌉ of the victim under its own
//!    lock, keep one element for the pending remove, then refill the local
//!    segment under *its* lock ([`SearchSession::probe`]). No two segment
//!    locks are ever held at once, so thief/thief or thief/owner deadlock
//!    is impossible by construction.
//! 4. **Timing charges** — every shared-memory access is charged through
//!    the pool's [`Timing`] *before* the access is performed (the
//!    lock/charge discipline of [`timing`](crate::timing)). The engine is
//!    *generic* over the cost model (`&T` where `T: Timing`, never a trait
//!    object), so an uninstrumented pool ([`NullTiming`](crate::NullTiming))
//!    monomorphizes to bare lock/steal code with every charge inlined away,
//!    while runtime-selected models ride the
//!    [`DynTiming`](crate::timing::DynTiming) adapter through the same code.
//! 5. **Per-process statistics** — operation outcomes and latencies are
//!    recorded into a private [`ProcStats`] block ([`OpTimer`]).
//!
//! Keeping all five in one module means later optimisation passes
//! (lock-narrowing, sharding, async frontends, blocking removes) have
//! exactly one hot path to change.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::task::{Poll, Waker};
use std::time::Instant;

use parking_lot::Mutex;

use crate::error::RemoveError;
use crate::gate::{SearchGate, SearchGuard};
use crate::ids::{ProcId, SegIdx};
use crate::notify::{Notifier, WaitOutcome};
use crate::ops::WaitStrategy;
use crate::stats::{PoolStats, ProcStats};
use crate::timing::{Resource, Timing};
use crate::transfer::TransferBatch;

/// Process registration and statistics collection, shared by all pool
/// frontends.
///
/// Owns the [`SearchGate`] because the gate's notion of "every registered
/// process" must match the registry's exactly: a handle registers with both
/// atomically (from the caller's perspective) and retires from both in
/// [`retire`](Self::retire).
#[derive(Debug, Default)]
pub(crate) struct Registry {
    gate: SearchGate,
    next_proc: AtomicUsize,
    collected: Mutex<Vec<(ProcId, ProcStats)>>,
}

impl Registry {
    /// Creates a registry with no registered processes.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The livelock gate.
    pub fn gate(&self) -> &SearchGate {
        &self.gate
    }

    /// Registers a new process: the `i`-th registration gets process id `i`
    /// and home segment `i mod segments` (the paper runs exactly one
    /// process per segment; over-subscription shares segments round-robin).
    pub fn register(&self, segments: usize) -> (ProcId, SegIdx) {
        // Relaxed is enough: the counter only hands out unique indices, and
        // nothing is published through it — the handle's other state is
        // transferred to the owning thread by whatever mechanism moves the
        // handle there, and the gate has its own synchronization.
        let index = self.next_proc.fetch_add(1, Ordering::Relaxed);
        self.gate.register();
        (ProcId::new(index), SegIdx::new(index % segments))
    }

    /// Deregisters a process and deposits its statistics (handle drop).
    pub fn retire(&self, proc: ProcId, stats: ProcStats) {
        self.gate.deregister();
        self.collected.lock().push((proc, stats));
    }

    /// The pool's wakeup channel (owned by the gate; see
    /// [`SearchGate::notifier`]).
    pub fn notifier(&self) -> &Notifier {
        self.gate.notifier()
    }

    /// Statistics of retired processes, ordered by process id.
    pub fn stats(&self) -> PoolStats {
        // Sort the deposits in place (idempotent across calls) and clone
        // only the per-process payloads into the report, instead of cloning
        // the whole collected vec just to sort the copy.
        let mut collected = self.collected.lock();
        collected.sort_by_key(|(proc, _)| *proc);
        PoolStats {
            per_proc: collected.iter().map(|(_, s)| s.clone()).collect(),
            pool: crate::stats::PoolCounters::default(),
        }
    }
}

/// Times one pool operation and records its outcome into [`ProcStats`].
///
/// Created at the top of `add` / `try_remove`; exactly one `finish_*`
/// method is called on every exit path, so the stats identities
/// (`ops == adds + removes + aborted_removes`, histogram counts, ...)
/// hold by construction.
pub(crate) struct OpTimer<'a, T: Timing> {
    timing: &'a T,
    me: ProcId,
    t0: u64,
}

impl<'a, T: Timing> OpTimer<'a, T> {
    /// Starts timing an operation, charging `overhead_ns` of fixed
    /// per-operation computation first (see `PoolBuilder::op_overhead`).
    pub fn start(timing: &'a T, me: ProcId, overhead_ns: u64) -> Self {
        let t0 = timing.now(me);
        if overhead_ns > 0 {
            timing.charge_work(me, overhead_ns);
        }
        OpTimer { timing, me, t0 }
    }

    /// The operation's start time (for frontends that account the whole
    /// remove as search time).
    pub fn t0(&self) -> u64 {
        self.t0
    }

    fn elapsed(&self) -> u64 {
        self.timing.now(self.me).saturating_sub(self.t0)
    }

    /// Completes an add (`donated`: the element went to a searching
    /// process's mailbox instead of the local segment).
    pub fn finish_add(self, stats: &mut ProcStats, donated: bool) {
        let dt = self.elapsed();
        stats.adds += 1;
        if donated {
            stats.donated_adds += 1;
        }
        stats.add_ns += dt;
        stats.add_hist.record(dt);
    }

    /// Completes a remove served from the local segment.
    pub fn finish_local_remove(self, stats: &mut ProcStats) {
        let dt = self.elapsed();
        stats.removes += 1;
        stats.remove_ns += dt;
        stats.remove_hist.record(dt);
    }

    /// Completes a remove satisfied by stealing `stolen` elements; search
    /// time from `search_t0` onwards is charged as steal time.
    pub fn finish_steal_remove(self, stats: &mut ProcStats, stolen: usize, search_t0: u64) {
        let now = self.timing.now(self.me);
        let dt = now.saturating_sub(self.t0);
        stats.removes += 1;
        stats.steals += 1;
        stats.elements_stolen += stolen as u64;
        stats.remove_ns += dt;
        stats.steal_ns += now.saturating_sub(search_t0);
        stats.remove_hist.record(dt);
    }

    /// Completes a remove satisfied by a hint delivery (no steal).
    pub fn finish_hinted_remove(self, stats: &mut ProcStats) {
        let dt = self.elapsed();
        stats.removes += 1;
        stats.hinted_removes += 1;
        stats.remove_ns += dt;
        stats.remove_hist.record(dt);
    }

    /// Completes a remove aborted by the livelock breaker.
    pub fn finish_aborted(self, stats: &mut ProcStats) {
        stats.aborted_removes += 1;
        stats.abort_ns += self.elapsed();
    }

    /// Completes a batched add of `n` elements, `donated` of which went to
    /// searching processes' mailboxes instead of the local segment.
    ///
    /// Statistics count one add per element; the latency histogram records
    /// the batch as a single sample (it is one operation). An empty batch
    /// records nothing, mirroring [`finish_remove_batch`](Self::finish_remove_batch).
    pub fn finish_add_batch(self, stats: &mut ProcStats, n: usize, donated: usize) {
        debug_assert!(donated <= n);
        if n == 0 {
            return;
        }
        let dt = self.elapsed();
        stats.adds += n as u64;
        stats.donated_adds += donated as u64;
        stats.add_ns += dt;
        stats.add_hist.record(dt);
    }

    /// Completes a batched remove that obtained `n` elements without a
    /// steal (the local fast path or a drain sweep).
    ///
    /// An empty batch records nothing: it is a probe, not an operation
    /// outcome (batched removes that fall back to a search account the
    /// search through the ordinary `finish_steal_remove`/`finish_aborted`
    /// paths).
    pub fn finish_remove_batch(self, stats: &mut ProcStats, n: usize) {
        if n == 0 {
            return;
        }
        let dt = self.elapsed();
        stats.removes += n as u64;
        stats.remove_ns += dt;
        stats.remove_hist.record(dt);
    }

    // Magazine-cache hits are recorded clock-free through
    // `ProcStats::record_cached_add`/`record_cached_remove` — no OpTimer:
    // reading the clock would cost more than the cached op it prices.

    /// Completes a remove served by raiding a full magazine out of the
    /// shared depot — a pool-visible source, so it is *not* a magazine
    /// hit; the frontend counts the raid in `depot_exchanges`.
    pub fn finish_depot_remove(self, stats: &mut ProcStats) {
        let dt = self.elapsed();
        stats.removes += 1;
        stats.remove_ns += dt;
        stats.remove_hist.record(dt);
    }
}

/// One search for elements to steal: probe counting, the full-lap abort
/// rule, and the two-phase steal-half transfer.
///
/// Holding a session normally marks the process as searching on the
/// [`SearchGate`] (dropped on every exit path, panic included, via the
/// embedded guard); a *detached* session
/// ([`begin_detached`](Self::begin_detached)) observes the gate without
/// participating in it.
pub(crate) struct SearchSession<'a, T: Timing> {
    timing: &'a T,
    gate: &'a SearchGate,
    me: ProcId,
    home: SegIdx,
    /// Number of probes that constitute one full lap over the victims this
    /// frontend's search visits (all segments for policy searches, all
    /// *remote* segments for the keyed ring walk).
    lap: u64,
    examined: u64,
    nodes_visited: u64,
    started_ns: u64,
    _guard: Option<SearchGuard<'a>>,
}

impl<'a, T: Timing> SearchSession<'a, T> {
    /// Begins a search: records the start time and marks the process as
    /// searching.
    pub fn begin(timing: &'a T, gate: &'a SearchGate, me: ProcId, home: SegIdx, lap: u64) -> Self {
        let started_ns = timing.now(me);
        SearchSession {
            timing,
            gate,
            me,
            home,
            lap,
            examined: 0,
            nodes_visited: 0,
            started_ns,
            _guard: Some(gate.begin_search()),
        }
    }

    /// Begins a search that observes the gate but does **not** register as
    /// a searcher on it.
    ///
    /// This is the async-future search mode. A future is not a registered
    /// process — its poll borrows the thread of whatever executor runs it —
    /// and the gate's §3.2 condition is `searching >= registered`, counted
    /// over *registered* processes. If a future took a [`SearchGuard`], its
    /// `searching` increment without a matching registration would satisfy
    /// the condition while a registered producer sits idle between adds,
    /// aborting parked consumers on a pool that is about to refill. Staying
    /// detached is also sound in the other direction: the §3.2 argument
    /// ("every process searching ⇒ no add in flight") quantifies over
    /// processes that can add, and a pending future never adds. A detached
    /// searcher still *reads* the gate (`gate_abort_now`/`should_abort`)
    /// so it stops searching when the registered fleet has proven the pool
    /// unreachable-empty.
    pub fn begin_detached(
        timing: &'a T,
        gate: &'a SearchGate,
        me: ProcId,
        home: SegIdx,
        lap: u64,
    ) -> Self {
        let started_ns = timing.now(me);
        SearchSession {
            timing,
            gate,
            me,
            home,
            lap,
            examined: 0,
            nodes_visited: 0,
            started_ns,
            _guard: None,
        }
    }

    /// The searching process.
    pub fn proc(&self) -> ProcId {
        self.me
    }

    /// The searcher's home segment.
    pub fn home(&self) -> SegIdx {
        self.home
    }

    /// When the search began (per the pool's clock).
    pub fn started_ns(&self) -> u64 {
        self.started_ns
    }

    /// Victim segments probed so far.
    pub fn examined(&self) -> u64 {
        self.examined
    }

    /// Superimposed-tree nodes visited so far.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited
    }

    /// Probes that constitute one full lap (see [`begin`](Self::begin)).
    pub fn lap(&self) -> u64 {
        self.lap
    }

    /// Whether at least one full lap of victims has been examined.
    pub fn full_lap_done(&self) -> bool {
        self.examined >= self.lap
    }

    /// Whether the gate's all-searching condition holds *right now*,
    /// regardless of this search's probe count.
    ///
    /// The lap-counted [`should_abort`](Self::should_abort) is the rule for
    /// a search in flight; a waiter parked at a lap boundary must use this
    /// raw form instead, because policies may spend abort checks on visits
    /// that examine nothing (the tree's phantom leaves of a
    /// non-power-of-two pool), leaving `examined` short of a formal lap —
    /// and a parked waiter that conditions its wake-up on `full_lap_done`
    /// would then sleep through the very transition that was meant to wake
    /// it.
    pub fn gate_abort_now(&self) -> bool {
        self.gate.all_searching()
    }

    /// §3.2's starvation rule, honored only after the search has examined
    /// at least one full lap of victim segments.
    ///
    /// The paper's processes "search for a long time, examining every
    /// segment possibly several times, before [finding] any elements";
    /// aborting on the first probe the moment every process happens to be
    /// searching would instead turn transient all-searching episodes
    /// (common near-empty, where searches dominate each process's time)
    /// into mass aborts — making sparse-mix operations artificially cheap
    /// and steals artificially rare. After a full lap the abort is also a
    /// *reliable* emptiness signal: the searcher has seen every segment
    /// while no process could have been adding.
    pub fn should_abort(&self) -> bool {
        self.full_lap_done() && self.gate.all_searching()
    }

    /// Charges one access to superimposed-tree node `node`.
    pub fn charge_tree_node(&mut self, node: usize) {
        self.nodes_visited += 1;
        self.timing.charge(self.me, Resource::TreeNode(node));
    }

    /// Probes `victim` with the two-phase steal-half transfer.
    ///
    /// Phase one charges and drains the victim through `drain` (which must
    /// take ⌈n/2⌉ of the victim's `n` elements under the victim's own
    /// lock); one drained element is kept to satisfy the pending remove.
    /// Phase two — only if more than one element was taken — charges the
    /// searcher's home segment and deposits the remainder through `refill`
    /// ("by stealing half of the elements found at the non-empty segment
    /// rather than just enough to satisfy the immediate need, the
    /// searching process is trying to balance the available reserves and
    /// prevent its next request from also having to perform a search").
    /// Because the phases run strictly in sequence, no two segment locks
    /// are ever held at once.
    ///
    /// When the lone drained element already satisfied the remove, the
    /// now-empty batch is **still** handed to `refill` — as a pure
    /// container return, with no home-segment charge and no wakeup. The
    /// in-tree segments only recycle the batch's containers on this path
    /// (the transfer shell into the pool's free list, a spent block into
    /// the home segment's spare stash); without this return leg the
    /// single-element steal would leak its containers to the allocator on
    /// every probe.
    ///
    /// The transfer is generic over the segment family's
    /// [`TransferBatch`] currency — a [`BlockSegment`](crate::BlockSegment)
    /// pool moves whole block handles through here without flattening, a
    /// counting pool moves a bare count — and the engine only ever opens
    /// the batch for the single element it keeps.
    ///
    /// Returns the kept element and the total number stolen, or `None` if
    /// the victim was empty.
    pub fn probe<B: TransferBatch>(
        &mut self,
        victim: SegIdx,
        drain: impl FnOnce() -> B,
        refill: impl FnOnce(B),
    ) -> Option<(B::Item, usize)> {
        self.examined += 1;
        self.timing.charge(self.me, Resource::Segment(victim));
        let mut batch = drain();
        let item = batch.take_one()?;
        let stolen = batch.len() + 1;
        if batch.is_empty() {
            // Container return only: no elements move, so no charge and no
            // wakeup.
            refill(batch);
        } else {
            self.timing.charge(self.me, Resource::Segment(self.home));
            refill(batch);
            // The banked remainder is fresh availability in the thief's
            // segment: wake parked waiters, or they could sleep next to
            // elements nobody signalled (the victim's residue was visible
            // all along, but these elements were in flight while other
            // searchers lapped past both segments).
            self.gate.notifier().notify_all();
        }
        Some((item, stolen))
    }
}

/// The blocking-remove wait controller: what a search does at each **lap
/// boundary** (every [`SearchSession::lap`] fruitless probes) instead of
/// polling straight through.
///
/// Shared by both frontends — [`Pool`](crate::Pool) threads it into its
/// [`SearchEnv`](crate::search::SearchEnv) and [`KeyedPool`](crate::KeyedPool)
/// into its ring walk — so the waiting semantics of
/// [`WaitStrategy`](crate::WaitStrategy) live in exactly one place:
///
/// * `Spin` / `Yield` / `Park` pause per the strategy between laps (the
///   pre-notify polling backoff, kept for virtual-time determinism and as
///   the benchmark baseline);
/// * `Block` parks on the pool's [`Notifier`] under the lost-wakeup-free
///   epoch protocol, waking on the add edge, on close, and on the gate's
///   all-searching transition;
/// * every strategy honors the lap budget (`attempts`) and an optional
///   deadline.
///
/// One controller spans the whole blocking remove: the budget and the
/// backoff round survive a transient gate abort and the retry search that
/// follows it ([`begin_pass`](Self::begin_pass) only resets the per-search
/// lap counter).
pub(crate) struct WaitCtl<'a> {
    notifier: &'a Notifier,
    strategy: WaitStrategy,
    /// Fruitless laps left before the blocking remove gives up.
    remaining: usize,
    deadline: Option<Instant>,
    /// Completed fruitless laps (drives `Park`'s exponential backoff).
    rounds: usize,
    /// Abort-check invocations this search pass. Counted separately from
    /// `session.examined()` because traversals spend checks on visits that
    /// probe nothing (the keyed ring's home skip, the tree's phantom
    /// leaves) — and a single-segment keyed ring probes nothing at all, so
    /// boundaries must be reachable by calls alone when the lap is empty.
    calls: u64,
    /// Set when the deadline expired; the owning remove maps the resulting
    /// abort to [`RemoveError::Timeout`](crate::RemoveError::Timeout).
    pub timed_out: bool,
    /// Set when the lap budget ran out; the abort stays
    /// [`RemoveError::Aborted`](crate::RemoveError::Aborted).
    pub budget_spent: bool,
    /// Set when the pass ended because its wait quantum elapsed (pause
    /// done, or a wakeup reported work) rather than because of the gate or
    /// close. Consumed by [`take_boundary_abort`](Self::take_boundary_abort).
    boundary_abort: bool,
    /// Poll mode ([`new_poll`](Self::new_poll)): instead of parking at a
    /// lap boundary, register this waker on the notifier and end the pass
    /// with `pending` set.
    poll: Option<PollWait<'a>>,
    /// Set when a poll-mode pass ended by registering its waker; the
    /// owning future maps it to `Poll::Pending`. Consumed by
    /// [`take_pending`](Self::take_pending).
    pending: bool,
}

/// The waker half of a poll-mode [`WaitCtl`]: the task waker to register
/// at a fruitless lap boundary and the caller's slot that remembers the
/// resulting ticket across polls (for cancellation on completion, waker
/// replacement, or drop).
struct PollWait<'a> {
    waker: &'a Waker,
    slot: &'a mut Option<u64>,
}

impl<'a> WaitCtl<'a> {
    /// Creates a controller with `attempts` fruitless laps of budget.
    pub fn new(
        notifier: &'a Notifier,
        strategy: WaitStrategy,
        attempts: usize,
        deadline: Option<Instant>,
    ) -> Self {
        WaitCtl {
            notifier,
            strategy,
            remaining: attempts,
            deadline,
            rounds: 0,
            calls: 0,
            timed_out: false,
            budget_spent: false,
            boundary_abort: false,
            poll: None,
            pending: false,
        }
    }

    /// Creates a poll-mode controller for one `Future::poll` invocation.
    ///
    /// Poll mode is [`WaitStrategy::Block`]'s register→re-check protocol
    /// with the park replaced by a waker registration: at a fruitless lap
    /// boundary the controller registers `waker` on the notifier, re-checks
    /// every wake condition, and — if none fired — leaves the registration
    /// armed and reports pending. The lap budget is unbounded (a future's
    /// backpressure is its executor, not an attempt count); `deadline`
    /// still maps to [`RemoveError::Timeout`](crate::RemoveError::Timeout).
    /// A fresh controller per poll is correct because no state needs to
    /// survive between polls except the registration ticket, which lives
    /// in the caller's `slot`.
    pub fn new_poll(
        notifier: &'a Notifier,
        deadline: Option<Instant>,
        waker: &'a Waker,
        slot: &'a mut Option<u64>,
    ) -> Self {
        let mut ctl = WaitCtl::new(notifier, WaitStrategy::Block, usize::MAX, deadline);
        ctl.poll = Some(PollWait { waker, slot });
        ctl
    }

    /// Whether the last pass ended by arming a waker registration
    /// (poll mode only). Consuming read, like
    /// [`take_boundary_abort`](Self::take_boundary_abort).
    pub fn take_pending(&mut self) -> bool {
        std::mem::take(&mut self.pending)
    }

    /// Resets the per-search lap counter before a retry search (the budget,
    /// backoff round, and deadline deliberately carry over).
    pub fn begin_pass(&mut self) {
        self.calls = 0;
    }

    /// Whether the last abort was a mere wait quantum ending (lap pause
    /// done, or a wakeup reported fresh work) — the owning remove must
    /// simply start another pass, re-checking its local segment first.
    /// Consuming read; a gate or close abort never sets it.
    pub fn take_boundary_abort(&mut self) -> bool {
        std::mem::take(&mut self.boundary_abort)
    }

    /// Accounts a pass that ended in a *transient* gate abort (every
    /// process searching, but elements still present): consumes one lap of
    /// budget and pauses the polling strategies, so the `attempts` bound
    /// covers this path too — gate aborts end a search before any lap
    /// boundary, and without the charge here a run of transient aborts
    /// could retry forever at full speed. `Block` skips the pause (work
    /// exists, so the retry pass should chase it immediately) but still
    /// pays budget. Returns `true` when the budget is now spent.
    pub fn on_transient_abort(&mut self) -> bool {
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 {
            self.budget_spent = true;
            return true;
        }
        match self.strategy {
            WaitStrategy::Block => {}
            strategy => {
                strategy.pause(self.rounds);
                self.rounds += 1;
            }
        }
        false
    }

    /// Called from the frontend's abort check after every probe, once the
    /// terminal conditions (gate abort, close) have been ruled out.
    ///
    /// `has_work` answers "could another pass succeed right now?" (a
    /// segment-occupancy snapshot); `woken` covers frontend-specific
    /// reasons to end the search and return to the caller (a hint-board
    /// delivery). Returns `true` when the search must abort — the caller
    /// distinguishes why through [`timed_out`](Self::timed_out) /
    /// [`budget_spent`](Self::budget_spent) /
    /// [`take_boundary_abort`](Self::take_boundary_abort) and its own
    /// terminal checks.
    ///
    /// A lap boundary always **ends the search pass**: after the wait (a
    /// strategy pause, or a park that a signal ended) the owning remove
    /// starts a fresh pass, which re-checks the *local* segment before
    /// searching again. Continuing the same search instead would be blind
    /// to elements that land in the searcher's own segment — remote probes
    /// never visit it — and could lap forever next to its own food.
    pub fn on_probe<T: Timing>(
        &mut self,
        session: &SearchSession<'_, T>,
        has_work: impl Fn() -> bool,
        woken: impl Fn() -> bool,
    ) -> bool {
        self.calls += 1;
        // The boundary needs a full lap by *both* counts: enough calls
        // (reachable even when the lap holds zero probes) and enough
        // examined probes (so the gate's lap-counted abort rule, evaluated
        // by the caller before this hook, always gets the first word on a
        // genuinely terminal lap — no-probe visits would otherwise let the
        // boundary outrun it and burn budget on spurious pass restarts).
        if self.calls < session.lap().max(1) || !session.full_lap_done() {
            return false;
        }
        // A full fruitless lap is done: this is where a blocking remove
        // waits instead of polling on.
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 {
            self.budget_spent = true;
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.timed_out = true;
                return true;
            }
        }
        if let Some(poll) = self.poll.as_mut() {
            // Poll mode: the Block arm's register→re-check protocol with
            // the park replaced by a waker registration. Register first,
            // then re-check every wake condition — any condition made true
            // after the registration signals the notifier, which either
            // drains our waker (waking the task to poll again) or lost the
            // race to this re-check (see `Notifier::register_waker` for
            // the three-case ordering argument).
            let ticket = self.notifier.register_waker(poll.waker);
            *poll.slot = Some(ticket);
            let withdraw = |notifier: &Notifier, slot: &mut Option<u64>| {
                notifier.cancel_waker(ticket);
                *slot = None;
            };
            if self.notifier.is_closed() || session.gate_abort_now() || woken() {
                // Terminal for this pass: let the owning remove map it
                // (close / §3.2 / frontend delivery).
                withdraw(self.notifier, poll.slot);
                return true;
            }
            if has_work() {
                // Fresh work somewhere: resolve this poll with another
                // local-first pass instead of going pending.
                withdraw(self.notifier, poll.slot);
                self.boundary_abort = true;
                return true;
            }
            // Nothing to do: stay registered and report pending. The next
            // signal (add edge, close, gate transition) wakes the task.
            self.pending = true;
            return true;
        }
        match self.strategy {
            WaitStrategy::Block => {
                // Epoch protocol: register as a waiter first, then re-check
                // every wake condition, then park. Any condition made true
                // after the registration signals the notifier and is caught
                // either by the re-check or by `wait` declining to park.
                let mut waiter = self.notifier.waiter();
                loop {
                    if self.notifier.is_closed() {
                        return true;
                    }
                    if session.gate_abort_now() {
                        // The all-searching transition fired while we were
                        // parked (or just before): take the terminal-abort
                        // path. Parked waiters hold their search guard, so
                        // the gate counted us all along. (The raw gate
                        // check, not the lap-counted rule: a policy's
                        // no-probe visits — tree phantom leaves — can leave
                        // `examined` short of a formal lap forever.)
                        return true;
                    }
                    if woken() {
                        return true;
                    }
                    if has_work() {
                        // Fresh work somewhere: end the pass and let the
                        // remove run a new local-first search.
                        self.boundary_abort = true;
                        return true;
                    }
                    match waiter.wait(self.deadline) {
                        WaitOutcome::Signalled => continue,
                        WaitOutcome::TimedOut => {
                            self.timed_out = true;
                            return true;
                        }
                    }
                }
            }
            strategy => {
                // The polling strategies: pause blind, then start the next
                // pass. `rounds` grows the Park backoff across laps.
                strategy.pause(self.rounds);
                self.rounds += 1;
                self.boundary_abort = true;
                true
            }
        }
    }
}

/// The blocking-remove driver shared by every frontend primitive
/// ([`Handle::remove_bounded`](crate::Handle), keyed
/// `remove_key_bounded` / `remove_bounded`): runs search passes through
/// `try_once` until an element arrives or one of the terminal outcomes
/// fires, mapping the controller's state and the pool's lifecycle to the
/// caller-facing error exactly once, in one place.
///
/// `try_once` performs one pass (local check + wait-aware search) and may
/// zero its own per-op overhead after the first call; `drained` is the
/// frontend's reachability snapshot (key-scoped for keyed removes) and
/// `closed` the lifecycle bit. The terminal mapping uses the drained
/// snapshot just taken plus a fresh `closed` read, so a close that an
/// in-search check raced past is still honored.
pub(crate) fn drive_blocking_remove<T>(
    ctl: &mut WaitCtl<'_>,
    mut try_once: impl FnMut(&mut WaitCtl<'_>) -> Result<T, RemoveError>,
    drained: impl Fn() -> bool,
    closed: impl Fn() -> bool,
) -> Result<T, RemoveError> {
    loop {
        match try_once(ctl) {
            Ok(item) => return Ok(item),
            Err(RemoveError::Closed) => return Err(RemoveError::Closed),
            Err(_) => {
                if ctl.timed_out {
                    return Err(RemoveError::Timeout);
                }
                if ctl.budget_spent {
                    return Err(RemoveError::Aborted);
                }
                if ctl.take_boundary_abort() {
                    // A wait quantum ended (pause done, or a wakeup saw
                    // fresh work): the boundary already charged the
                    // budget — just run the next local-first pass.
                    continue;
                }
                if drained() {
                    // §3.2 terminal: every registered process searching
                    // with nothing reachable — no add can be in flight.
                    return Err(if closed() { RemoveError::Closed } else { RemoveError::Aborted });
                }
                // Transient gate abort with elements still present: pay
                // one lap of budget (and a polling pause) before the next
                // pass, so `attempts` bounds this path too.
                if ctl.on_transient_abort() {
                    return Err(RemoveError::Aborted);
                }
            }
        }
    }
}

/// The poll-mode twin of [`drive_blocking_remove`], driving one
/// `Future::poll` invocation: identical terminal mapping, plus the one
/// outcome a blocking remove cannot have — the pass ended by arming a
/// waker registration, which surfaces as `Poll::Pending`.
///
/// `ctl` must be a [`WaitCtl::new_poll`] controller. Ready results are
/// terminal in the future sense: `Ok`, `Closed`, `Timeout`, and the §3.2
/// `Aborted` all end the future; only `Pending` keeps it alive (with its
/// waker armed on the notifier, so the resolving signal is never lost).
pub(crate) fn drive_poll_remove<T>(
    ctl: &mut WaitCtl<'_>,
    mut try_once: impl FnMut(&mut WaitCtl<'_>) -> Result<T, RemoveError>,
    drained: impl Fn() -> bool,
    closed: impl Fn() -> bool,
) -> Poll<Result<T, RemoveError>> {
    loop {
        match try_once(ctl) {
            Ok(item) => return Poll::Ready(Ok(item)),
            Err(RemoveError::Closed) => return Poll::Ready(Err(RemoveError::Closed)),
            Err(_) => {
                if ctl.take_pending() {
                    return Poll::Pending;
                }
                if ctl.timed_out {
                    return Poll::Ready(Err(RemoveError::Timeout));
                }
                if ctl.budget_spent {
                    return Poll::Ready(Err(RemoveError::Aborted));
                }
                if ctl.take_boundary_abort() {
                    continue;
                }
                if drained() {
                    let err = if closed() { RemoveError::Closed } else { RemoveError::Aborted };
                    return Poll::Ready(Err(err));
                }
                if ctl.on_transient_abort() {
                    return Poll::Ready(Err(RemoveError::Aborted));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::NullTiming;

    #[test]
    fn registry_assigns_dense_ids_round_robin() {
        let registry = Registry::new();
        let (p0, s0) = registry.register(2);
        let (p1, s1) = registry.register(2);
        let (p2, s2) = registry.register(2);
        assert_eq!((p0.index(), s0.index()), (0, 0));
        assert_eq!((p1.index(), s1.index()), (1, 1));
        assert_eq!((p2.index(), s2.index()), (2, 0));
        assert_eq!(registry.gate().registered(), 3);
    }

    #[test]
    fn registry_stats_sorted_by_proc_id() {
        let registry = Registry::new();
        let (p0, _) = registry.register(4);
        let (p1, _) = registry.register(4);
        // Retire out of order; stats() must come back in id order.
        registry.retire(p1, ProcStats { adds: 1, ..ProcStats::default() });
        registry.retire(p0, ProcStats { adds: 2, ..ProcStats::default() });
        let stats = registry.stats();
        assert_eq!(stats.per_proc[0].adds, 2);
        assert_eq!(stats.per_proc[1].adds, 1);
        assert_eq!(registry.gate().registered(), 0);
    }

    #[test]
    fn op_timer_exit_paths_keep_stats_identities() {
        let timing = NullTiming::new();
        let me = ProcId::new(0);
        let mut stats = ProcStats::default();
        OpTimer::start(&timing, me, 0).finish_add(&mut stats, false);
        OpTimer::start(&timing, me, 0).finish_add(&mut stats, true);
        OpTimer::start(&timing, me, 0).finish_local_remove(&mut stats);
        let t = OpTimer::start(&timing, me, 0);
        let search_t0 = t.t0();
        t.finish_steal_remove(&mut stats, 5, search_t0);
        OpTimer::start(&timing, me, 0).finish_hinted_remove(&mut stats);
        OpTimer::start(&timing, me, 0).finish_aborted(&mut stats);
        // Batch finishers: per-element counts, one histogram sample per
        // batch, and zero-sized batches recording nothing.
        OpTimer::start(&timing, me, 0).finish_add_batch(&mut stats, 4, 1);
        OpTimer::start(&timing, me, 0).finish_add_batch(&mut stats, 0, 0);
        OpTimer::start(&timing, me, 0).finish_remove_batch(&mut stats, 3);
        OpTimer::start(&timing, me, 0).finish_remove_batch(&mut stats, 0);
        assert_eq!(stats.ops(), stats.adds + stats.removes + stats.aborted_removes);
        assert_eq!(stats.adds, 6);
        assert_eq!(stats.donated_adds, 2);
        assert_eq!(stats.removes, 6);
        assert_eq!(stats.hinted_removes, 1);
        assert_eq!(stats.steals, 1);
        assert_eq!(stats.elements_stolen, 5);
        assert_eq!(stats.aborted_removes, 1);
        assert_eq!(stats.add_hist.count(), 3);
        assert_eq!(stats.remove_hist.count(), 4);
    }

    #[test]
    fn session_aborts_only_after_a_full_lap() {
        let timing = NullTiming::new();
        let gate = SearchGate::new();
        gate.register();
        let mut session = SearchSession::begin(&timing, &gate, ProcId::new(0), SegIdx::new(0), 2);
        assert!(gate.all_searching(), "the lone process is searching");
        assert!(!session.should_abort(), "no probes yet: keep searching");
        let _ = session.probe(SegIdx::new(1), Vec::new, |_: Vec<()>| {});
        assert!(!session.should_abort(), "half a lap: keep searching");
        let _ = session.probe(SegIdx::new(1), Vec::new, |_: Vec<()>| {});
        assert!(session.should_abort(), "full fruitless lap with all searching");
        drop(session);
        assert_eq!(gate.searching(), 0, "guard released on drop");
        gate.deregister();
    }

    #[test]
    fn probe_keeps_one_and_refills_the_rest() {
        let timing = NullTiming::new();
        let gate = SearchGate::new();
        gate.register();
        let mut session = SearchSession::begin(&timing, &gate, ProcId::new(0), SegIdx::new(0), 4);
        let refilled = std::cell::RefCell::new(Vec::new());
        let out = session.probe(
            SegIdx::new(2),
            || vec![10, 11, 12],
            |rest| refilled.borrow_mut().extend(rest),
        );
        assert_eq!(out, Some((12, 3)), "last drained element satisfies the remove");
        assert_eq!(*refilled.borrow(), vec![10, 11], "remainder refills the home segment");
        assert_eq!(session.examined(), 1);
        drop(session);
        gate.deregister();
    }

    #[test]
    fn probe_single_element_refill_is_container_return_only() {
        let timing = NullTiming::new();
        let gate = SearchGate::new();
        gate.register();
        let mut session = SearchSession::begin(&timing, &gate, ProcId::new(0), SegIdx::new(0), 4);
        // The lone element satisfies the remove; the refill leg still runs
        // so the segment can recycle the batch's containers — but it must
        // see an *empty* batch (no elements ever move on this path).
        let refilled = std::cell::Cell::new(false);
        let out = session.probe(
            SegIdx::new(1),
            || vec![7],
            |rest: Vec<i32>| {
                assert!(rest.is_empty(), "a lone element is never re-deposited");
                refilled.set(true);
            },
        );
        assert_eq!(out, Some((7, 1)));
        assert!(refilled.get(), "the container-return leg ran");
        drop(session);
        gate.deregister();
    }
}
