//! The shared steal-engine: the concurrency protocol common to every pool
//! frontend.
//!
//! [`Pool`](crate::Pool) and [`KeyedPool`](crate::KeyedPool) expose
//! different element models (anonymous vs keyed) and different search
//! drivers (pluggable [`SearchPolicy`](crate::search::SearchPolicy) vs a
//! built-in per-key linear walk), but underneath they run the *same*
//! protocol from Kotz & Ellis (1989):
//!
//! 1. **Registration** — processes register with the pool and get a dense
//!    [`ProcId`] plus a home segment (`id mod segments`); deregistration
//!    deposits the process's statistics with the pool ([`Registry`]).
//! 2. **Gate-abort** — a searcher counts probed victims and aborts only
//!    once a *full lap* has been examined while every registered process is
//!    searching ([`SearchSession::should_abort`]).
//! 3. **Two-phase steal-half** — drain ⌈n/2⌉ of the victim under its own
//!    lock, keep one element for the pending remove, then refill the local
//!    segment under *its* lock ([`SearchSession::probe`]). No two segment
//!    locks are ever held at once, so thief/thief or thief/owner deadlock
//!    is impossible by construction.
//! 4. **Timing charges** — every shared-memory access is charged through
//!    the pool's [`Timing`] *before* the access is performed (the
//!    lock/charge discipline of [`timing`](crate::timing)). The engine is
//!    *generic* over the cost model (`&T` where `T: Timing`, never a trait
//!    object), so an uninstrumented pool ([`NullTiming`](crate::NullTiming))
//!    monomorphizes to bare lock/steal code with every charge inlined away,
//!    while runtime-selected models ride the
//!    [`DynTiming`](crate::timing::DynTiming) adapter through the same code.
//! 5. **Per-process statistics** — operation outcomes and latencies are
//!    recorded into a private [`ProcStats`] block ([`OpTimer`]).
//!
//! Keeping all five in one module means later optimisation passes
//! (lock-narrowing, sharding, async frontends, blocking removes) have
//! exactly one hot path to change.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::gate::{SearchGate, SearchGuard};
use crate::ids::{ProcId, SegIdx};
use crate::stats::{PoolStats, ProcStats};
use crate::timing::{Resource, Timing};

/// Process registration and statistics collection, shared by all pool
/// frontends.
///
/// Owns the [`SearchGate`] because the gate's notion of "every registered
/// process" must match the registry's exactly: a handle registers with both
/// atomically (from the caller's perspective) and retires from both in
/// [`retire`](Self::retire).
#[derive(Debug, Default)]
pub(crate) struct Registry {
    gate: SearchGate,
    next_proc: AtomicUsize,
    collected: Mutex<Vec<(ProcId, ProcStats)>>,
}

impl Registry {
    /// Creates a registry with no registered processes.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The livelock gate.
    pub fn gate(&self) -> &SearchGate {
        &self.gate
    }

    /// Registers a new process: the `i`-th registration gets process id `i`
    /// and home segment `i mod segments` (the paper runs exactly one
    /// process per segment; over-subscription shares segments round-robin).
    pub fn register(&self, segments: usize) -> (ProcId, SegIdx) {
        // Relaxed is enough: the counter only hands out unique indices, and
        // nothing is published through it — the handle's other state is
        // transferred to the owning thread by whatever mechanism moves the
        // handle there, and the gate has its own synchronization.
        let index = self.next_proc.fetch_add(1, Ordering::Relaxed);
        self.gate.register();
        (ProcId::new(index), SegIdx::new(index % segments))
    }

    /// Deregisters a process and deposits its statistics (handle drop).
    pub fn retire(&self, proc: ProcId, stats: ProcStats) {
        self.gate.deregister();
        self.collected.lock().push((proc, stats));
    }

    /// Statistics of retired processes, ordered by process id.
    pub fn stats(&self) -> PoolStats {
        // Sort the deposits in place (idempotent across calls) and clone
        // only the per-process payloads into the report, instead of cloning
        // the whole collected vec just to sort the copy.
        let mut collected = self.collected.lock();
        collected.sort_by_key(|(proc, _)| *proc);
        PoolStats { per_proc: collected.iter().map(|(_, s)| s.clone()).collect() }
    }
}

/// Times one pool operation and records its outcome into [`ProcStats`].
///
/// Created at the top of `add` / `try_remove`; exactly one `finish_*`
/// method is called on every exit path, so the stats identities
/// (`ops == adds + removes + aborted_removes`, histogram counts, ...)
/// hold by construction.
pub(crate) struct OpTimer<'a, T: Timing> {
    timing: &'a T,
    me: ProcId,
    t0: u64,
}

impl<'a, T: Timing> OpTimer<'a, T> {
    /// Starts timing an operation, charging `overhead_ns` of fixed
    /// per-operation computation first (see `PoolBuilder::op_overhead`).
    pub fn start(timing: &'a T, me: ProcId, overhead_ns: u64) -> Self {
        let t0 = timing.now(me);
        if overhead_ns > 0 {
            timing.charge_work(me, overhead_ns);
        }
        OpTimer { timing, me, t0 }
    }

    /// The operation's start time (for frontends that account the whole
    /// remove as search time).
    pub fn t0(&self) -> u64 {
        self.t0
    }

    fn elapsed(&self) -> u64 {
        self.timing.now(self.me).saturating_sub(self.t0)
    }

    /// Completes an add (`donated`: the element went to a searching
    /// process's mailbox instead of the local segment).
    pub fn finish_add(self, stats: &mut ProcStats, donated: bool) {
        let dt = self.elapsed();
        stats.adds += 1;
        if donated {
            stats.donated_adds += 1;
        }
        stats.add_ns += dt;
        stats.add_hist.record(dt);
    }

    /// Completes a remove served from the local segment.
    pub fn finish_local_remove(self, stats: &mut ProcStats) {
        let dt = self.elapsed();
        stats.removes += 1;
        stats.remove_ns += dt;
        stats.remove_hist.record(dt);
    }

    /// Completes a remove satisfied by stealing `stolen` elements; search
    /// time from `search_t0` onwards is charged as steal time.
    pub fn finish_steal_remove(self, stats: &mut ProcStats, stolen: usize, search_t0: u64) {
        let now = self.timing.now(self.me);
        let dt = now.saturating_sub(self.t0);
        stats.removes += 1;
        stats.steals += 1;
        stats.elements_stolen += stolen as u64;
        stats.remove_ns += dt;
        stats.steal_ns += now.saturating_sub(search_t0);
        stats.remove_hist.record(dt);
    }

    /// Completes a remove satisfied by a hint delivery (no steal).
    pub fn finish_hinted_remove(self, stats: &mut ProcStats) {
        let dt = self.elapsed();
        stats.removes += 1;
        stats.hinted_removes += 1;
        stats.remove_ns += dt;
        stats.remove_hist.record(dt);
    }

    /// Completes a remove aborted by the livelock breaker.
    pub fn finish_aborted(self, stats: &mut ProcStats) {
        stats.aborted_removes += 1;
        stats.abort_ns += self.elapsed();
    }

    /// Completes a batched add of `n` elements, `donated` of which went to
    /// searching processes' mailboxes instead of the local segment.
    ///
    /// Statistics count one add per element; the latency histogram records
    /// the batch as a single sample (it is one operation). An empty batch
    /// records nothing, mirroring [`finish_remove_batch`](Self::finish_remove_batch).
    pub fn finish_add_batch(self, stats: &mut ProcStats, n: usize, donated: usize) {
        debug_assert!(donated <= n);
        if n == 0 {
            return;
        }
        let dt = self.elapsed();
        stats.adds += n as u64;
        stats.donated_adds += donated as u64;
        stats.add_ns += dt;
        stats.add_hist.record(dt);
    }

    /// Completes a batched remove that obtained `n` elements without a
    /// steal (the local fast path or a drain sweep).
    ///
    /// An empty batch records nothing: it is a probe, not an operation
    /// outcome (batched removes that fall back to a search account the
    /// search through the ordinary `finish_steal_remove`/`finish_aborted`
    /// paths).
    pub fn finish_remove_batch(self, stats: &mut ProcStats, n: usize) {
        if n == 0 {
            return;
        }
        let dt = self.elapsed();
        stats.removes += n as u64;
        stats.remove_ns += dt;
        stats.remove_hist.record(dt);
    }
}

/// One search for elements to steal: probe counting, the full-lap abort
/// rule, and the two-phase steal-half transfer.
///
/// Holding a session marks the process as searching on the [`SearchGate`]
/// (dropped on every exit path, panic included, via the embedded guard).
pub(crate) struct SearchSession<'a, T: Timing> {
    timing: &'a T,
    gate: &'a SearchGate,
    me: ProcId,
    home: SegIdx,
    /// Number of probes that constitute one full lap over the victims this
    /// frontend's search visits (all segments for policy searches, all
    /// *remote* segments for the keyed ring walk).
    lap: u64,
    examined: u64,
    nodes_visited: u64,
    started_ns: u64,
    _guard: SearchGuard<'a>,
}

impl<'a, T: Timing> SearchSession<'a, T> {
    /// Begins a search: records the start time and marks the process as
    /// searching.
    pub fn begin(timing: &'a T, gate: &'a SearchGate, me: ProcId, home: SegIdx, lap: u64) -> Self {
        let started_ns = timing.now(me);
        SearchSession {
            timing,
            gate,
            me,
            home,
            lap,
            examined: 0,
            nodes_visited: 0,
            started_ns,
            _guard: gate.begin_search(),
        }
    }

    /// The searching process.
    pub fn proc(&self) -> ProcId {
        self.me
    }

    /// The searcher's home segment.
    pub fn home(&self) -> SegIdx {
        self.home
    }

    /// When the search began (per the pool's clock).
    pub fn started_ns(&self) -> u64 {
        self.started_ns
    }

    /// Victim segments probed so far.
    pub fn examined(&self) -> u64 {
        self.examined
    }

    /// Superimposed-tree nodes visited so far.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited
    }

    /// Probes that constitute one full lap (see [`begin`](Self::begin)).
    pub fn lap(&self) -> u64 {
        self.lap
    }

    /// Whether at least one full lap of victims has been examined.
    pub fn full_lap_done(&self) -> bool {
        self.examined >= self.lap
    }

    /// §3.2's starvation rule, honored only after the search has examined
    /// at least one full lap of victim segments.
    ///
    /// The paper's processes "search for a long time, examining every
    /// segment possibly several times, before [finding] any elements";
    /// aborting on the first probe the moment every process happens to be
    /// searching would instead turn transient all-searching episodes
    /// (common near-empty, where searches dominate each process's time)
    /// into mass aborts — making sparse-mix operations artificially cheap
    /// and steals artificially rare. After a full lap the abort is also a
    /// *reliable* emptiness signal: the searcher has seen every segment
    /// while no process could have been adding.
    pub fn should_abort(&self) -> bool {
        self.full_lap_done() && self.gate.all_searching()
    }

    /// Charges one access to superimposed-tree node `node`.
    pub fn charge_tree_node(&mut self, node: usize) {
        self.nodes_visited += 1;
        self.timing.charge(self.me, Resource::TreeNode(node));
    }

    /// Probes `victim` with the two-phase steal-half transfer.
    ///
    /// Phase one charges and drains the victim through `drain` (which must
    /// take ⌈n/2⌉ of the victim's `n` elements under the victim's own
    /// lock); one drained element is kept to satisfy the pending remove.
    /// Phase two — only if more than one element was taken — charges the
    /// searcher's home segment and deposits the remainder through `refill`
    /// ("by stealing half of the elements found at the non-empty segment
    /// rather than just enough to satisfy the immediate need, the
    /// searching process is trying to balance the available reserves and
    /// prevent its next request from also having to perform a search").
    /// Because the phases run strictly in sequence, no two segment locks
    /// are ever held at once.
    ///
    /// Returns the kept element and the total number stolen, or `None` if
    /// the victim was empty.
    pub fn probe<I>(
        &mut self,
        victim: SegIdx,
        drain: impl FnOnce() -> Vec<I>,
        refill: impl FnOnce(Vec<I>),
    ) -> Option<(I, usize)> {
        self.examined += 1;
        self.timing.charge(self.me, Resource::Segment(victim));
        let mut batch = drain();
        let item = batch.pop()?;
        let stolen = batch.len() + 1;
        if !batch.is_empty() {
            self.timing.charge(self.me, Resource::Segment(self.home));
            refill(batch);
        }
        Some((item, stolen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::NullTiming;

    #[test]
    fn registry_assigns_dense_ids_round_robin() {
        let registry = Registry::new();
        let (p0, s0) = registry.register(2);
        let (p1, s1) = registry.register(2);
        let (p2, s2) = registry.register(2);
        assert_eq!((p0.index(), s0.index()), (0, 0));
        assert_eq!((p1.index(), s1.index()), (1, 1));
        assert_eq!((p2.index(), s2.index()), (2, 0));
        assert_eq!(registry.gate().registered(), 3);
    }

    #[test]
    fn registry_stats_sorted_by_proc_id() {
        let registry = Registry::new();
        let (p0, _) = registry.register(4);
        let (p1, _) = registry.register(4);
        // Retire out of order; stats() must come back in id order.
        registry.retire(p1, ProcStats { adds: 1, ..ProcStats::default() });
        registry.retire(p0, ProcStats { adds: 2, ..ProcStats::default() });
        let stats = registry.stats();
        assert_eq!(stats.per_proc[0].adds, 2);
        assert_eq!(stats.per_proc[1].adds, 1);
        assert_eq!(registry.gate().registered(), 0);
    }

    #[test]
    fn op_timer_exit_paths_keep_stats_identities() {
        let timing = NullTiming::new();
        let me = ProcId::new(0);
        let mut stats = ProcStats::default();
        OpTimer::start(&timing, me, 0).finish_add(&mut stats, false);
        OpTimer::start(&timing, me, 0).finish_add(&mut stats, true);
        OpTimer::start(&timing, me, 0).finish_local_remove(&mut stats);
        let t = OpTimer::start(&timing, me, 0);
        let search_t0 = t.t0();
        t.finish_steal_remove(&mut stats, 5, search_t0);
        OpTimer::start(&timing, me, 0).finish_hinted_remove(&mut stats);
        OpTimer::start(&timing, me, 0).finish_aborted(&mut stats);
        // Batch finishers: per-element counts, one histogram sample per
        // batch, and zero-sized batches recording nothing.
        OpTimer::start(&timing, me, 0).finish_add_batch(&mut stats, 4, 1);
        OpTimer::start(&timing, me, 0).finish_add_batch(&mut stats, 0, 0);
        OpTimer::start(&timing, me, 0).finish_remove_batch(&mut stats, 3);
        OpTimer::start(&timing, me, 0).finish_remove_batch(&mut stats, 0);
        assert_eq!(stats.ops(), stats.adds + stats.removes + stats.aborted_removes);
        assert_eq!(stats.adds, 6);
        assert_eq!(stats.donated_adds, 2);
        assert_eq!(stats.removes, 6);
        assert_eq!(stats.hinted_removes, 1);
        assert_eq!(stats.steals, 1);
        assert_eq!(stats.elements_stolen, 5);
        assert_eq!(stats.aborted_removes, 1);
        assert_eq!(stats.add_hist.count(), 3);
        assert_eq!(stats.remove_hist.count(), 4);
    }

    #[test]
    fn session_aborts_only_after_a_full_lap() {
        let timing = NullTiming::new();
        let gate = SearchGate::new();
        gate.register();
        let mut session = SearchSession::begin(&timing, &gate, ProcId::new(0), SegIdx::new(0), 2);
        assert!(gate.all_searching(), "the lone process is searching");
        assert!(!session.should_abort(), "no probes yet: keep searching");
        let _ = session.probe(SegIdx::new(1), Vec::new, |_: Vec<()>| {});
        assert!(!session.should_abort(), "half a lap: keep searching");
        let _ = session.probe(SegIdx::new(1), Vec::new, |_: Vec<()>| {});
        assert!(session.should_abort(), "full fruitless lap with all searching");
        drop(session);
        assert_eq!(gate.searching(), 0, "guard released on drop");
        gate.deregister();
    }

    #[test]
    fn probe_keeps_one_and_refills_the_rest() {
        let timing = NullTiming::new();
        let gate = SearchGate::new();
        gate.register();
        let mut session = SearchSession::begin(&timing, &gate, ProcId::new(0), SegIdx::new(0), 4);
        let refilled = std::cell::RefCell::new(Vec::new());
        let out = session.probe(
            SegIdx::new(2),
            || vec![10, 11, 12],
            |rest| refilled.borrow_mut().extend(rest),
        );
        assert_eq!(out, Some((12, 3)), "last drained element satisfies the remove");
        assert_eq!(*refilled.borrow(), vec![10, 11], "remainder refills the home segment");
        assert_eq!(session.examined(), 1);
        drop(session);
        gate.deregister();
    }

    #[test]
    fn probe_single_element_skips_refill_phase() {
        let timing = NullTiming::new();
        let gate = SearchGate::new();
        gate.register();
        let mut session = SearchSession::begin(&timing, &gate, ProcId::new(0), SegIdx::new(0), 4);
        let out =
            session.probe(SegIdx::new(1), || vec![7], |_| panic!("no refill for a lone element"));
        assert_eq!(out, Some((7, 1)));
        drop(session);
        gate.deregister();
    }
}
