//! Async-native pool operations: std-only futures over the notifier.
//!
//! PR 4's [`Notifier`](crate::notify::Notifier) wakes *parked threads*,
//! which ties every blocked consumer to an OS thread — fine for a handful
//! of workers, a non-starter for a server frontend holding thousands of
//! idle consumers. This module is the waker half of that design:
//! [`RemoveFuture`] (and its keyed siblings) run the **same search
//! passes** as a blocking [`remove`](crate::PoolOps::remove) with
//! [`WaitStrategy::Block`](crate::WaitStrategy::Block), but at a
//! fruitless lap boundary they register their task's
//! [`Waker`](std::task::Waker) on the notifier and return
//! `Poll::Pending` instead of parking. One thread can then hold thousands
//! of pending removes — see [`exec::Fleet`] — and the producer's add edge
//! wakes exactly the tasks that were waiting.
//!
//! No runtime dependency: the futures are plain `std::future::Future`s
//! (poll-based, `Unpin`, no timers, no I/O reactor), so they run under
//! any executor. The bundled [`exec`] module provides a minimal std-only
//! [`block_on`](exec::block_on) and the N-futures-per-thread
//! [`Fleet`](exec::Fleet) driver used by the tests, benches, and
//! examples.
//!
//! # Protocol
//!
//! Each `poll` is one or more **register → re-check** rounds, the parking
//! protocol of [`notify`](crate::notify) minus the park (the memory-
//! ordering argument lives on
//! [`Notifier::register_waker`](crate::notify::Notifier::register_waker)):
//!
//! 1. run a local-first search pass (the full steal protocol);
//! 2. at a fruitless lap boundary, register the waker, then re-check
//!    closed / gate / work-present;
//! 3. if a condition fired, cancel the registration and resolve (or run
//!    another pass); otherwise stay registered and return `Pending`.
//!
//! Terminal outcomes from `poll` are exactly the blocking remove's:
//! `Ok(item)`, [`RemoveError::Closed`] once the pool is closed **and
//! drained** (a closed pool's residue resolves pending futures first),
//! [`RemoveError::Timeout`] past a `_timeout` deadline, and
//! [`RemoveError::Aborted`] for the §3.2 livelock breaker. A resolved
//! future must not be polled again (it panics, per the `Future`
//! contract); a dropped future withdraws its waker registration.
//!
//! # Futures are detached searchers
//!
//! A future searches from the home segment of the handle that created it
//! but does **not** count as a searching process on the
//! [`SearchGate`](crate::SearchGate): the gate's §3.2 condition compares
//! `searching` against *registered* processes, and an unregistered
//! searcher inflating the count would abort parked consumers while a
//! registered producer idles between adds. The future still observes the
//! gate, so a fleet-wide §3.2 abort resolves pending futures too. Its
//! statistics stay private to the future, and it does not participate in
//! the hint board (whose mailboxes are per-process and owned by the
//! creating handle).
//!
//! ```
//! use cpool::prelude::*;
//! use cpool::future::exec::block_on;
//!
//! let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
//! let mut producer = pool.register();
//! let consumer = pool.register();
//! producer.add(7);
//! assert_eq!(block_on(consumer.remove_async()), Ok(7));
//! pool.close();
//! assert_eq!(block_on(consumer.remove_async()), Err(RemoveError::Closed));
//! ```

pub mod exec;

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

use crate::core::{drive_poll_remove, WaitCtl};
use crate::error::RemoveError;
use crate::ids::{ProcId, SegIdx};
use crate::keyed::{Key, KeyedShared};
use crate::pool::Shared;
use crate::search::SearchPolicy;
use crate::segment::Segment;
use crate::stats::ProcStats;
use crate::timing::{NullTiming, Timing};

/// A pending remove on a [`Pool`](crate::Pool): resolves to an element,
/// or terminally to a [`RemoveError`] — created by
/// [`Handle::remove_async`](crate::Handle::remove_async) /
/// [`remove_timeout_async`](crate::Handle::remove_timeout_async).
///
/// See the [module docs](self) for the protocol. The future is `Unpin`
/// (its state is ordinary owned data) and panics if polled again after
/// resolving.
pub struct RemoveFuture<S: Segment, P: SearchPolicy, T: Timing = NullTiming> {
    shared: Arc<Shared<S, P, T>>,
    me: ProcId,
    home: SegIdx,
    state: P::State,
    stats: ProcStats,
    /// Armed waker-registration ticket, carried between polls so the next
    /// poll (or drop) can withdraw it.
    slot: Option<u64>,
    deadline: Option<Instant>,
    done: bool,
}

// No field is ever pinned: poll takes the future apart as plain owned
// data, so the future is freely movable regardless of the policy state.
impl<S: Segment, P: SearchPolicy, T: Timing> Unpin for RemoveFuture<S, P, T> {}

impl<S: Segment, P: SearchPolicy, T: Timing> RemoveFuture<S, P, T> {
    pub(crate) fn new(
        shared: Arc<Shared<S, P, T>>,
        me: ProcId,
        home: SegIdx,
        deadline: Option<Instant>,
    ) -> Self {
        let state = shared.init_state(home);
        RemoveFuture {
            shared,
            me,
            home,
            state,
            stats: ProcStats::default(),
            slot: None,
            deadline,
            done: false,
        }
    }

    /// The deadline after which the future resolves with
    /// [`RemoveError::Timeout`], if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> std::fmt::Debug for RemoveFuture<S, P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoveFuture")
            .field("proc", &self.me)
            .field("home", &self.home)
            .field("registered", &self.slot.is_some())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> Future for RemoveFuture<S, P, T> {
    type Output = Result<S::Item, RemoveError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        assert!(!this.done, "RemoveFuture polled after completion");
        let shared = Arc::clone(&this.shared);
        let notifier = shared.notifier();
        if let Some(ticket) = this.slot.take() {
            // A re-poll may carry a different waker (task migrated
            // executors): retire the stale registration so the waker that
            // gets armed below is always the current one.
            notifier.cancel_waker(ticket);
        }
        let mut ctl = WaitCtl::new_poll(notifier, this.deadline, cx.waker(), &mut this.slot);
        let out = drive_poll_remove(
            &mut ctl,
            |ctl| {
                shared.remove_pass(
                    this.me,
                    this.home,
                    &mut this.state,
                    &mut this.stats,
                    true,
                    0,
                    Some(ctl),
                )
            },
            || shared.drained(),
            || notifier.is_closed(),
        );
        if out.is_ready() {
            this.done = true;
            debug_assert!(this.slot.is_none(), "a resolved future holds no registration");
        }
        out
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> Drop for RemoveFuture<S, P, T> {
    fn drop(&mut self) {
        if let Some(ticket) = self.slot.take() {
            self.shared.notifier().cancel_waker(ticket);
        }
    }
}

/// A pending any-key remove on a [`KeyedPool`](crate::KeyedPool):
/// resolves to a `(key, value)` pair — created by
/// [`KeyedHandle::remove_async`](crate::KeyedHandle::remove_async) /
/// [`remove_timeout_async`](crate::KeyedHandle::remove_timeout_async).
///
/// Same protocol and terminal semantics as [`RemoveFuture`]; the search
/// is the keyed frontend's ring walk, resuming each poll from the ring
/// position where the previous pass stopped.
pub struct KeyedRemoveFuture<K: Key, V: Send + 'static, T: Timing = NullTiming> {
    shared: Arc<KeyedShared<K, V, T>>,
    me: ProcId,
    home: SegIdx,
    /// Ring cursor: where the next search pass resumes (the futures-side
    /// analogue of the handle's `last_found_any`).
    cursor: SegIdx,
    stats: ProcStats,
    slot: Option<u64>,
    deadline: Option<Instant>,
    done: bool,
}

impl<K: Key, V: Send + 'static, T: Timing> Unpin for KeyedRemoveFuture<K, V, T> {}

impl<K: Key, V: Send + 'static, T: Timing> KeyedRemoveFuture<K, V, T> {
    pub(crate) fn new(
        shared: Arc<KeyedShared<K, V, T>>,
        me: ProcId,
        home: SegIdx,
        deadline: Option<Instant>,
    ) -> Self {
        KeyedRemoveFuture {
            shared,
            me,
            home,
            cursor: home,
            stats: ProcStats::default(),
            slot: None,
            deadline,
            done: false,
        }
    }

    /// The deadline after which the future resolves with
    /// [`RemoveError::Timeout`], if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl<K: Key, V: Send + 'static, T: Timing> std::fmt::Debug for KeyedRemoveFuture<K, V, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedRemoveFuture")
            .field("proc", &self.me)
            .field("home", &self.home)
            .field("registered", &self.slot.is_some())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<K: Key, V: Send + 'static, T: Timing> Future for KeyedRemoveFuture<K, V, T> {
    type Output = Result<(K, V), RemoveError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        assert!(!this.done, "KeyedRemoveFuture polled after completion");
        let shared = Arc::clone(&this.shared);
        let notifier = shared.notifier();
        if let Some(ticket) = this.slot.take() {
            notifier.cancel_waker(ticket);
        }
        let mut ctl = WaitCtl::new_poll(notifier, this.deadline, cx.waker(), &mut this.slot);
        let out = drive_poll_remove(
            &mut ctl,
            |ctl| {
                shared.remove_any_pass(
                    this.me,
                    this.home,
                    &mut this.cursor,
                    &mut this.stats,
                    true,
                    Some(ctl),
                )
            },
            || shared.drained(),
            || notifier.is_closed(),
        );
        if out.is_ready() {
            this.done = true;
            debug_assert!(this.slot.is_none(), "a resolved future holds no registration");
        }
        out
    }
}

impl<K: Key, V: Send + 'static, T: Timing> Drop for KeyedRemoveFuture<K, V, T> {
    fn drop(&mut self) {
        if let Some(ticket) = self.slot.take() {
            self.shared.notifier().cancel_waker(ticket);
        }
    }
}

/// A pending key-scoped remove on a [`KeyedPool`](crate::KeyedPool):
/// resolves to a value under one specific key — created by
/// [`KeyedHandle::remove_key_async`](crate::KeyedHandle::remove_key_async) /
/// [`remove_key_timeout_async`](crate::KeyedHandle::remove_key_timeout_async).
///
/// Same protocol as [`RemoveFuture`], with the wait scoped to the key:
/// the future goes pending while *this key* has no reachable elements
/// (other keys' traffic wakes it only to re-check and re-register), and
/// the terminal `Closed`/`Aborted` mapping uses the key-scoped drained
/// snapshot.
pub struct RemoveKeyFuture<K: Key, V: Send + 'static, T: Timing = NullTiming> {
    shared: Arc<KeyedShared<K, V, T>>,
    me: ProcId,
    home: SegIdx,
    key: K,
    cursor: SegIdx,
    stats: ProcStats,
    slot: Option<u64>,
    deadline: Option<Instant>,
    done: bool,
}

impl<K: Key, V: Send + 'static, T: Timing> Unpin for RemoveKeyFuture<K, V, T> {}

impl<K: Key, V: Send + 'static, T: Timing> RemoveKeyFuture<K, V, T> {
    pub(crate) fn new(
        shared: Arc<KeyedShared<K, V, T>>,
        me: ProcId,
        home: SegIdx,
        key: K,
        deadline: Option<Instant>,
    ) -> Self {
        RemoveKeyFuture {
            shared,
            me,
            home,
            key,
            cursor: home,
            stats: ProcStats::default(),
            slot: None,
            deadline,
            done: false,
        }
    }

    /// The key this future removes under.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The deadline after which the future resolves with
    /// [`RemoveError::Timeout`], if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl<K: Key, V: Send + 'static, T: Timing> std::fmt::Debug for RemoveKeyFuture<K, V, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoveKeyFuture")
            .field("proc", &self.me)
            .field("home", &self.home)
            .field("registered", &self.slot.is_some())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<K: Key, V: Send + 'static, T: Timing> Future for RemoveKeyFuture<K, V, T> {
    type Output = Result<V, RemoveError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        assert!(!this.done, "RemoveKeyFuture polled after completion");
        let shared = Arc::clone(&this.shared);
        let notifier = shared.notifier();
        if let Some(ticket) = this.slot.take() {
            notifier.cancel_waker(ticket);
        }
        let mut ctl = WaitCtl::new_poll(notifier, this.deadline, cx.waker(), &mut this.slot);
        let key = &this.key;
        let out = drive_poll_remove(
            &mut ctl,
            |ctl| {
                shared.remove_key_pass(
                    this.me,
                    this.home,
                    key,
                    &mut this.cursor,
                    &mut this.stats,
                    true,
                    Some(ctl),
                )
            },
            || shared.drained_key(key),
            || notifier.is_closed(),
        );
        if out.is_ready() {
            this.done = true;
            debug_assert!(this.slot.is_none(), "a resolved future holds no registration");
        }
        out
    }
}

impl<K: Key, V: Send + 'static, T: Timing> Drop for RemoveKeyFuture<K, V, T> {
    fn drop(&mut self) {
        if let Some(ticket) = self.slot.take() {
            self.shared.notifier().cancel_waker(ticket);
        }
    }
}
