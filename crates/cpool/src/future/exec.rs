//! A minimal std-only executor: [`block_on`] for one future, [`Fleet`]
//! for driving N pool futures on a single thread.
//!
//! This is deliberately not a general-purpose runtime — no I/O reactor,
//! no timer wheel, no work stealing. It exists so the crate's async
//! operations can be exercised (tests, benches, examples) and embedded
//! (a worker thread of a server frontend) without any external runtime
//! dependency. Both drivers are **timer-less**: a `_timeout` future's
//! deadline is checked inside its own `poll`, so while tasks are pending
//! the drivers park with a coarse tick ([`TICK`]) and re-poll on expiry,
//! trading at most one tick of deadline latency for not maintaining a
//! timer queue. Runtimes with real timers would instead race their own
//! sleep primitive against the untimed future.
//!
//! [`Fleet`] is the one-thread-many-waiters shape the async layer exists
//! for: each spawned future gets a fixed task slot and a reusable waker;
//! a wake pushes the slot index onto a ready queue (deduplicated by an
//! atomic flag, so notify storms cost one queue entry per task), and the
//! driver polls exactly the woken tasks. Steady-state wake/re-poll cycles
//! allocate nothing; see `tests/alloc_async.rs`.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;
use std::time::Duration;

use parking_lot::Mutex;

/// How long the drivers park between re-polls while tasks are pending
/// and no wake has arrived: the deadline-check granularity for
/// `_timeout` futures (see the module docs).
pub const TICK: Duration = Duration::from_millis(1);

/// Wakes [`block_on`]'s thread: a flag (so a wake that lands between the
/// poll and the park is not lost) plus an unpark.
struct ThreadWaker {
    thread: Thread,
    woken: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

/// Runs a future to completion on the calling thread.
///
/// Parks between polls, waking on the future's waker or after [`TICK`]
/// (so in-poll deadline checks fire — see the module docs). The future
/// need not be `Unpin`; it is boxed once per call.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = Box::pin(fut);
    let state =
        Arc::new(ThreadWaker { thread: std::thread::current(), woken: AtomicBool::new(false) });
    let waker = Waker::from(Arc::clone(&state));
    let mut cx = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
            return out;
        }
        // Sleep only if no wake raced in since the poll started; the
        // `park` token absorbs an unpark that lands after this check.
        if !state.woken.swap(false, Ordering::SeqCst) {
            std::thread::park_timeout(TICK);
        }
    }
}

/// The ready queue shared by a [`Fleet`] and its task wakers: indices of
/// tasks whose wakers fired, plus the driver thread to unpark.
struct ReadyQueue {
    ready: Mutex<Vec<usize>>,
    driver: Thread,
}

impl ReadyQueue {
    fn push(&self, index: usize) {
        self.ready.lock().push(index);
        self.driver.unpark();
    }
}

/// One task's waker state: pushing the slot index on wake, deduplicated
/// so a notify storm enqueues each task at most once per poll round.
struct TaskWaker {
    queue: Arc<ReadyQueue>,
    index: usize,
    /// Set while the task sits in the ready queue (or is being polled);
    /// wakes while set are collapsed into the pending poll.
    queued: AtomicBool,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::SeqCst) {
            self.queue.push(self.index);
        }
    }
}

/// A spawned task: the future (until it resolves) and its reusable waker.
struct TaskSlot<F> {
    fut: Option<F>,
    state: Arc<TaskWaker>,
    waker: Waker,
}

/// Drives N futures on the constructing thread — the one-thread,
/// thousands-of-pending-removes driver.
///
/// Spawn futures with [`spawn`](Self::spawn) (each gets a stable task id),
/// then either [`drive`](Self::drive) to completion or interleave
/// [`poll_ready`](Self::poll_ready) rounds with other work (a producer
/// step, a bench measurement). All polling happens on the thread that
/// calls in; wakes may arrive from any thread.
///
/// Completed tasks report through the `on_complete` callback with their
/// task id. Task slots are not recycled (ids stay stable for the fleet's
/// lifetime), so a fleet is meant per batch of work, not as a long-lived
/// reactor.
pub struct Fleet<F: Future + Unpin> {
    tasks: Vec<TaskSlot<F>>,
    queue: Arc<ReadyQueue>,
    /// Scratch buffer the ready queue is swapped into each round (reused,
    /// so draining allocates nothing in steady state).
    scratch: Vec<usize>,
    pending: usize,
}

impl<F: Future + Unpin> std::fmt::Debug for Fleet<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("tasks", &self.tasks.len())
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

impl<F: Future + Unpin> Default for Fleet<F> {
    fn default() -> Self {
        Fleet::new()
    }
}

impl<F: Future + Unpin> Fleet<F> {
    /// Creates an empty fleet driven by the calling thread.
    pub fn new() -> Self {
        Fleet {
            tasks: Vec::new(),
            queue: Arc::new(ReadyQueue {
                ready: Mutex::new(Vec::new()),
                driver: std::thread::current(),
            }),
            scratch: Vec::new(),
            pending: 0,
        }
    }

    /// Adds a future to the fleet and returns its task id. The task is
    /// queued for its initial poll by the next drive round; nothing runs
    /// until the driver is called.
    pub fn spawn(&mut self, fut: F) -> usize {
        let index = self.tasks.len();
        let state = Arc::new(TaskWaker {
            queue: Arc::clone(&self.queue),
            index,
            // Born queued: the initial poll is enqueued below, and wakes
            // before it runs fold into it.
            queued: AtomicBool::new(true),
        });
        let waker = Waker::from(Arc::clone(&state));
        self.tasks.push(TaskSlot { fut: Some(fut), state, waker });
        self.queue.ready.lock().push(index);
        self.pending += 1;
        index
    }

    /// Number of spawned tasks that have not yet resolved.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total tasks ever spawned (resolved or not).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the fleet has no tasks at all.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Polls every task whose waker fired since the last round (one
    /// non-blocking dispatch round). Completed tasks invoke `on_complete`
    /// with their task id and output. Returns how many tasks completed.
    pub fn poll_ready(&mut self, mut on_complete: impl FnMut(usize, F::Output)) -> usize {
        debug_assert!(self.scratch.is_empty());
        std::mem::swap(&mut *self.queue.ready.lock(), &mut self.scratch);
        let mut completed = 0;
        for i in 0..self.scratch.len() {
            let index = self.scratch[i];
            completed += self.poll_task(index, &mut on_complete) as usize;
        }
        self.scratch.clear();
        completed
    }

    /// Polls every still-pending task unconditionally — the tick-expiry
    /// sweep that lets in-poll deadline checks fire without a timer queue.
    fn poll_all(&mut self, on_complete: &mut impl FnMut(usize, F::Output)) {
        for index in 0..self.tasks.len() {
            if self.tasks[index].fut.is_some() {
                // Mark queued so a wake racing with this sweep folds into
                // it instead of double-polling.
                self.tasks[index].state.queued.store(true, Ordering::SeqCst);
                self.poll_task(index, on_complete);
            }
        }
        // The sweep visited everything the queue could name.
        self.queue.ready.lock().clear();
    }

    fn poll_task(&mut self, index: usize, on_complete: &mut impl FnMut(usize, F::Output)) -> bool {
        let slot = &mut self.tasks[index];
        let Some(fut) = slot.fut.as_mut() else {
            // A wake raced the task's completion: nothing to poll.
            slot.state.queued.store(false, Ordering::SeqCst);
            return false;
        };
        // Clear the dedup flag *before* polling: a wake that lands during
        // the poll (a signal from another thread) must re-enqueue, or the
        // task could go pending having just missed its wake.
        slot.state.queued.store(false, Ordering::SeqCst);
        let mut cx = Context::from_waker(&slot.waker);
        match Pin::new(fut).poll(&mut cx) {
            Poll::Ready(out) => {
                slot.fut = None;
                self.pending -= 1;
                on_complete(index, out);
                true
            }
            Poll::Pending => false,
        }
    }

    /// Drives the fleet until every task has resolved, parking between
    /// rounds (woken by task wakers, or after [`TICK`] for the deadline
    /// sweep). Completed tasks invoke `on_complete` with their task id.
    pub fn drive(&mut self, mut on_complete: impl FnMut(usize, F::Output)) {
        while self.pending > 0 {
            if self.poll_ready(&mut on_complete) > 0 {
                continue;
            }
            if self.pending == 0 {
                break;
            }
            if self.queue.ready.lock().is_empty() {
                std::thread::park_timeout(TICK);
            }
            if self.queue.ready.lock().is_empty() {
                // Tick expired with no wake: sweep so deadlines resolve.
                self.poll_all(&mut on_complete);
            }
        }
    }

    /// [`drive`](Self::drive), collecting `(task_id, output)` pairs in
    /// completion order.
    pub fn drive_collect(&mut self) -> Vec<(usize, F::Output)> {
        let mut out = Vec::with_capacity(self.pending);
        self.drive(|id, result| out.push((id, result)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A future that goes pending `n` times (waking itself immediately)
    /// before resolving.
    struct Hiccup {
        remaining: u32,
        value: u32,
    }

    impl Future for Hiccup {
        type Output = u32;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
            if self.remaining == 0 {
                Poll::Ready(self.value)
            } else {
                self.remaining -= 1;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_drives_self_waking_future() {
        assert_eq!(block_on(Hiccup { remaining: 3, value: 7 }), 7);
    }

    #[test]
    fn fleet_drives_all_tasks_and_reports_ids() {
        let mut fleet = Fleet::new();
        for i in 0..32u32 {
            fleet.spawn(Hiccup { remaining: i % 4, value: i });
        }
        assert_eq!(fleet.pending(), 32);
        let mut out = fleet.drive_collect();
        assert_eq!(fleet.pending(), 0);
        out.sort_unstable();
        let expect: Vec<(usize, u32)> = (0..32u32).map(|i| (i as usize, i)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fleet_poll_ready_is_incremental() {
        let mut fleet = Fleet::new();
        fleet.spawn(Hiccup { remaining: 1, value: 1 });
        let mut done = Vec::new();
        // First round: the task re-queues itself via its own waker.
        assert_eq!(fleet.poll_ready(|id, v| done.push((id, v))), 0);
        assert_eq!(fleet.pending(), 1);
        // Second round: resolves.
        assert_eq!(fleet.poll_ready(|id, v| done.push((id, v))), 1);
        assert_eq!(done, vec![(0, 1)]);
        assert_eq!(fleet.pending(), 0);
    }
}
