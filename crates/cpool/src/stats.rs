//! Operation statistics: the measurements of §3.4.
//!
//! "In addition to measuring the actual times for add and remove
//! operations, the following measurements were taken from the simulation:
//! the number of segments examined per steal, the number of elements stolen
//! per steal, the percentage of remove operations that required a steal,
//! \[and\] the frequency of steal operations."
//!
//! Each process accumulates a private [`ProcStats`] (no cross-process
//! contention on the measurement path); the pool merges them into a
//! [`PoolStats`] when handles are dropped.

/// A log₂-bucketed latency histogram.
///
/// Bucket `i` counts samples `v` with `v.ilog2() == i` (bucket 0 also takes
/// `v == 0`), giving ~2× resolution over the full `u64` range in 64 fixed
/// slots — enough to read off medians and tails of operation times.
///
/// ```
/// use cpool::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(1000));
/// assert!(h.mean().unwrap() > 200.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 { 0 } else { value.ilog2() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1).
    ///
    /// The value is exact to within the 2× bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper edge of bucket i, clamped to the observed max.
                let edge = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Some(edge.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-process operation statistics.
///
/// All time fields are in nanoseconds of whatever clock the pool's
/// [`Timing`](crate::timing::Timing) provides (wall-clock or virtual).
#[derive(Clone, Debug, Default)]
pub struct ProcStats {
    /// Completed add operations.
    pub adds: u64,
    /// Completed remove operations (local or via steal).
    pub removes: u64,
    /// Remove operations aborted by the livelock breaker.
    pub aborted_removes: u64,
    /// Successful steals (every one satisfied exactly one remove).
    pub steals: u64,
    /// Adds that were donated straight to a searching process instead of
    /// landing in the local segment (hint extension; see `cpool::hints`).
    pub donated_adds: u64,
    /// Removes satisfied by a hint delivery rather than a steal.
    pub hinted_removes: u64,
    /// Segment probes performed during searches (successful and aborted).
    pub segments_examined: u64,
    /// Total elements taken from victims over all steals.
    pub elements_stolen: u64,
    /// Superimposed-tree node visits (zero for linear/random search).
    pub tree_nodes_visited: u64,
    /// Operations absorbed by the handle-local magazine cache — adds
    /// cached and removes served without touching pool-shared state (see
    /// `cpool::magazine`).
    pub magazine_hits: u64,
    /// Full-magazine round trips with the shared depot: producer-side
    /// stashes, consumer-side claims, and search-side raids.
    pub depot_exchanges: u64,
    /// Magazine flushes forced by the waiter-present check — a producer
    /// saw parked or async removers and published its cached elements
    /// instead of growing its magazines.
    pub flush_on_wait: u64,
    /// Total time spent in add operations.
    pub add_ns: u64,
    /// Total time spent in successful remove operations (including their
    /// searches).
    pub remove_ns: u64,
    /// Total time spent searching within successful steals.
    pub steal_ns: u64,
    /// Total time spent in aborted removes.
    pub abort_ns: u64,
    /// Latency histogram of add operations.
    pub add_hist: Histogram,
    /// Latency histogram of successful remove operations.
    pub remove_hist: Histogram,
}

impl ProcStats {
    /// Total operations this process completed (adds + removes + aborts).
    ///
    /// Aborted removes count as operations: they consumed a slot of the
    /// experiment's operation budget, exactly as in the paper's stressful
    /// 0%-adds runs.
    pub fn ops(&self) -> u64 {
        self.adds + self.removes + self.aborted_removes
    }

    /// Fraction of operations that were adds — the *measured job mix*.
    ///
    /// For producer/consumer workloads this is how Figure 2 places a
    /// producer count on the job-mix axis.
    pub fn measured_mix(&self) -> Option<f64> {
        let ops = self.ops();
        (ops > 0).then(|| self.adds as f64 / ops as f64)
    }

    /// "The percentage of remove operations that required a steal."
    pub fn steal_fraction(&self) -> Option<f64> {
        let attempts = self.removes + self.aborted_removes;
        (attempts > 0).then(|| self.steals as f64 / attempts as f64)
    }

    /// Mean segments examined per steal attempt that ran a search.
    pub fn segments_per_steal(&self) -> Option<f64> {
        let searches = self.steals + self.aborted_removes;
        (searches > 0).then(|| self.segments_examined as f64 / searches as f64)
    }

    /// Mean elements stolen per successful steal.
    pub fn elements_per_steal(&self) -> Option<f64> {
        (self.steals > 0).then(|| self.elements_stolen as f64 / self.steals as f64)
    }

    /// Fraction of completed adds and removes absorbed by the handle-local
    /// magazine cache (zero unless the pool was built with
    /// `handle_cache(depth)`).
    pub fn magazine_hit_fraction(&self) -> Option<f64> {
        let ops = self.adds + self.removes;
        (ops > 0).then(|| self.magazine_hits as f64 / ops as f64)
    }

    /// Records an add absorbed by the handle-local magazine cache.
    ///
    /// Cached operations are deliberately *not* clocked: the op is a
    /// handful of thread-local instructions, and reading the wall clock to
    /// price it costs more than the op itself (two `Timing::now` calls
    /// dominated the fast path before this). They count in `adds` and
    /// `magazine_hits`, and enter the latency histogram as 0 ns — so
    /// `avg_add_ns` honestly reflects that cached ops are ~free while the
    /// histogram's upper buckets still price the shared-path ops.
    pub(crate) fn record_cached_add(&mut self) {
        self.adds += 1;
        self.magazine_hits += 1;
        self.add_hist.record(0);
    }

    /// Records a remove served from the handle-local magazine cache;
    /// see [`record_cached_add`](Self::record_cached_add) for why it is
    /// unclocked.
    pub(crate) fn record_cached_remove(&mut self) {
        self.removes += 1;
        self.magazine_hits += 1;
        self.remove_hist.record(0);
    }

    /// Fraction of adds that were donated to searchers (hint extension).
    pub fn donation_fraction(&self) -> Option<f64> {
        (self.adds > 0).then(|| self.donated_adds as f64 / self.adds as f64)
    }

    /// Fraction of completed removes satisfied by a hint delivery.
    pub fn hinted_fraction(&self) -> Option<f64> {
        (self.removes > 0).then(|| self.hinted_removes as f64 / self.removes as f64)
    }

    /// Mean add latency in nanoseconds.
    pub fn avg_add_ns(&self) -> Option<f64> {
        (self.adds > 0).then(|| self.add_ns as f64 / self.adds as f64)
    }

    /// Mean successful-remove latency in nanoseconds.
    pub fn avg_remove_ns(&self) -> Option<f64> {
        (self.removes > 0).then(|| self.remove_ns as f64 / self.removes as f64)
    }

    /// Mean latency over *all* operations (adds, removes, aborts) — the
    /// y-axis of Figure 2.
    pub fn avg_op_ns(&self) -> Option<f64> {
        let ops = self.ops();
        (ops > 0).then(|| (self.add_ns + self.remove_ns + self.abort_ns) as f64 / ops as f64)
    }

    /// Merges another process's statistics into this one.
    pub fn merge(&mut self, other: &ProcStats) {
        self.adds += other.adds;
        self.removes += other.removes;
        self.aborted_removes += other.aborted_removes;
        self.steals += other.steals;
        self.donated_adds += other.donated_adds;
        self.hinted_removes += other.hinted_removes;
        self.segments_examined += other.segments_examined;
        self.elements_stolen += other.elements_stolen;
        self.tree_nodes_visited += other.tree_nodes_visited;
        self.magazine_hits += other.magazine_hits;
        self.depot_exchanges += other.depot_exchanges;
        self.flush_on_wait += other.flush_on_wait;
        self.add_ns += other.add_ns;
        self.remove_ns += other.remove_ns;
        self.steal_ns += other.steal_ns;
        self.abort_ns += other.abort_ns;
        self.add_hist.merge(&other.add_hist);
        self.remove_hist.merge(&other.remove_hist);
    }
}

/// Pool-wide event counters that belong to no single process — the keyed
/// frontend's bucket-residency and hot-key accounting. Zero for plain
/// pools; filled in by [`KeyedPool::stats`](crate::KeyedPool::stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Empty buckets evicted past the resident-buckets bound (see
    /// [`KeyedPoolBuilder::resident_buckets_max`](crate::KeyedPoolBuilder::resident_buckets_max)).
    pub bucket_evictions: u64,
    /// Buckets split into sub-shards by hot-key detection (or manual
    /// promotion), cumulative.
    pub hotkey_promotions: u64,
    /// Split buckets merged back to plain, cumulative.
    pub hotkey_demotions: u64,
    /// Currently split buckets across all segments (a gauge, not a
    /// counter).
    pub hot_buckets: u64,
}

/// Statistics for a whole pool run: one entry per (dropped) process handle,
/// in registration order, plus their merge and the pool-wide counters.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Per-process statistics, indexed by process id.
    pub per_proc: Vec<ProcStats>,
    /// Pool-wide counters (keyed-frontend residency and hot-key events).
    pub pool: PoolCounters,
}

impl PoolStats {
    /// Merges all per-process statistics into one.
    pub fn merged(&self) -> ProcStats {
        let mut total = ProcStats::default();
        for stats in &self.per_proc {
            total.merge(stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_quantiles_bracket_median() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5).unwrap();
        // Median 500 lives in bucket 8 (256..512): upper edge 511.
        assert_eq!(q50, 511);
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [3u64, 17, 900, 0, 65535] {
            a.record(v);
            c.record(v);
        }
        for v in [8u64, 1, 1 << 40] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.quantile(0.5), c.quantile(0.5));
    }

    #[test]
    fn histogram_zero_goes_to_first_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.quantile(0.5), Some(0), "quantile clamps to observed max");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        let _ = Histogram::new().quantile(1.5);
    }

    fn sample_stats() -> ProcStats {
        ProcStats {
            adds: 60,
            removes: 40,
            aborted_removes: 10,
            steals: 8,
            segments_examined: 80,
            elements_stolen: 64,
            add_ns: 600,
            remove_ns: 4000,
            steal_ns: 3000,
            abort_ns: 1000,
            ..ProcStats::default()
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample_stats();
        assert_eq!(s.ops(), 110);
        assert!((s.measured_mix().unwrap() - 60.0 / 110.0).abs() < 1e-12);
        assert!((s.steal_fraction().unwrap() - 8.0 / 50.0).abs() < 1e-12);
        assert!((s.segments_per_steal().unwrap() - 80.0 / 18.0).abs() < 1e-12);
        assert!((s.elements_per_steal().unwrap() - 8.0).abs() < 1e-12);
        assert!((s.avg_add_ns().unwrap() - 10.0).abs() < 1e-12);
        assert!((s.avg_remove_ns().unwrap() - 100.0).abs() < 1e-12);
        assert!((s.avg_op_ns().unwrap() - 5600.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_derive_none() {
        let s = ProcStats::default();
        assert_eq!(s.ops(), 0);
        assert_eq!(s.measured_mix(), None);
        assert_eq!(s.steal_fraction(), None);
        assert_eq!(s.segments_per_steal(), None);
        assert_eq!(s.elements_per_steal(), None);
        assert_eq!(s.avg_op_ns(), None);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = sample_stats();
        let b = sample_stats();
        a.merge(&b);
        assert_eq!(a.adds, 120);
        assert_eq!(a.ops(), 220);
        assert_eq!(a.elements_per_steal(), Some(8.0));
    }

    #[test]
    fn pool_stats_merged() {
        let pool = PoolStats {
            per_proc: vec![sample_stats(), sample_stats(), sample_stats()],
            pool: PoolCounters::default(),
        };
        let merged = pool.merged();
        assert_eq!(merged.ops(), 330);
        assert_eq!(merged.steals, 24);
    }
}
