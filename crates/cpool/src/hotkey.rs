//! Hot-key detection: a sampled key-frequency window with hysteresis.
//!
//! The paper's keyed pools assume uniform key traffic, but real key
//! distributions are Zipfian: one hot key can serialize every producer and
//! consumer behind a single bucket while the rest of the pool idles. This
//! module supplies the *detection* half of the keyed frontend's adaptive
//! response (the *reaction* — splitting a hot bucket into independently
//! locked sub-shards — lives in [`keyed`](crate::keyed)):
//!
//! * **Sampling** is pelikan-style cheap and *producer-side*: each handle
//!   counts its own adds and feeds every
//!   [`sample_every`](HotKeyConfig::sample_every)-th added key into the
//!   detector, so the unsampled add path pays one branch and an increment
//!   — no shared atomics, no lock — and every remove flavor pays nothing
//!   at all. Adds are a faithful heat proxy: an element must be added
//!   before it can be removed.
//! * The detector keeps a fixed **ring-buffer window** of the last
//!   [`window`](HotKeyConfig::window) sampled keys plus an exact per-key
//!   count over that window. Recording a sample evicts the oldest one, so
//!   heat decays automatically as traffic moves on — no timer, no epochs.
//! * **Hysteresis**: a bucket is *promoted* (split) when its key reaches
//!   [`promote_pct`](HotKeyConfig::promote_pct) of the window and *demoted*
//!   (merged back) only when it falls below the strictly lower
//!   [`demote_pct`](HotKeyConfig::demote_pct), so a key oscillating around
//!   one threshold does not thrash split/merge cycles.
//!
//! The window is pre-allocated and per-key counts reuse their map nodes
//! while a key stays in the window, so steady-state sampling of a stable
//! hot set allocates nothing (asserted by `tests/alloc_steal.rs`).

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Tuning knobs for hot-key detection on a keyed pool — see
/// [`KeyedPoolBuilder::hot_keys`](crate::KeyedPoolBuilder::hot_keys).
///
/// The defaults target a Zipfian (s ≈ 1.1) workload: with a 256-sample
/// window, `promote_pct = 2` splits keys drawing at least ~2% of all
/// traffic (the top half-dozen ranks of a Zipf(1.1) stream over a few
/// hundred keys — together over a third of it), and `demote_pct = 1`
/// merges them back once they cool to background levels. Uniform traffic
/// over even a few dozen keys sits far below the promote threshold and
/// never splits anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotKeyConfig {
    /// Sample one in this many adds per handle (≥ 1). Larger values cost
    /// less on the unsampled fast path but react slower.
    pub sample_every: u32,
    /// Ring-buffer window size in samples (≥ 8). Heat is a key's share of
    /// this window; the window is the decay horizon.
    pub window: usize,
    /// Sub-shards a hot bucket splits into (≥ 2) — the `K` independently
    /// locked lanes adds rotate across and removes drain from.
    pub sub_shards: usize,
    /// Promote (split) a bucket once its key reaches this percentage of
    /// the sample window (`1..=100`).
    pub promote_pct: u32,
    /// Demote (merge) a split bucket once its key falls below this
    /// percentage of the sample window; must be strictly below
    /// [`promote_pct`](Self::promote_pct) — the gap is the hysteresis.
    pub demote_pct: u32,
}

impl Default for HotKeyConfig {
    fn default() -> Self {
        HotKeyConfig {
            sample_every: 128,
            window: 256,
            sub_shards: 8,
            promote_pct: 2,
            demote_pct: 1,
        }
    }
}

impl HotKeyConfig {
    /// Panics unless the knobs are coherent (used by the builder).
    pub(crate) fn validate(&self) {
        assert!(self.sample_every >= 1, "sample_every must be at least 1");
        assert!(self.window >= 8, "sample window must hold at least 8 samples");
        assert!(self.sub_shards >= 2, "a hot bucket needs at least 2 sub-shards");
        assert!(
            (1..=100).contains(&self.promote_pct),
            "promote_pct must be within 1..=100, got {}",
            self.promote_pct
        );
        assert!(
            self.demote_pct < self.promote_pct,
            "demote_pct ({}) must be strictly below promote_pct ({}) — the gap is the hysteresis",
            self.demote_pct,
            self.promote_pct
        );
    }

    /// Window-sample count at which a key is promoted (at least 2: a single
    /// sample can never split a bucket, whatever the percentages say).
    pub(crate) fn promote_count(&self) -> u32 {
        ((self.window as u64 * u64::from(self.promote_pct)).div_ceil(100) as u32).max(2)
    }

    /// Window-sample count below which a promoted key is demoted.
    pub(crate) fn demote_count(&self) -> u32 {
        ((self.window as u64 * u64::from(self.demote_pct)) / 100) as u32
    }
}

/// The sample window: a pre-allocated ring of the last `window` sampled
/// keys plus an exact per-key count, kept in lockstep.
struct Window<K> {
    ring: Vec<Option<K>>,
    cursor: usize,
    counts: BTreeMap<K, u32>,
}

/// The pool-wide key-frequency detector.
///
/// One instance is shared by every handle of a keyed pool; only sampled
/// operations (one in [`HotKeyConfig::sample_every`]) take its lock, so the
/// window serializes a small, configurable fraction of traffic.
pub(crate) struct HotKeyDetector<K> {
    cfg: HotKeyConfig,
    promote_count: u32,
    demote_count: u32,
    inner: Mutex<Window<K>>,
}

impl<K: Ord + Clone> HotKeyDetector<K> {
    pub(crate) fn new(cfg: HotKeyConfig) -> Self {
        let mut ring = Vec::new();
        ring.resize_with(cfg.window, || None);
        HotKeyDetector {
            promote_count: cfg.promote_count(),
            demote_count: cfg.demote_count(),
            cfg,
            inner: Mutex::new(Window { ring, cursor: 0, counts: BTreeMap::new() }),
        }
    }

    pub(crate) fn cfg(&self) -> &HotKeyConfig {
        &self.cfg
    }

    /// Count at which [`observe`](Self::observe) deems a key hot.
    pub(crate) fn promote_count(&self) -> u32 {
        self.promote_count
    }

    /// Count below which a promoted key has cooled off.
    pub(crate) fn demote_count(&self) -> u32 {
        self.demote_count
    }

    /// Records one sampled key, evicting the oldest sample, and returns the
    /// key's new count over the window.
    pub(crate) fn observe(&self, key: K) -> u32 {
        let mut w = self.inner.lock();
        let cursor = w.cursor;
        w.cursor = (cursor + 1) % w.ring.len();
        if let Some(old) = w.ring[cursor].take() {
            if let Some(count) = w.counts.get_mut(&old) {
                *count -= 1;
                if *count == 0 {
                    w.counts.remove(&old);
                }
            }
        }
        let count = {
            let count = w.counts.entry(key.clone()).or_insert(0);
            *count += 1;
            *count
        };
        w.ring[cursor] = Some(key);
        count
    }

    /// The key's current sample count over the window (0 if unseen).
    pub(crate) fn count(&self, key: &K) -> u32 {
        self.inner.lock().counts.get(key).copied().unwrap_or(0)
    }

    /// The key's heat: its fraction of the sample window, in `[0, 1]`.
    pub(crate) fn heat(&self, key: &K) -> f64 {
        f64::from(self.count(key)) / self.cfg.window as f64
    }
}

impl<K> std::fmt::Debug for HotKeyDetector<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotKeyDetector").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HotKeyConfig {
        HotKeyConfig { sample_every: 1, window: 8, sub_shards: 2, promote_pct: 50, demote_pct: 20 }
    }

    #[test]
    fn counts_track_the_window_exactly() {
        let det: HotKeyDetector<u32> = HotKeyDetector::new(small_cfg());
        for _ in 0..4 {
            det.observe(7);
        }
        assert_eq!(det.count(&7), 4);
        // Eight more samples of another key push every 7 out of the window.
        for _ in 0..8 {
            det.observe(9);
        }
        assert_eq!(det.count(&7), 0, "evicted samples decay the count");
        assert_eq!(det.count(&9), 8);
        assert!((det.heat(&9) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn promote_threshold_has_hysteresis_below_it() {
        let cfg = small_cfg();
        assert_eq!(cfg.promote_count(), 4, "50% of an 8-sample window");
        assert_eq!(cfg.demote_count(), 1, "20% of 8, floored");
        assert!(cfg.demote_count() < cfg.promote_count());
    }

    #[test]
    fn promote_count_never_drops_below_two() {
        let cfg = HotKeyConfig { promote_pct: 1, window: 8, ..HotKeyConfig::default() };
        assert_eq!(cfg.promote_count(), 2, "one sample must never split a bucket");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_are_rejected() {
        HotKeyConfig { promote_pct: 5, demote_pct: 5, ..HotKeyConfig::default() }.validate();
    }
}
