//! Cost accounting for shared-memory accesses.
//!
//! The Butterfly experiments in Kotz & Ellis (1989) distinguish *local* from
//! *remote* memory accesses (remote ≈ 4× slower) and additionally inject an
//! adjustable artificial delay into every remote segment probe and every
//! superimposed-tree node access, to emulate more loosely-coupled
//! architectures.
//!
//! This module abstracts that cost model behind the [`Timing`] trait: the
//! pool reports every chargeable access as a [`Resource`] touch, and the
//! trait implementation decides what the touch costs — nothing
//! ([`NullTiming`]), a real spin delay (`numa_sim::RealTiming`), or an
//! advance of a deterministic virtual clock (`numa_sim::SimTiming`).
//!
//! # Static vs dynamic dispatch
//!
//! The pool frontends are *generic* over their cost model
//! (`Pool<S, P, T: Timing>`), so the model is chosen at the type level:
//! a `Pool<_, _, NullTiming>` monomorphizes to bare lock/steal code with
//! every `charge` call inlined away, paying nothing for the instrumentation
//! machinery. When the model must be picked at *runtime* (an experiment
//! harness switching engines from a spec), use the [`DynTiming`] adapter:
//! smart pointers to a `Timing` — including `Arc<dyn Timing>` — implement
//! `Timing` themselves, so a dyn-dispatched model threads through the same
//! generic hot path at the cost of one pointer indirection per charge.
//!
//! # Lock/charge discipline
//!
//! Implementations may block the calling thread (the virtual-time scheduler
//! suspends a process until it holds the globally minimal clock). Pool code
//! therefore **never holds a data lock across a `charge` call**: charges
//! always happen immediately *before* the lock acquisition they pay for.

use std::fmt;
use std::time::Instant;

use crate::ids::{ProcId, SegIdx};

/// A shared resource whose access is charged to the accessing process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum Resource {
    /// A pool segment (probe, add, remove, or steal access).
    Segment(SegIdx),
    /// A node of the superimposed search tree (round-counter read/update).
    ///
    /// The index is the heap index of the node (`1` is the root). Per the
    /// paper, the tree "must reside somewhere ... in any case it is likely
    /// to be remote for most of the processors", so latency models treat
    /// tree nodes as remote by default.
    TreeNode(usize),
    /// A centralized shared structure (used by baseline work lists such as
    /// the global-lock stack of §4.4).
    Shared(u16),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Segment(s) => write!(f, "seg:{}", s.index()),
            Resource::TreeNode(n) => write!(f, "tree:{n}"),
            Resource::Shared(k) => write!(f, "shared:{k}"),
        }
    }
}

/// Cost model hook: charges shared-memory accesses and provides a clock.
///
/// All methods take the acting process so that per-process virtual clocks
/// and NUMA locality (is segment `s` local to process `p`?) can be modelled.
///
/// See the [module docs](self) for the lock/charge discipline implementors
/// may rely on.
pub trait Timing: Send + Sync {
    /// Charge process `proc` for one access to `resource`.
    ///
    /// May block (e.g. to serialize virtual time). Called *before* the
    /// access is performed.
    fn charge(&self, proc: ProcId, resource: Resource);

    /// Charge process `proc` for `ns` nanoseconds of local computation.
    ///
    /// Applications use this to model work done between pool operations
    /// (e.g. evaluating a game position). The default implementation
    /// ignores the charge.
    fn charge_work(&self, proc: ProcId, ns: u64) {
        let _ = (proc, ns);
    }

    /// Current time for `proc` in nanoseconds.
    ///
    /// Wall-clock based implementations return time since some fixed origin;
    /// virtual-time implementations return the process's virtual clock.
    fn now(&self, proc: ProcId) -> u64;
}

/// A runtime-selected cost model: the dyn-dispatch adapter.
///
/// The pool's hot path charges through a generic `T: Timing`; this alias is
/// the `T` to pick when the concrete model is only known at runtime. The
/// smart-pointer blanket impls below make `Arc<dyn Timing>` itself a
/// `Timing`, so a `Pool<S, P, DynTiming>` works exactly like any other
/// pool — every charge just pays one virtual call.
///
/// ```
/// use cpool::{DynTiming, NullTiming, Timing, ProcId, Resource, SegIdx};
/// use std::sync::Arc;
/// let t: DynTiming = Arc::new(NullTiming::new());
/// t.charge(ProcId::new(0), Resource::Segment(SegIdx::new(0)));
/// ```
pub type DynTiming = std::sync::Arc<dyn Timing>;

// Smart-pointer adapters: let `Arc<dyn Timing>` (and friends) flow through
// the generic hot path when the cost model is selected at runtime.
impl<T: Timing + ?Sized> Timing for std::sync::Arc<T> {
    fn charge(&self, proc: ProcId, resource: Resource) {
        (**self).charge(proc, resource);
    }

    fn charge_work(&self, proc: ProcId, ns: u64) {
        (**self).charge_work(proc, ns);
    }

    fn now(&self, proc: ProcId) -> u64 {
        (**self).now(proc)
    }
}

impl<T: Timing + ?Sized> Timing for Box<T> {
    fn charge(&self, proc: ProcId, resource: Resource) {
        (**self).charge(proc, resource);
    }

    fn charge_work(&self, proc: ProcId, ns: u64) {
        (**self).charge_work(proc, ns);
    }

    fn now(&self, proc: ProcId) -> u64 {
        (**self).now(proc)
    }
}

impl<T: Timing + ?Sized> Timing for &T {
    fn charge(&self, proc: ProcId, resource: Resource) {
        (**self).charge(proc, resource);
    }

    fn charge_work(&self, proc: ProcId, ns: u64) {
        (**self).charge_work(proc, ns);
    }

    fn now(&self, proc: ProcId) -> u64 {
        (**self).now(proc)
    }
}

/// A [`Timing`] that charges nothing: raw machine speed.
///
/// `now` still reports real elapsed nanoseconds since the value was created
/// so operation latencies can be measured.
///
/// ```
/// use cpool::{NullTiming, Timing, ProcId, Resource, SegIdx};
/// let t = NullTiming::new();
/// t.charge(ProcId::new(0), Resource::Segment(SegIdx::new(0))); // free
/// let a = t.now(ProcId::new(0));
/// let b = t.now(ProcId::new(0));
/// assert!(b >= a);
/// ```
#[derive(Clone, Debug)]
pub struct NullTiming {
    origin: Instant,
}

impl NullTiming {
    /// Creates a new zero-cost timing source.
    pub fn new() -> Self {
        NullTiming { origin: Instant::now() }
    }
}

impl Default for NullTiming {
    fn default() -> Self {
        Self::new()
    }
}

impl Timing for NullTiming {
    fn charge(&self, _proc: ProcId, _resource: Resource) {}

    fn now(&self, _proc: ProcId) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_timing_clock_is_monotonic() {
        let t = NullTiming::new();
        let p = ProcId::new(0);
        let mut last = 0;
        for _ in 0..100 {
            let now = t.now(p);
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn resource_display() {
        assert_eq!(Resource::Segment(SegIdx::new(3)).to_string(), "seg:3");
        assert_eq!(Resource::TreeNode(1).to_string(), "tree:1");
        assert_eq!(Resource::Shared(0).to_string(), "shared:0");
    }

    #[test]
    fn trait_is_object_safe() {
        let t: Box<dyn Timing> = Box::new(NullTiming::new());
        t.charge(ProcId::new(1), Resource::TreeNode(2));
        t.charge_work(ProcId::new(1), 50);
        let _ = t.now(ProcId::new(1));
    }

    /// A generic charge site accepts both concrete models and the
    /// [`DynTiming`] adapter.
    #[test]
    fn adapters_thread_through_generic_sites() {
        fn charge_one<T: Timing>(t: &T) -> u64 {
            t.charge(ProcId::new(0), Resource::Segment(SegIdx::new(0)));
            t.charge_work(ProcId::new(0), 10);
            t.now(ProcId::new(0))
        }
        let concrete = NullTiming::new();
        let _ = charge_one(&concrete);
        let arced: DynTiming = std::sync::Arc::new(NullTiming::new());
        let _ = charge_one(&arced);
        let boxed: Box<dyn Timing> = Box::new(NullTiming::new());
        let _ = charge_one(&boxed);
        let borrowed: &dyn Timing = &concrete;
        let _ = charge_one(&borrowed);
    }
}
