//! Livelock detection: the shared count of searching processes.
//!
//! §3.2 of Kotz & Ellis (1989): if the pool is empty and every process is
//! searching for an element, none of them will ever add one — livelock. The
//! implementations therefore "keep a shared count of the processes looking
//! for elements. When any process discovers that all the processes involved
//! in the pool operations are looking (and therefore no process might be
//! adding), it aborts its operation."
//!
//! [`SearchGate`] implements exactly that: processes register when they
//! start using the pool and deregister when they stop; a searcher holds a
//! [`SearchGuard`] while probing remote segments and polls
//! [`SearchGate::all_searching`] between probes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared searching-process counter used to break empty-pool livelock.
///
/// ```
/// use cpool::SearchGate;
/// let gate = SearchGate::new();
/// gate.register();
/// gate.register();
/// let g1 = gate.begin_search();
/// assert!(!gate.all_searching()); // one of two is searching
/// let g2 = gate.begin_search();
/// assert!(gate.all_searching()); // both searching: abort condition
/// drop(g1);
/// assert!(!gate.all_searching());
/// drop(g2);
/// gate.deregister();
/// gate.deregister();
/// ```
#[derive(Debug, Default)]
pub struct SearchGate {
    registered: AtomicUsize,
    searching: AtomicUsize,
}

impl SearchGate {
    /// Creates a gate with no registered processes.
    pub fn new() -> Self {
        SearchGate { registered: AtomicUsize::new(0), searching: AtomicUsize::new(0) }
    }

    /// Registers one process as a pool participant.
    pub fn register(&self) {
        self.registered.fetch_add(1, Ordering::SeqCst);
    }

    /// Deregisters one process.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if no process is registered.
    pub fn deregister(&self) {
        let prev = self.registered.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "deregister without matching register");
    }

    /// Number of currently registered processes.
    pub fn registered(&self) -> usize {
        self.registered.load(Ordering::SeqCst)
    }

    /// Number of processes currently inside a search.
    pub fn searching(&self) -> usize {
        self.searching.load(Ordering::SeqCst)
    }

    /// Marks the calling process as searching; the returned guard unmarks it
    /// when dropped (also on panic, so a poisoned search cannot wedge the
    /// abort condition for everyone else).
    pub fn begin_search(&self) -> SearchGuard<'_> {
        self.searching.fetch_add(1, Ordering::SeqCst);
        SearchGuard { gate: self }
    }

    /// Returns `true` when every registered process is searching — the
    /// abort condition of §3.2.
    ///
    /// Reads `searching` before `registered` so that a concurrent
    /// register+begin_search pair cannot produce a false positive; a false
    /// *negative* only delays the abort by one probe, which is harmless.
    pub fn all_searching(&self) -> bool {
        let searching = self.searching.load(Ordering::SeqCst);
        let registered = self.registered.load(Ordering::SeqCst);
        registered > 0 && searching >= registered
    }
}

/// RAII guard marking one process as searching. See [`SearchGate::begin_search`].
#[derive(Debug)]
pub struct SearchGuard<'a> {
    gate: &'a SearchGate,
}

impl Drop for SearchGuard<'_> {
    fn drop(&mut self) {
        let prev = self.gate.searching.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "search guard dropped without matching begin_search");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn empty_gate_never_aborts() {
        let gate = SearchGate::new();
        assert!(!gate.all_searching(), "no registered processes: no abort");
    }

    #[test]
    fn single_process_searching_aborts_immediately() {
        let gate = SearchGate::new();
        gate.register();
        let _g = gate.begin_search();
        assert!(gate.all_searching());
    }

    #[test]
    fn guard_drop_restores_count() {
        let gate = SearchGate::new();
        gate.register();
        {
            let _g = gate.begin_search();
            assert_eq!(gate.searching(), 1);
        }
        assert_eq!(gate.searching(), 0);
    }

    #[test]
    fn nested_guards_count() {
        // One *process* never nests searches, but the gate itself is a bare
        // counter and must stay balanced under arbitrary nesting.
        let gate = SearchGate::new();
        gate.register();
        gate.register();
        let a = gate.begin_search();
        let b = gate.begin_search();
        assert_eq!(gate.searching(), 2);
        drop(a);
        drop(b);
        assert_eq!(gate.searching(), 0);
    }

    #[test]
    fn concurrent_search_storm_stays_balanced() {
        let gate = Arc::new(SearchGate::new());
        let threads = 8;
        for _ in 0..threads {
            gate.register();
        }
        thread::scope(|s| {
            for _ in 0..threads {
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _g = gate.begin_search();
                        // all_searching may or may not hold here; it must
                        // never panic or return garbage.
                        let _ = gate.all_searching();
                    }
                });
            }
        });
        assert_eq!(gate.searching(), 0);
        assert_eq!(gate.registered(), threads);
    }

    #[test]
    fn all_searching_requires_every_process() {
        let gate = SearchGate::new();
        for _ in 0..4 {
            gate.register();
        }
        let guards: Vec<_> = (0..3).map(|_| gate.begin_search()).collect();
        assert!(!gate.all_searching(), "3 of 4 searching: keep going");
        let last = gate.begin_search();
        assert!(gate.all_searching(), "4 of 4 searching: abort");
        drop(last);
        drop(guards);
    }
}
