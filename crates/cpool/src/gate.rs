//! Livelock detection: the shared count of searching processes.
//!
//! §3.2 of Kotz & Ellis (1989): if the pool is empty and every process is
//! searching for an element, none of them will ever add one — livelock. The
//! implementations therefore "keep a shared count of the processes looking
//! for elements. When any process discovers that all the processes involved
//! in the pool operations are looking (and therefore no process might be
//! adding), it aborts its operation."
//!
//! [`SearchGate`] implements exactly that: processes register when they
//! start using the pool and deregister when they stop; a searcher holds a
//! [`SearchGuard`] while probing remote segments and polls
//! [`SearchGate::all_searching`] between probes.
//!
//! # The gate and the notifier
//!
//! The gate owns the pool's [`Notifier`] (see [`notify`](crate::notify)),
//! because the two protocols must compose: a consumer blocked in
//! [`WaitStrategy::Block`](crate::WaitStrategy::Block) parks *while holding
//! its search guard*, so parked waiters still count as searching and the
//! §3.2 rule keeps detecting termination. The price is that the
//! all-searching condition can become true while its witnesses are asleep —
//! so the gate wakes the notifier's parked waiters on exactly the two
//! transitions that can newly establish the condition:
//!
//! * [`begin_search`](SearchGate::begin_search) — the last non-searching
//!   process starts searching;
//! * [`deregister`](SearchGate::deregister) — a non-searching process
//!   leaves, and everyone remaining is searching.
//!
//! Woken waiters re-run their search, observe the abort condition, and take
//! the terminal-abort path instead of sleeping through it: no lost-wakeup
//! livelock. (The other two transitions — a guard dropping or a process
//! registering — can only make the condition *false* and need no wake.)

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::notify::Notifier;

/// Shared searching-process counter used to break empty-pool livelock.
///
/// ```
/// use cpool::SearchGate;
/// let gate = SearchGate::new();
/// gate.register();
/// gate.register();
/// let g1 = gate.begin_search();
/// assert!(!gate.all_searching()); // one of two is searching
/// let g2 = gate.begin_search();
/// assert!(gate.all_searching()); // both searching: abort condition
/// drop(g1);
/// assert!(!gate.all_searching());
/// drop(g2);
/// gate.deregister();
/// gate.deregister();
/// ```
#[derive(Debug, Default)]
pub struct SearchGate {
    registered: AtomicUsize,
    searching: AtomicUsize,
    notifier: Notifier,
}

impl SearchGate {
    /// Creates a gate with no registered processes.
    pub fn new() -> Self {
        SearchGate::default()
    }

    /// The pool's wakeup channel (owned by the gate so the all-searching
    /// transition can wake parked waiters — see the [module docs](self)).
    pub fn notifier(&self) -> &Notifier {
        &self.notifier
    }

    /// Registers one process as a pool participant.
    ///
    /// # Memory ordering
    ///
    /// The four protocol operations (`register` / `deregister` /
    /// `begin_search` / the guard drop) and the two `all_searching` loads
    /// are all SeqCst, and an ordering audit concluded that this *is* the
    /// weakest correct choice — nothing here can be relaxed:
    ///
    /// * The condition spans **two** atomics, and readers pair with
    ///   writers Dekker-style: a deregistering producer checks "is
    ///   everyone else searching?" while a would-be parker checks "is
    ///   some registrant not searching?". With anything weaker than
    ///   SeqCst, both sides may read the *other* counter stale (the
    ///   store-buffer outcome), the deregister edge never fires and the
    ///   parked waiter sleeps forever — a lost wakeup x86's fenced RMWs
    ///   mask but the memory model (and weaker hardware) permits.
    /// * A stale-low `registered` read that misses a freshly registered
    ///   (not yet searching) producer would turn a live pool's wait into
    ///   a spurious *terminal* abort — and in the work-list layer, into a
    ///   premature `close()`. SeqCst's single total order is what makes
    ///   the §3.2 check a consistent linearization-point decision.
    ///
    /// (The registry's id counter, by contrast, stays Relaxed — it only
    /// mints unique indices and publishes nothing.)
    pub fn register(&self) {
        self.registered.fetch_add(1, Ordering::SeqCst);
    }

    /// Deregisters one process.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if no process is registered.
    pub fn deregister(&self) {
        // SeqCst: see `register` — this decrement can newly *establish*
        // the abort condition, and the edge check below must be totally
        // ordered against concurrent parkers' own checks.
        let prev = self.registered.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "deregister without matching register");
        // This is one of the two transitions that can newly establish the
        // all-searching condition (the departed process was the last
        // potential producer): wake parked waiters so they can observe the
        // terminal abort instead of sleeping through it.
        if self.all_searching() {
            self.notifier.notify_all();
        }
    }

    /// Number of currently registered processes.
    pub fn registered(&self) -> usize {
        // Diagnostic snapshot; callers that need a stable value already
        // synchronize externally (e.g. after joining worker threads).
        self.registered.load(Ordering::Relaxed)
    }

    /// Number of processes currently inside a search.
    pub fn searching(&self) -> usize {
        self.searching.load(Ordering::Relaxed)
    }

    /// Marks the calling process as searching; the returned guard unmarks it
    /// when dropped (also on panic, so a poisoned search cannot wedge the
    /// abort condition for everyone else).
    pub fn begin_search(&self) -> SearchGuard<'_> {
        // SeqCst: see `register` — this increment is the other
        // condition-establishing transition.
        self.searching.fetch_add(1, Ordering::SeqCst);
        // The last non-searching process just started searching. Wake
        // parked waiters (they hold guards and count in `searching`) so
        // the abort has witnesses. `notify_all` is a fence + one load when
        // nobody waits.
        if self.all_searching() {
            self.notifier.notify_all();
        }
        SearchGuard { gate: self }
    }

    /// Returns `true` when every registered process is searching — the
    /// abort condition of §3.2.
    ///
    /// Both loads are SeqCst (see [`register`](Self::register) for the
    /// audit): the check participates in Dekker-style pairings with the
    /// counter updates, so it needs the single total order. Reading
    /// `searching` before `registered` additionally keeps the transient
    /// shapes benign: a concurrent register+begin_search pair can only be
    /// seen as a false *negative* (one probe of delay), never a false
    /// positive.
    pub fn all_searching(&self) -> bool {
        let searching = self.searching.load(Ordering::SeqCst);
        let registered = self.registered.load(Ordering::SeqCst);
        registered > 0 && searching >= registered
    }
}

/// RAII guard marking one process as searching. See [`SearchGate::begin_search`].
#[derive(Debug)]
pub struct SearchGuard<'a> {
    gate: &'a SearchGate,
}

impl Drop for SearchGuard<'_> {
    fn drop(&mut self) {
        // SeqCst: a stale-high `searching` read that missed this decrement
        // while seeing a later `registered` decrement would manufacture a
        // false-positive abort; the single total order rules the mixed
        // snapshot out (see `SearchGate::register` for the full audit).
        let prev = self.gate.searching.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "search guard dropped without matching begin_search");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn empty_gate_never_aborts() {
        let gate = SearchGate::new();
        assert!(!gate.all_searching(), "no registered processes: no abort");
    }

    #[test]
    fn single_process_searching_aborts_immediately() {
        let gate = SearchGate::new();
        gate.register();
        let _g = gate.begin_search();
        assert!(gate.all_searching());
    }

    #[test]
    fn guard_drop_restores_count() {
        let gate = SearchGate::new();
        gate.register();
        {
            let _g = gate.begin_search();
            assert_eq!(gate.searching(), 1);
        }
        assert_eq!(gate.searching(), 0);
    }

    #[test]
    fn nested_guards_count() {
        // One *process* never nests searches, but the gate itself is a bare
        // counter and must stay balanced under arbitrary nesting.
        let gate = SearchGate::new();
        gate.register();
        gate.register();
        let a = gate.begin_search();
        let b = gate.begin_search();
        assert_eq!(gate.searching(), 2);
        drop(a);
        drop(b);
        assert_eq!(gate.searching(), 0);
    }

    #[test]
    fn concurrent_search_storm_stays_balanced() {
        let gate = Arc::new(SearchGate::new());
        let threads = 8;
        for _ in 0..threads {
            gate.register();
        }
        thread::scope(|s| {
            for _ in 0..threads {
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _g = gate.begin_search();
                        // all_searching may or may not hold here; it must
                        // never panic or return garbage.
                        let _ = gate.all_searching();
                    }
                });
            }
        });
        assert_eq!(gate.searching(), 0);
        assert_eq!(gate.registered(), threads);
    }

    #[test]
    fn all_searching_requires_every_process() {
        let gate = SearchGate::new();
        for _ in 0..4 {
            gate.register();
        }
        let guards: Vec<_> = (0..3).map(|_| gate.begin_search()).collect();
        assert!(!gate.all_searching(), "3 of 4 searching: keep going");
        let last = gate.begin_search();
        assert!(gate.all_searching(), "4 of 4 searching: abort");
        drop(last);
        drop(guards);
    }

    #[test]
    fn all_searching_transition_wakes_parked_waiters() {
        // A waiter parked on the gate's notifier while holding a search
        // guard must be woken when the *other* process starts searching:
        // the begin_search edge signals the notifier.
        use crate::notify::WaitOutcome;

        let gate = SearchGate::new();
        gate.register();
        gate.register();

        thread::scope(|s| {
            s.spawn(|| {
                let _guard = gate.begin_search(); // 1 of 2 searching: no edge
                let mut w = gate.notifier().waiter();
                assert_eq!(w.wait(None), WaitOutcome::Signalled, "begin_search edge woke us");
            });
            // Only fire the edge once the waiter is registered, so the
            // signal provably targets a parked (or parking) thread.
            while gate.notifier().waiters() < 1 {
                thread::yield_now();
            }
            let _g2 = gate.begin_search(); // 2 of 2 searching: edge fires
        });
        gate.deregister();
        gate.deregister();
    }

    #[test]
    fn deregister_edge_wakes_parked_waiters() {
        use crate::notify::WaitOutcome;

        let gate = SearchGate::new();
        gate.register(); // the searcher-to-be
        gate.register(); // a lurker that will deregister

        thread::scope(|s| {
            s.spawn(|| {
                let _guard = gate.begin_search(); // lurker not searching: no edge
                let mut w = gate.notifier().waiter();
                assert_eq!(w.wait(None), WaitOutcome::Signalled, "deregister edge woke us");
            });
            while gate.notifier().waiters() < 1 {
                thread::yield_now();
            }
            // The lurker leaves; the lone searcher is now "everyone".
            gate.deregister();
        });
        gate.deregister();
    }
}
