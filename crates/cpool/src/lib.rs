//! # Concurrent pools
//!
//! A *pool* is an unordered collection of items: processes may [`add`] an
//! element or [`remove`] an arbitrary element at any time. A **concurrent
//! pool** (Manber, *SIAM J. Computing* 1986; evaluated by Kotz & Ellis,
//! *ICDCS* 1989) partitions the elements into one *segment* per processor so
//! that most operations complete locally, without interfering with other
//! processes. Only when a `remove` finds the local segment empty does the
//! process *search* remote segments, **stealing roughly half** of the first
//! non-empty segment it finds.
//!
//! The crate implements the three search algorithms the paper evaluates:
//!
//! * [`search::TreeSearch`] — Manber's algorithm: a binary tree superimposed
//!   on the segments carries per-subtree *round counters* that steer
//!   searchers away from recently-empty subtrees.
//! * [`search::LinearSearch`] — ring traversal starting from the segment
//!   where elements were last found.
//! * [`search::RandomSearch`] — uniformly random probing.
//!
//! Segments come in two families: *counting* segments ([`segment::LockedCounter`],
//! [`segment::AtomicCounter`]) that store only a count (the paper's
//! measurement simplification), and *element* segments
//! ([`segment::VecSegment`], [`segment::BlockSegment`]) that store real
//! values for applications such as task scheduling. Batch transfers —
//! steals, refills, batched removes — are typed over each family's native
//! currency ([`transfer::TransferBatch`]): the block segment hands whole
//! block *handles* across the steal protocol (O(n/B) pointer moves, no
//! flattening) and the counting segments a bare count, with containers
//! recycled through per-pool free lists so the steady-state steal path
//! performs zero allocations — see [`transfer`].
//!
//! Every shared-memory access the paper charges for (segment probes, tree
//! node visits) is reported through the [`timing::Timing`] trait so the same
//! algorithm code runs on raw threads, under injected NUMA delays, or inside
//! a deterministic virtual-time scheduler (see the `numa-sim` crate). The
//! cost model is a *type parameter* of every pool (`Pool<S, P, T: Timing>`,
//! default [`NullTiming`]): an uninstrumented pool compiles to bare
//! lock/steal code, while runtime-selected models use the
//! [`timing::DynTiming`] (`Arc<dyn Timing>`) adapter — see
//! [`timing`] for how to choose.
//!
//! ## Quickstart
//!
//! ```
//! use cpool::prelude::*;
//! use std::thread;
//!
//! // A pool of 4 integer segments searched linearly (the builder states
//! // the segment count once and wires it into the default policy).
//! let pool: Pool<VecSegment<u64>, LinearSearch> = PoolBuilder::new(4).build();
//!
//! thread::scope(|s| {
//!     for _ in 0..4 {
//!         let mut h = pool.register();
//!         s.spawn(move || {
//!             h.add_batch(0..100); // one segment lock for the whole batch
//!             let mut got = 0;
//!             while got < 100 {
//!                 // Blocking remove: aborted searches (everyone searching
//!                 // at once) are retried inside the crate.
//!                 if h.remove(WaitStrategy::Yield).is_ok() {
//!                     got += 1;
//!                 }
//!             }
//!         });
//!     }
//! });
//! assert_eq!(pool.total_len(), 0);
//! ```
//!
//! The full operation vocabulary — blocking [`remove`](ops::PoolOps::remove)
//! with its [`WaitStrategy`] (including the event-driven
//! [`Block`](ops::WaitStrategy::Block), which parks on the pool's
//! [`notify`] subsystem and wakes on the add edge),
//! [`remove_timeout`](ops::PoolOps::remove_timeout), the
//! [`close`](ops::PoolOps::close) lifecycle (drain the residue, then
//! [`RemoveError::Closed`]), and the batch operations
//! [`add_batch`](ops::PoolOps::add_batch) /
//! [`try_remove_batch`](ops::PoolOps::try_remove_batch) /
//! [`drain`](ops::PoolOps::drain) — is the [`ops::PoolOps`] trait,
//! implemented by both [`Handle`] and [`KeyedHandle`].
//!
//! Async-native operations live in [`future`]:
//! [`remove_async`](Handle::remove_async) /
//! [`remove_key_async`](KeyedHandle::remove_key_async) (plus `_timeout`
//! variants and the low-level [`poll_remove`](Handle::poll_remove)) return
//! std-only futures whose wakers register on the [`notify`] subsystem —
//! no runtime dependency — so a single thread can drive thousands of
//! pending removes at once ([`future::exec::Fleet`]).
//!
//! [`add`]: Handle::add
//! [`remove`]: Handle::try_remove

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod core;

pub mod error;
pub mod future;
pub mod gate;
pub mod hints;
pub mod hotkey;
pub mod ids;
pub mod keyed;
pub mod magazine;
pub mod notify;
pub mod ops;
pub mod pool;
pub mod search;
pub mod segment;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod transfer;

pub use error::RemoveError;
pub use future::{KeyedRemoveFuture, RemoveFuture, RemoveKeyFuture};
pub use gate::SearchGate;
pub use hints::{HintBoard, HINT_BOARD_RESOURCE};
pub use hotkey::HotKeyConfig;
pub use ids::{ProcId, SegIdx};
pub use keyed::{KeyedHandle, KeyedPool, KeyedPoolBuilder};
pub use magazine::{CacheOutcome, Depot, MagazineCache, PopOutcome};
pub use notify::{Notifier, WaitOutcome};
pub use ops::{PoolOps, SmallDrain, WaitStrategy};
pub use pool::{Handle, Pool, PoolBuilder, PoolReport};
pub use search::{
    DynPolicy, LinearSearch, NodeStoreKind, PolicyKind, RandomSearch, SearchEnv, SearchOutcome,
    SearchPolicy, TreeSearch,
};
pub use segment::{
    AtomicCounter, BlockBatch, BlockSegment, LaneSegment, LfSegment, LockedCounter, Segment,
    VecSegment,
};
pub use stats::{Histogram, PoolCounters, PoolStats, ProcStats};
pub use timing::{DynTiming, NullTiming, Resource, Timing};
pub use trace::{TraceEvent, TraceKind, TraceRecorder};
pub use transfer::{CountBatch, FreeList, TransferBatch};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::error::RemoveError;
    pub use crate::future::exec::{block_on, Fleet};
    pub use crate::future::{KeyedRemoveFuture, RemoveFuture, RemoveKeyFuture};
    pub use crate::hotkey::HotKeyConfig;
    pub use crate::ids::{ProcId, SegIdx};
    pub use crate::keyed::{KeyedHandle, KeyedPool, KeyedPoolBuilder};
    pub use crate::notify::Notifier;
    pub use crate::ops::{PoolOps, SmallDrain, WaitStrategy};
    pub use crate::pool::{Handle, Pool, PoolBuilder};
    pub use crate::search::{
        DynPolicy, LinearSearch, NodeStoreKind, PolicyKind, RandomSearch, TreeSearch,
    };
    pub use crate::segment::{
        AtomicCounter, BlockSegment, LaneSegment, LfSegment, LockedCounter, Segment, VecSegment,
    };
    pub use crate::timing::{DynTiming, NullTiming, Resource, Timing};
    pub use crate::transfer::{CountBatch, TransferBatch};
}
