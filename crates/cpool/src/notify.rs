//! Event-driven waiting: the pool's wakeup subsystem.
//!
//! Kotz & Ellis's consumers *search* for elements, so a process that wants
//! an element from an empty pool either polls (burning shared-memory
//! probes) or sleeps blind (paying the full backoff interval in wakeup
//! latency). Production pools instead wake blocked consumers on the *add
//! edge*: the producer that makes an element available is the one that
//! knows a wakeup is due. [`Notifier`] provides that edge, built from two
//! pieces and no extra dependencies:
//!
//! * an **epoch counter** — bumped by every [`notify_all`](Notifier::notify_all)
//!   — that lets a waiter detect a signal that raced ahead of its park
//!   (the classic lost-wakeup window between "I checked the condition" and
//!   "I went to sleep");
//! * a **registered-parker list** of [`std::thread::Thread`] handles that
//!   `notify_all` drains and unparks.
//!
//! The waiting protocol is the standard epoch/parking-lot shape:
//!
//! 1. the waiter takes a [`Waiter`] registration ([`Notifier::waiter`]) and
//!    snapshots the epoch;
//! 2. it re-checks its wake condition (elements present, pool closed, ...);
//! 3. [`Waiter::wait`] registers the thread in the parker list, re-reads
//!    the epoch *after* registering, and parks only if no signal arrived
//!    in between.
//!
//! A signaller makes its condition true first (e.g. releases the segment
//! lock with the element inside), then calls `notify_all`, which bumps the
//! epoch and drains the parker list **as one atomic step** under the list
//! lock before unparking. Whichever side loses the race, the waiter either
//! observes the changed epoch and skips the park, or is present in the
//! parker list when the signaller drains it — there is no interleaving in
//! which the wakeup is lost (see `notify_all` for the fence argument that
//! covers the producer's fast path, and `bump_and_drain` for why the bump
//! and the drain must not be separated).
//!
//! The notifier also owns the pool's **lifecycle bit**: [`close`](Notifier::close)
//! flips a sticky flag and wakes everyone, so blocked removers can drain
//! the remaining elements and report
//! [`RemoveError::Closed`](crate::RemoveError::Closed).
//!
//! ```
//! use cpool::notify::Notifier;
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use std::thread;
//!
//! let notifier = Notifier::new();
//! let ready = AtomicBool::new(false);
//! thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut w = notifier.waiter();
//!         while !ready.load(Ordering::Acquire) {
//!             w.wait(None); // parks; no lost wakeup even if `ready` flips now
//!         }
//!     });
//!     ready.store(true, Ordering::Release);
//!     notifier.notify_all(); // condition first, then the signal
//! });
//! ```

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread::Thread;
use std::time::Instant;

use parking_lot::Mutex;

/// A per-pool wakeup channel: signal epoch, registered parkers, and the
/// pool's closed bit. See the [module docs](self) for the protocol.
#[derive(Debug, Default)]
pub struct Notifier {
    /// Signal epoch: bumped by every `notify_all`. A waiter parks only if
    /// the epoch is unchanged since it last looked.
    epoch: AtomicU64,
    /// Number of threads currently inside the prepare→park window
    /// (holding a [`Waiter`]). Lets the add fast path skip the epoch bump
    /// entirely when nobody can possibly be waiting.
    waiters: AtomicUsize,
    /// Sticky lifecycle bit set by [`close`](Self::close).
    closed: AtomicBool,
    /// Parked threads, keyed by a per-wait ticket so a waiter can withdraw
    /// its own registration without touching anyone else's.
    parked: Mutex<Vec<(u64, Thread)>>,
    /// Ticket mint for the parked list.
    next_ticket: AtomicU64,
}

/// What ended a [`Waiter::wait`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitOutcome {
    /// A signal arrived (the epoch advanced): re-check the wake condition.
    Signalled,
    /// The deadline passed before any signal.
    TimedOut,
}

impl Notifier {
    /// Creates a notifier with no waiters and the pool open.
    pub fn new() -> Self {
        Notifier::default()
    }

    /// Registers the calling thread as a prospective waiter and snapshots
    /// the signal epoch.
    ///
    /// Take the waiter **before** re-checking the wake condition; signals
    /// sent after this call are guaranteed to be observed, either by the
    /// condition re-check or by [`Waiter::wait`] declining to park.
    pub fn waiter(&self) -> Waiter<'_> {
        // The increment-then-fence pairs with the fence-then-load in
        // `notify_all` (symmetric SC fences over different objects): in
        // the fences' total order, either this side's fence precedes the
        // signaller's — then the signaller's `waiters` load sees the
        // increment and it bumps the epoch — or the signaller's fence
        // precedes this one, in which case the condition write sequenced
        // before that fence is visible to this thread's condition
        // re-check, sequenced after this fence. Either way the wakeup
        // cannot be lost. (The RMW alone would suffice on x86, but the
        // cross-object guarantee formally needs the fence pair.)
        self.waiters.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let seen = self.epoch.load(Ordering::SeqCst);
        Waiter { notifier: self, seen }
    }

    /// Number of threads currently in the prepare→park window (diagnostic;
    /// racy by nature).
    pub fn waiters(&self) -> usize {
        self.waiters.load(Ordering::SeqCst)
    }

    /// Current signal epoch (diagnostic; racy by nature).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of threads currently registered in the parked list
    /// (diagnostic; racy by nature).
    pub fn parked(&self) -> usize {
        self.parked.lock().len()
    }

    /// Wakes every current and in-flight waiter.
    ///
    /// Call **after** making the awaited condition true (element added and
    /// segment lock released, pool closed, gate transition completed). Free
    /// when nobody is waiting: one fence plus one shared load, no RMW — so
    /// the uncontended add path does not ping-pong a notifier cache line
    /// between producers.
    pub fn notify_all(&self) {
        // The fence closes the store-buffer window of the fast-path check:
        // without it the condition store could still be in this CPU's
        // write buffer when `waiters` is read, allowing both this thread to
        // miss the waiter *and* the waiter to miss the condition. With the
        // fence (paired with the waiter's SeqCst RMW in `waiter`), one of
        // the two sides is guaranteed to see the other.
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let parked = self.bump_and_drain();
        for (_, thread) in parked {
            thread.unpark();
        }
    }

    /// Advances the epoch and empties the parked list as one atomic step
    /// (with respect to waiter registration, which takes the same lock).
    ///
    /// The two must not be separated: if the bump could land long before
    /// the drain (a descheduled notifier), the drain would steal
    /// registrations made *after* the bump by waiters whose epoch snapshot
    /// already includes it — they absorb the resulting unpark as spurious
    /// (their epoch looks unchanged), re-park unregistered, and no later
    /// signal can ever reach them. Under the lock, a registration either
    /// completes before the bump (and is drained and meaningfully
    /// unparked) or starts after it (and its pre-push epoch re-check turns
    /// the wait into an immediate `Signalled`).
    fn bump_and_drain(&self) -> Vec<(u64, Thread)> {
        let mut parked = self.parked.lock();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        std::mem::take(&mut *parked)
    }

    /// Closes the pool: a sticky, idempotent lifecycle transition.
    ///
    /// Blocked and future removers first drain whatever elements remain and
    /// then observe [`RemoveError::Closed`](crate::RemoveError::Closed);
    /// see [`PoolOps::close`](crate::PoolOps::close) for the pool-level
    /// story. The flag is set *before* the wakeup so a waiter that parks
    /// concurrently either sees the flag on its pre-park re-check or is
    /// woken by the signal — the close/park race cannot strand a waiter.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Always signal, even with the waiter fast path: close is a cold,
        // once-per-pool event and the unconditional epoch bump makes the
        // sticky transition visible to the next `waiter()` snapshot too.
        let parked = self.bump_and_drain();
        for (_, thread) in parked {
            thread.unpark();
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// A registered prospective waiter (see [`Notifier::waiter`]).
///
/// Holding a `Waiter` keeps the notifier's waiter count raised, which is
/// what forces concurrent signallers off their fast path; drop it as soon
/// as the wait is over.
#[derive(Debug)]
pub struct Waiter<'a> {
    notifier: &'a Notifier,
    seen: u64,
}

impl Waiter<'_> {
    /// Parks the calling thread until a signal newer than the last observed
    /// epoch arrives, or `deadline` passes.
    ///
    /// Returns [`WaitOutcome::Signalled`] immediately — without parking —
    /// if a signal already arrived since this waiter last looked, so the
    /// prepare→check→park window is race-free. Spurious unparks (stale
    /// tokens from a previous wait on the same thread) are absorbed
    /// internally. After a `Signalled` return the waiter's snapshot is
    /// refreshed: re-check the condition and call `wait` again to keep
    /// waiting.
    pub fn wait(&mut self, deadline: Option<Instant>) -> WaitOutcome {
        let notifier = self.notifier;
        let ticket = notifier.next_ticket.fetch_add(1, Ordering::Relaxed);
        {
            let mut parked = notifier.parked.lock();
            // Re-read the epoch while registered: a signal between our last
            // look and this registration already drained the list, so
            // parking now would sleep through it.
            let now = notifier.epoch.load(Ordering::SeqCst);
            if now != self.seen {
                self.seen = now;
                return WaitOutcome::Signalled;
            }
            parked.push((ticket, std::thread::current()));
        }
        let outcome = loop {
            let now = notifier.epoch.load(Ordering::SeqCst);
            if now != self.seen {
                self.seen = now;
                break WaitOutcome::Signalled;
            }
            match deadline {
                None => std::thread::park(),
                Some(deadline) => {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        break WaitOutcome::TimedOut;
                    };
                    std::thread::park_timeout(remaining);
                }
            }
        };
        // Withdraw our registration if a notifier did not already drain it
        // (timeout, or a signal observed via the epoch before the unpark).
        notifier.parked.lock().retain(|(t, _)| *t != ticket);
        if outcome == WaitOutcome::TimedOut {
            self.seen = notifier.epoch.load(Ordering::SeqCst);
        }
        outcome
    }
}

impl Drop for Waiter<'_> {
    fn drop(&mut self) {
        self.notifier.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn notify_without_waiters_is_free_and_sticky_close_is_not() {
        let n = Notifier::new();
        n.notify_all();
        assert_eq!(n.epoch.load(Ordering::SeqCst), 0, "no waiters: no epoch bump");
        n.close();
        assert!(n.is_closed());
        assert_eq!(n.epoch.load(Ordering::SeqCst), 1, "close always signals");
        n.close();
        assert!(n.is_closed(), "close is idempotent");
    }

    #[test]
    fn signal_between_snapshot_and_park_is_not_lost() {
        let n = Notifier::new();
        let mut w = n.waiter();
        // Signal lands after the waiter snapshotted the epoch but before it
        // parks: wait must return immediately.
        n.notify_all();
        assert_eq!(w.wait(None), WaitOutcome::Signalled);
    }

    #[test]
    fn wait_times_out_without_signal() {
        let n = Notifier::new();
        let mut w = n.waiter();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(w.wait(Some(deadline)), WaitOutcome::TimedOut);
        assert!(n.parked.lock().is_empty(), "timed-out waiter withdrew its registration");
    }

    #[test]
    fn parked_thread_is_woken_by_notify() {
        let n = Notifier::new();
        let woken = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (n, woken) = (&n, &woken);
                s.spawn(move || {
                    let mut w = n.waiter();
                    while w.wait(None) != WaitOutcome::Signalled {}
                    woken.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Wait until all four are registered as waiters, then signal.
            while n.waiters() < 4 {
                std::thread::yield_now();
            }
            n.notify_all();
        });
        assert_eq!(woken.load(Ordering::SeqCst), 4);
        assert_eq!(n.waiters(), 0, "every waiter deregistered on drop");
    }

    #[test]
    fn close_wakes_parked_threads() {
        let n = Notifier::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = n.waiter();
                while !n.is_closed() {
                    let _ = w.wait(None);
                }
            });
            while n.waiters() < 1 {
                std::thread::yield_now();
            }
            n.close();
        });
        assert!(n.is_closed());
    }

    #[test]
    fn producer_consumer_handoff_never_hangs() {
        // The lost-wakeup gauntlet: one flag flip + notify per round, a
        // consumer that parks whenever the flag is down. Any lost wakeup
        // hangs the test.
        let n = Notifier::new();
        let flag = AtomicUsize::new(0);
        let rounds = 2_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..rounds {
                    loop {
                        let mut w = n.waiter();
                        if flag.swap(0, Ordering::SeqCst) == 1 {
                            break;
                        }
                        let _ = w.wait(None);
                    }
                }
            });
            for _ in 0..rounds {
                flag.store(1, Ordering::SeqCst);
                n.notify_all();
                // Wait for the consumer to consume the flag before the next
                // round so rounds do not coalesce.
                while flag.load(Ordering::SeqCst) == 1 {
                    std::thread::yield_now();
                }
            }
        });
    }
}
