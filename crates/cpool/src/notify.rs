//! Event-driven waiting: the pool's wakeup subsystem.
//!
//! Kotz & Ellis's consumers *search* for elements, so a process that wants
//! an element from an empty pool either polls (burning shared-memory
//! probes) or sleeps blind (paying the full backoff interval in wakeup
//! latency). Production pools instead wake blocked consumers on the *add
//! edge*: the producer that makes an element available is the one that
//! knows a wakeup is due. [`Notifier`] provides that edge, built from two
//! pieces and no extra dependencies:
//!
//! * an **epoch counter** — bumped by every [`notify_all`](Notifier::notify_all)
//!   — that lets a waiter detect a signal that raced ahead of its park
//!   (the classic lost-wakeup window between "I checked the condition" and
//!   "I went to sleep");
//! * a **registered-parker list** of [`std::thread::Thread`] handles that
//!   `notify_all` drains and unparks;
//! * a **registered-waker list** of [`std::task::Waker`]s — the async
//!   counterpart of the parker list, drained and woken by the same signal
//!   in the same atomic step, so one OS thread can hold thousands of
//!   pending [`RemoveFuture`](crate::future::RemoveFuture)s where the
//!   parker list would need a thread per blocked consumer.
//!
//! The waiting protocol is the standard epoch/parking-lot shape:
//!
//! 1. the waiter takes a [`Waiter`] registration ([`Notifier::waiter`]) and
//!    snapshots the epoch;
//! 2. it re-checks its wake condition (elements present, pool closed, ...);
//! 3. [`Waiter::wait`] registers the thread in the parker list, re-reads
//!    the epoch *after* registering, and parks only if no signal arrived
//!    in between.
//!
//! A signaller makes its condition true first (e.g. releases the segment
//! lock with the element inside), then calls `notify_all`, which bumps the
//! epoch and drains **both** registration lists **as one atomic step**
//! under the list lock before unparking/waking. Whichever side loses the
//! race, the waiter either observes the changed epoch (threads) or the
//! re-checked condition (wakers) and skips the sleep, or is present in a
//! list when the signaller drains it — there is no interleaving in which
//! the wakeup is lost (see `notify_all` for the fence argument that covers
//! the producer's fast path, `bump_and_drain` for why the bump and the
//! drain must not be separated, and
//! [`register_waker`](Notifier::register_waker) for the waker-path variant
//! of the argument).
//!
//! Waker registration follows the same **register → re-check** discipline
//! as parking, minus the park: a future's `poll` registers its waker
//! ([`Notifier::register_waker`]), re-checks its wake condition, and only
//! then returns `Pending`; a completed or cancelled future withdraws with
//! [`Notifier::cancel_waker`]. Drained waker lists recycle through a
//! bounded free list, so the steady-state register/wake/re-register cycle
//! performs **zero heap allocations** (asserted by the counting-allocator
//! suite in `tests/alloc_async.rs`).
//!
//! The notifier also owns the pool's **lifecycle bit**: [`close`](Notifier::close)
//! flips a sticky flag and wakes everyone, so blocked removers can drain
//! the remaining elements and report
//! [`RemoveError::Closed`](crate::RemoveError::Closed).
//!
//! ```
//! use cpool::notify::Notifier;
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use std::thread;
//!
//! let notifier = Notifier::new();
//! let ready = AtomicBool::new(false);
//! thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut w = notifier.waiter();
//!         while !ready.load(Ordering::Acquire) {
//!             w.wait(None); // parks; no lost wakeup even if `ready` flips now
//!         }
//!     });
//!     ready.store(true, Ordering::Release);
//!     notifier.notify_all(); // condition first, then the signal
//! });
//! ```

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::task::Waker;
use std::thread::Thread;
use std::time::Instant;

use parking_lot::Mutex;

use crate::transfer::FreeList;

/// Recycled waker-list shells kept per notifier: enough for a signaller to
/// be mid-delivery on every shell while new signals keep arriving, without
/// the drain path ever allocating in steady state.
const WAKER_SHELLS: usize = 8;

/// Both registration lists, behind one lock so an epoch bump drains them
/// as a single atomic step (see `bump_and_drain`).
#[derive(Debug, Default)]
struct WaitList {
    /// Parked threads, keyed by a per-wait ticket so a waiter can withdraw
    /// its own registration without touching anyone else's.
    parked: Vec<(u64, Thread)>,
    /// Registered task wakers, keyed the same way so a future can cancel
    /// its own registration (completion, drop, or waker replacement).
    wakers: Vec<(u64, Waker)>,
}

/// What `bump_and_drain` hands back for delivery outside the lock.
struct Drained {
    parked: Vec<(u64, Thread)>,
    /// `None` when no wakers were registered; otherwise a recycled shell
    /// the caller must return via `recycle_waker_shell` after waking.
    wakers: Option<Vec<(u64, Waker)>>,
}

/// A per-pool wakeup channel: signal epoch, registered parkers and task
/// wakers, and the pool's closed bit. See the [module docs](self) for the
/// protocol.
#[derive(Debug)]
pub struct Notifier {
    /// Signal epoch: bumped by every `notify_all`. A waiter parks only if
    /// the epoch is unchanged since it last looked.
    epoch: AtomicU64,
    /// Number of waiters currently registered or inside the prepare→park
    /// window: threads holding a [`Waiter`] *plus* wakers registered via
    /// [`register_waker`](Self::register_waker). Lets the add fast path
    /// skip the epoch bump entirely when nobody can possibly be waiting.
    waiters: AtomicUsize,
    /// Sticky lifecycle bit set by [`close`](Self::close).
    closed: AtomicBool,
    /// Both registration lists under one lock.
    waitlist: Mutex<WaitList>,
    /// Ticket mint for both registration lists.
    next_ticket: AtomicU64,
    /// Recycled waker-vector shells: a drain swaps the registered list out
    /// into a shell from here and returns it after waking, so signalling
    /// N pending futures allocates nothing once warmed.
    waker_shells: FreeList<Vec<(u64, Waker)>>,
}

impl Default for Notifier {
    fn default() -> Self {
        Notifier {
            epoch: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            waitlist: Mutex::new(WaitList::default()),
            next_ticket: AtomicU64::new(0),
            waker_shells: FreeList::new(WAKER_SHELLS),
        }
    }
}

/// What ended a [`Waiter::wait`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitOutcome {
    /// A signal arrived (the epoch advanced): re-check the wake condition.
    Signalled,
    /// The deadline passed before any signal.
    TimedOut,
}

impl Notifier {
    /// Creates a notifier with no waiters and the pool open.
    pub fn new() -> Self {
        Notifier::default()
    }

    /// Registers the calling thread as a prospective waiter and snapshots
    /// the signal epoch.
    ///
    /// Take the waiter **before** re-checking the wake condition; signals
    /// sent after this call are guaranteed to be observed, either by the
    /// condition re-check or by [`Waiter::wait`] declining to park.
    pub fn waiter(&self) -> Waiter<'_> {
        // The increment-then-fence pairs with the fence-then-load in
        // `notify_all` (symmetric SC fences over different objects): in
        // the fences' total order, either this side's fence precedes the
        // signaller's — then the signaller's `waiters` load sees the
        // increment and it bumps the epoch — or the signaller's fence
        // precedes this one, in which case the condition write sequenced
        // before that fence is visible to this thread's condition
        // re-check, sequenced after this fence. Either way the wakeup
        // cannot be lost. (The RMW alone would suffice on x86, but the
        // cross-object guarantee formally needs the fence pair.)
        self.waiters.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let seen = self.epoch.load(Ordering::SeqCst);
        Waiter { notifier: self, seen }
    }

    /// Number of consumers currently waiting: threads in the prepare→park
    /// window plus armed async waker registrations. Racy by nature — it is
    /// a diagnostic and a *heuristic*: the magazine layer's add path (see
    /// [`magazine`](crate::magazine)) reads it (one shared load, no RMW)
    /// to decide between caching an element handle-locally and flushing it
    /// pool-visibly so a parked remover can find it. A waiter that parks
    /// just after the check is caught by the producer's next operation or
    /// lifecycle flush, so the race widens latency, never loses a wakeup.
    pub fn waiters(&self) -> usize {
        self.waiters.load(Ordering::SeqCst)
    }

    /// Current signal epoch (diagnostic; racy by nature).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of threads currently registered in the parked list
    /// (diagnostic; racy by nature).
    pub fn parked(&self) -> usize {
        self.waitlist.lock().parked.len()
    }

    /// Number of task wakers currently registered (diagnostic; racy by
    /// nature).
    pub fn registered_wakers(&self) -> usize {
        self.waitlist.lock().wakers.len()
    }

    /// Registers a task waker to be woken by the next signal and returns
    /// the ticket that identifies the registration.
    ///
    /// This is the async half of the parking protocol — **register, then
    /// re-check**: after this call returns, the caller must re-check its
    /// wake condition (elements present, pool closed, gate tripped) and
    /// only return `Pending` if it still holds. The registration is
    /// *level-triggered*: it stays armed until a signal drains it (waking
    /// the task) or the owner withdraws it with
    /// [`cancel_waker`](Self::cancel_waker) — completed and dropped
    /// futures **must** cancel, both to keep the waiter count honest and
    /// to avoid spurious wakes of a recycled task slot.
    ///
    /// # Memory ordering
    ///
    /// The increment-then-fence mirrors [`waiter`](Self::waiter) and pairs
    /// with the fence-then-load in [`notify_all`](Self::notify_all)
    /// (symmetric SeqCst fences, the same Dekker shape documented on
    /// `SearchGate::register`). Three interleavings cover every race with
    /// a signaller, and unlike the parking path none of them needs an
    /// epoch snapshot — the post-registration re-check carries the whole
    /// argument:
    ///
    /// 1. **Signaller takes the fast path** (reads `waiters == 0`): its
    ///    load preceded this increment in the SC order, so its fence
    ///    precedes ours, so the condition store sequenced before its fence
    ///    is visible to our post-registration re-check — the caller
    ///    observes the condition and never goes pending.
    /// 2. **Signaller drained before our push**: the drain holds the list
    ///    lock, the push acquires it afterwards, and the condition store
    ///    happened-before the signaller took the lock — the lock's
    ///    release/acquire edge publishes the condition to our re-check.
    /// 3. **Our push landed before the drain**: we are in the drained set
    ///    and the signaller wakes us after delivering the condition.
    ///
    /// Which accessors may stay `Relaxed`: only `next_ticket` (below) —
    /// it mints unique ids and publishes nothing — and the diagnostic
    /// counters' readers. `waiters`, `epoch`, and `closed` stay SeqCst on
    /// every path: `waiters` anchors the fence pairing above, `epoch`
    /// orders the bump inside the drain's critical section, and `closed`
    /// is re-checked *after* registration, so a relaxed load could float
    /// above the registration fence and reopen the lost-wakeup window
    /// that case 1 closes.
    pub fn register_waker(&self, waker: &Waker) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Relaxed is fine for the mint: tickets only need to be unique,
        // and the registration itself is published by the list lock.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.waitlist.lock().wakers.push((ticket, waker.clone()));
        ticket
    }

    /// Withdraws a waker registration made by
    /// [`register_waker`](Self::register_waker).
    ///
    /// Returns `true` if the registration was still armed (and is now
    /// removed), `false` if a signal already drained it — in which case
    /// the wake was (or is about to be) delivered and the drain already
    /// settled the waiter count. Safe to call from a future's `Drop`
    /// concurrently with signallers: removal happens under the list lock,
    /// so exactly one side retires any given ticket.
    pub fn cancel_waker(&self, ticket: u64) -> bool {
        let found = {
            let mut list = self.waitlist.lock();
            match list.wakers.iter().position(|(t, _)| *t == ticket) {
                Some(i) => {
                    list.wakers.swap_remove(i);
                    true
                }
                None => false,
            }
        };
        if found {
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
        found
    }

    /// Wakes every current and in-flight waiter.
    ///
    /// Call **after** making the awaited condition true (element added and
    /// segment lock released, pool closed, gate transition completed). Free
    /// when nobody is waiting: one fence plus one shared load, no RMW — so
    /// the uncontended add path does not ping-pong a notifier cache line
    /// between producers.
    pub fn notify_all(&self) {
        // The fence closes the store-buffer window of the fast-path check:
        // without it the condition store could still be in this CPU's
        // write buffer when `waiters` is read, allowing both this thread to
        // miss the waiter *and* the waiter to miss the condition. With the
        // fence (paired with the waiter's SeqCst RMW in `waiter`), one of
        // the two sides is guaranteed to see the other.
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        self.deliver(self.bump_and_drain());
    }

    /// Advances the epoch and empties both registration lists as one
    /// atomic step (with respect to waiter registration, which takes the
    /// same lock).
    ///
    /// The bump and the drain must not be separated: if the bump could
    /// land long before the drain (a descheduled notifier), the drain
    /// would steal registrations made *after* the bump by waiters whose
    /// epoch snapshot already includes it — they absorb the resulting
    /// unpark as spurious (their epoch looks unchanged), re-park
    /// unregistered, and no later signal can ever reach them. Under the
    /// lock, a registration either completes before the bump (and is
    /// drained and meaningfully delivered) or starts after it (and its
    /// post-registration re-check — the pre-push epoch read for threads,
    /// the condition re-check for wakers — turns the wait into an
    /// immediate wake-up).
    ///
    /// Drained wakers leave in a recycled shell from `waker_shells`, and
    /// their share of the waiter count is settled here: a waker
    /// registration is consumed by the drain (one wake per registration),
    /// unlike a [`Waiter`] whose count persists until the guard drops.
    fn bump_and_drain(&self) -> Drained {
        let mut list = self.waitlist.lock();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let parked = std::mem::take(&mut list.parked);
        let wakers = if list.wakers.is_empty() {
            None
        } else {
            let mut shell = self.waker_shells.take().unwrap_or_default();
            debug_assert!(shell.is_empty());
            std::mem::swap(&mut list.wakers, &mut shell);
            self.waiters.fetch_sub(shell.len(), Ordering::SeqCst);
            Some(shell)
        };
        drop(list);
        Drained { parked, wakers }
    }

    /// Unparks and wakes everything a drain handed back, then returns the
    /// waker shell to the free list (cleared, capacity retained).
    fn deliver(&self, drained: Drained) {
        for (_, thread) in drained.parked {
            thread.unpark();
        }
        if let Some(mut wakers) = drained.wakers {
            for (_, waker) in wakers.drain(..) {
                waker.wake();
            }
            self.waker_shells.put(wakers);
        }
    }

    /// Closes the pool: a sticky, idempotent lifecycle transition.
    ///
    /// Blocked and future removers first drain whatever elements remain and
    /// then observe [`RemoveError::Closed`](crate::RemoveError::Closed);
    /// see [`PoolOps::close`](crate::PoolOps::close) for the pool-level
    /// story. The flag is set *before* the wakeup so a waiter that parks
    /// concurrently either sees the flag on its pre-park re-check or is
    /// woken by the signal — the close/park race cannot strand a waiter.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Always signal, even with the waiter fast path: close is a cold,
        // once-per-pool event and the unconditional epoch bump makes the
        // sticky transition visible to the next `waiter()` snapshot too.
        self.deliver(self.bump_and_drain());
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// A registered prospective waiter (see [`Notifier::waiter`]).
///
/// Holding a `Waiter` keeps the notifier's waiter count raised, which is
/// what forces concurrent signallers off their fast path; drop it as soon
/// as the wait is over.
#[derive(Debug)]
pub struct Waiter<'a> {
    notifier: &'a Notifier,
    seen: u64,
}

impl Waiter<'_> {
    /// Parks the calling thread until a signal newer than the last observed
    /// epoch arrives, or `deadline` passes.
    ///
    /// Returns [`WaitOutcome::Signalled`] immediately — without parking —
    /// if a signal already arrived since this waiter last looked, so the
    /// prepare→check→park window is race-free. Spurious unparks (stale
    /// tokens from a previous wait on the same thread) are absorbed
    /// internally. After a `Signalled` return the waiter's snapshot is
    /// refreshed: re-check the condition and call `wait` again to keep
    /// waiting.
    pub fn wait(&mut self, deadline: Option<Instant>) -> WaitOutcome {
        let notifier = self.notifier;
        let ticket = notifier.next_ticket.fetch_add(1, Ordering::Relaxed);
        {
            let mut list = notifier.waitlist.lock();
            // Re-read the epoch while registered: a signal between our last
            // look and this registration already drained the list, so
            // parking now would sleep through it.
            let now = notifier.epoch.load(Ordering::SeqCst);
            if now != self.seen {
                self.seen = now;
                return WaitOutcome::Signalled;
            }
            list.parked.push((ticket, std::thread::current()));
        }
        let outcome = loop {
            let now = notifier.epoch.load(Ordering::SeqCst);
            if now != self.seen {
                self.seen = now;
                break WaitOutcome::Signalled;
            }
            match deadline {
                None => std::thread::park(),
                Some(deadline) => {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        break WaitOutcome::TimedOut;
                    };
                    std::thread::park_timeout(remaining);
                }
            }
        };
        // Withdraw our registration if a notifier did not already drain it
        // (timeout, or a signal observed via the epoch before the unpark).
        notifier.waitlist.lock().parked.retain(|(t, _)| *t != ticket);
        if outcome == WaitOutcome::TimedOut {
            self.seen = notifier.epoch.load(Ordering::SeqCst);
        }
        outcome
    }
}

impl Drop for Waiter<'_> {
    fn drop(&mut self) {
        self.notifier.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn notify_without_waiters_is_free_and_sticky_close_is_not() {
        let n = Notifier::new();
        n.notify_all();
        assert_eq!(n.epoch.load(Ordering::SeqCst), 0, "no waiters: no epoch bump");
        n.close();
        assert!(n.is_closed());
        assert_eq!(n.epoch.load(Ordering::SeqCst), 1, "close always signals");
        n.close();
        assert!(n.is_closed(), "close is idempotent");
    }

    #[test]
    fn signal_between_snapshot_and_park_is_not_lost() {
        let n = Notifier::new();
        let mut w = n.waiter();
        // Signal lands after the waiter snapshotted the epoch but before it
        // parks: wait must return immediately.
        n.notify_all();
        assert_eq!(w.wait(None), WaitOutcome::Signalled);
    }

    #[test]
    fn wait_times_out_without_signal() {
        let n = Notifier::new();
        let mut w = n.waiter();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(w.wait(Some(deadline)), WaitOutcome::TimedOut);
        assert_eq!(n.parked(), 0, "timed-out waiter withdrew its registration");
    }

    #[test]
    fn parked_thread_is_woken_by_notify() {
        let n = Notifier::new();
        let woken = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (n, woken) = (&n, &woken);
                s.spawn(move || {
                    let mut w = n.waiter();
                    while w.wait(None) != WaitOutcome::Signalled {}
                    woken.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Wait until all four are registered as waiters, then signal.
            while n.waiters() < 4 {
                std::thread::yield_now();
            }
            n.notify_all();
        });
        assert_eq!(woken.load(Ordering::SeqCst), 4);
        assert_eq!(n.waiters(), 0, "every waiter deregistered on drop");
    }

    #[test]
    fn close_wakes_parked_threads() {
        let n = Notifier::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = n.waiter();
                while !n.is_closed() {
                    let _ = w.wait(None);
                }
            });
            while n.waiters() < 1 {
                std::thread::yield_now();
            }
            n.close();
        });
        assert!(n.is_closed());
    }

    /// A test waker that counts its wakes.
    struct CountingWake(AtomicUsize);

    impl std::task::Wake for CountingWake {
        fn wake(self: std::sync::Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (std::sync::Arc<CountingWake>, std::task::Waker) {
        let state = std::sync::Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = std::task::Waker::from(std::sync::Arc::clone(&state));
        (state, waker)
    }

    #[test]
    fn registered_waker_is_woken_exactly_once_per_registration() {
        let n = Notifier::new();
        let (state, waker) = counting_waker();
        n.register_waker(&waker);
        assert_eq!(n.registered_wakers(), 1);
        assert_eq!(n.waiters(), 1, "waker registrations hold the waiter count up");
        n.notify_all();
        assert_eq!(state.0.load(Ordering::SeqCst), 1);
        assert_eq!(n.registered_wakers(), 0, "signal consumed the registration");
        assert_eq!(n.waiters(), 0, "drain settled the waker's waiter count");
        n.notify_all();
        assert_eq!(state.0.load(Ordering::SeqCst), 1, "no registration, no wake");
    }

    #[test]
    fn cancelled_waker_is_never_woken() {
        let n = Notifier::new();
        let (state, waker) = counting_waker();
        let ticket = n.register_waker(&waker);
        assert!(n.cancel_waker(ticket), "still armed");
        assert!(!n.cancel_waker(ticket), "second cancel is a no-op");
        assert_eq!(n.waiters(), 0);
        n.notify_all();
        assert_eq!(state.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancel_after_drain_reports_delivery() {
        let n = Notifier::new();
        let (state, waker) = counting_waker();
        let ticket = n.register_waker(&waker);
        n.notify_all();
        assert!(!n.cancel_waker(ticket), "the signal already consumed the ticket");
        assert_eq!(state.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn close_wakes_registered_wakers() {
        let n = Notifier::new();
        let (state, waker) = counting_waker();
        n.register_waker(&waker);
        n.close();
        assert_eq!(state.0.load(Ordering::SeqCst), 1, "close drains the waker list too");
        assert_eq!(n.waiters(), 0);
    }

    #[test]
    fn mixed_parkers_and_wakers_drain_together() {
        let n = Notifier::new();
        let (state, waker) = counting_waker();
        n.register_waker(&waker);
        let woken = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (n, woken) = (&n, &woken);
            s.spawn(move || {
                let mut w = n.waiter();
                while w.wait(None) != WaitOutcome::Signalled {}
                woken.fetch_add(1, Ordering::SeqCst);
            });
            while n.parked() < 1 {
                std::thread::yield_now();
            }
            n.notify_all();
        });
        assert_eq!(woken.load(Ordering::SeqCst), 1);
        assert_eq!(state.0.load(Ordering::SeqCst), 1, "one signal reached both lists");
    }

    #[test]
    fn waker_shells_recycle_across_signal_rounds() {
        let n = Notifier::new();
        let (_state, waker) = counting_waker();
        for _ in 0..4 {
            n.register_waker(&waker);
            n.notify_all();
        }
        assert!(n.waker_shells.cached() >= 1, "drained shells return to the free list");
    }

    #[test]
    fn producer_consumer_handoff_never_hangs() {
        // The lost-wakeup gauntlet: one flag flip + notify per round, a
        // consumer that parks whenever the flag is down. Any lost wakeup
        // hangs the test.
        let n = Notifier::new();
        let flag = AtomicUsize::new(0);
        let rounds = 2_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..rounds {
                    loop {
                        let mut w = n.waiter();
                        if flag.swap(0, Ordering::SeqCst) == 1 {
                            break;
                        }
                        let _ = w.wait(None);
                    }
                }
            });
            for _ in 0..rounds {
                flag.store(1, Ordering::SeqCst);
                n.notify_all();
                // Wait for the consumer to consume the flag before the next
                // round so rounds do not coalesce.
                while flag.load(Ordering::SeqCst) == 1 {
                    std::thread::yield_now();
                }
            }
        });
    }
}
