//! Segment-size traces: the raw material of Figures 3–6.
//!
//! "Each processor recorded its segment size at strategic points in the
//! program; these sizes were then plotted on the same time scale for
//! comparison. A steal is obvious as a sudden drop in the size of one
//! segment and a corresponding sudden increase in the size of another
//! segment." — Kotz & Ellis, §4.2.
//!
//! The [`TraceRecorder`] keeps one append-only buffer per process (so
//! recording never contends) and merges them into a single time-ordered
//! sequence on demand.

use parking_lot::Mutex;

use crate::ids::{ProcId, SegIdx};

/// What kind of event a trace sample marks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TraceKind {
    /// Local add completed.
    Add,
    /// Local remove completed.
    Remove,
    /// This segment was just stolen from (size dropped).
    StealFrom,
    /// This segment just received stolen elements (size jumped).
    StealInto,
}

/// One segment-size sample.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Timestamp (nanoseconds of the pool's clock).
    pub t_ns: u64,
    /// Process that caused the event.
    pub proc: ProcId,
    /// Segment whose size is reported.
    pub seg: SegIdx,
    /// Segment size immediately after the event.
    pub len: u32,
    /// Event kind.
    pub kind: TraceKind,
}

/// Per-process trace buffers for segment sizes over time.
#[derive(Debug)]
pub struct TraceRecorder {
    buffers: Box<[Mutex<Vec<TraceEvent>>]>,
}

impl TraceRecorder {
    /// Creates a recorder for `procs` processes.
    pub fn new(procs: usize) -> Self {
        TraceRecorder { buffers: (0..procs).map(|_| Mutex::new(Vec::new())).collect() }
    }

    /// Number of per-process buffers.
    pub fn procs(&self) -> usize {
        self.buffers.len()
    }

    /// Records one event on `event.proc`'s private buffer.
    ///
    /// Events from processes beyond the recorder's capacity are dropped
    /// (this only happens if more handles register than the pool was built
    /// to trace, which is a configuration mismatch, not data corruption).
    pub fn record(&self, event: TraceEvent) {
        if let Some(buffer) = self.buffers.get(event.proc.index()) {
            buffer.lock().push(event);
        }
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(|b| b.lock().len()).sum()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges all buffers into one sequence sorted by time (ties broken by
    /// process id for determinism).
    pub fn snapshot_sorted(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.buffers.iter().flat_map(|b| b.lock().clone()).collect();
        all.sort_by_key(|e| (e.t_ns, e.proc, e.seg));
        all
    }

    /// The time series of sizes for one segment: `(t_ns, len)` pairs.
    pub fn segment_series(&self, seg: SegIdx) -> Vec<(u64, u32)> {
        self.snapshot_sorted()
            .into_iter()
            .filter(|e| e.seg == seg)
            .map(|e| (e.t_ns, e.len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, proc: usize, seg: usize, len: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent { t_ns: t, proc: ProcId::new(proc), seg: SegIdx::new(seg), len, kind }
    }

    #[test]
    fn records_and_sorts_across_processes() {
        let rec = TraceRecorder::new(3);
        rec.record(ev(30, 2, 2, 5, TraceKind::Add));
        rec.record(ev(10, 0, 0, 1, TraceKind::Add));
        rec.record(ev(20, 1, 1, 0, TraceKind::Remove));
        let sorted = rec.snapshot_sorted();
        assert_eq!(sorted.len(), 3);
        assert!(sorted.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(sorted[0].seg, SegIdx::new(0));
    }

    #[test]
    fn segment_series_filters() {
        let rec = TraceRecorder::new(2);
        rec.record(ev(1, 0, 0, 10, TraceKind::Add));
        rec.record(ev(2, 1, 1, 3, TraceKind::Add));
        rec.record(ev(3, 1, 0, 5, TraceKind::StealFrom));
        assert_eq!(rec.segment_series(SegIdx::new(0)), vec![(1, 10), (3, 5)]);
        assert_eq!(rec.segment_series(SegIdx::new(1)), vec![(2, 3)]);
    }

    #[test]
    fn out_of_range_proc_is_dropped() {
        let rec = TraceRecorder::new(1);
        rec.record(ev(1, 5, 0, 1, TraceKind::Add));
        assert!(rec.is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let rec = TraceRecorder::new(2);
        rec.record(ev(7, 1, 1, 1, TraceKind::Add));
        rec.record(ev(7, 0, 0, 2, TraceKind::Add));
        let sorted = rec.snapshot_sorted();
        assert_eq!(sorted[0].proc, ProcId::new(0), "equal times ordered by process id");
    }
}
