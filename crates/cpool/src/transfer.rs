//! The transfer layer: typed batches moved between segments, and the pooled
//! free lists that make moving them allocation-free.
//!
//! Manber's block-organized segment gets its O(1) split from moving *whole
//! blocks* between segments, and Kotz & Ellis's measured runs deliberately
//! "eliminated the block transfer of stolen elements between processes" so
//! that search time would dominate. An earlier revision of this crate
//! nevertheless forced every transfer — steal, refill, batched remove —
//! through a by-value `Vec<Item>` at the [`Segment`](crate::Segment) trait
//! boundary, so the block segment flattened its blocks on every steal and
//! every transfer allocated on the hot path.
//!
//! This module fixes the boundary itself. A segment now names its transfer
//! currency with an associated `type Batch: TransferBatch`:
//!
//! * [`Vec<T>`] implements [`TransferBatch`] directly — the plain vector
//!   batch of [`VecSegment`](crate::VecSegment), and the migration shim for
//!   third-party segments (`type Batch = Vec<Self::Item>;` keeps an
//!   existing implementation compiling with its method bodies unchanged).
//! * [`CountBatch`] carries only a count — the counting segments' batch,
//!   allocation-free by construction (the paper's §3.2 measurement
//!   simplification stores no values at all).
//! * [`BlockBatch`](crate::segment::BlockBatch) hands whole blocks over by
//!   pointer — O(n/B) moves for an n-element steal with B-element blocks,
//!   no flattening.
//!
//! The second half of the story is the [`FreeList`]: a lock-free free list
//! of recycled containers (empty capacity-carrying blocks, spare batch
//! shells) that the steal, refill, and batch paths draw from and return
//! to, so the steady-state transfer paths allocate nothing. Blelloch &
//! Wei ("Concurrent Fixed-Size Allocation and Free in Constant Time")
//! make the case that fixed-size block recycling is the standard route to
//! allocation-free concurrent hot paths; this is that route, scoped per
//! pool. The list rides on `crossbeam_queue::ArrayQueue` — the bounded
//! Vyukov-style MPMC ring hand-rolled in the vendored `crossbeam-queue`
//! crate (this crate forbids `unsafe`, so the CAS loops live there). A
//! free list is bounded *by design* — beyond the cap a returned container
//! is dropped — which is exactly the shape the ring serves with a single
//! claimed-index CAS per operation; the tagged Treiber stack
//! (`crossbeam_queue::Stack`, the unbounded alternative) costs a
//! spare-node round trip on top of the head CAS, and the contention
//! matrix (`BENCH_contention.json`, `primitive/*` rows) measures the ring
//! several times faster at every thread count. Reuse order is FIFO rather
//! than the stack's cache-warm LIFO; on this trade the measurements were
//! unambiguous.

use crossbeam_queue::ArrayQueue;

/// A batch of elements in transit between segments.
///
/// The currency of [`Segment::steal_half`](crate::Segment::steal_half) /
/// [`add_bulk`](crate::Segment::add_bulk) /
/// [`remove_up_to`](crate::Segment::remove_up_to) /
/// [`drain_all`](crate::Segment::drain_all), of the steal engine's
/// two-phase probe, and of the batch results handed to callers through
/// [`SmallDrain`](crate::SmallDrain). Elements come back out in an
/// *unspecified order* — the pool is an unordered collection, and batch
/// representations (whole blocks, bare counts) are free to pick whatever
/// order is cheap.
///
/// `Vec<T>` implements the trait (`take_one` pops the back), so simple
/// segments need no bespoke batch type.
pub trait TransferBatch: Send + Sized {
    /// The element type the batch carries.
    type Item: Send + 'static;

    /// Creates an empty batch.
    fn empty() -> Self;

    /// Number of elements currently in the batch.
    fn len(&self) -> usize;

    /// Whether the batch holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns one element (unspecified order), or `None` if
    /// the batch is empty.
    ///
    /// This is how the two-phase steal keeps one element to satisfy the
    /// pending remove, and how [`SmallDrain`](crate::SmallDrain) iterates.
    fn take_one(&mut self) -> Option<Self::Item>;

    /// Adds one element to the batch.
    fn put_one(&mut self, item: Self::Item);

    /// Moves every element of `other` into this batch.
    fn append(&mut self, other: Self);

    /// Builds a batch from a vector of elements.
    ///
    /// Convenience for call sites that produce elements as a `Vec` (the
    /// frontends' `add_batch`, tests, benches); the default loops
    /// [`put_one`](Self::put_one).
    fn from_vec(items: Vec<Self::Item>) -> Self {
        let mut batch = Self::empty();
        for item in items {
            batch.put_one(item);
        }
        batch
    }

    /// Drains the batch into a vector (unspecified element order).
    fn into_vec(mut self) -> Vec<Self::Item> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(item) = self.take_one() {
            out.push(item);
        }
        out
    }
}

impl<T: Send + 'static> TransferBatch for Vec<T> {
    type Item = T;

    fn empty() -> Self {
        Vec::new()
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn take_one(&mut self) -> Option<T> {
        self.pop()
    }

    fn put_one(&mut self, item: T) {
        self.push(item);
    }

    fn append(&mut self, mut other: Self) {
        Vec::append(self, &mut other);
    }

    fn from_vec(items: Vec<T>) -> Self {
        items
    }

    fn into_vec(self) -> Vec<T> {
        self
    }
}

/// A count-only batch: the counting segments' transfer currency.
///
/// The paper's §3.2 measurement simplification represents a segment as "a
/// single counter that is atomically added to, subtracted from, or split in
/// half" — so the only thing a transfer needs to carry is *how many*. A
/// `CountBatch` is one machine word and never touches the heap.
///
/// ```
/// use cpool::transfer::{CountBatch, TransferBatch};
///
/// let mut batch = CountBatch::of(3);
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.take_one(), Some(()));
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CountBatch {
    count: usize,
}

impl CountBatch {
    /// A batch standing for `count` (indistinguishable) elements.
    pub fn of(count: usize) -> Self {
        CountBatch { count }
    }
}

impl TransferBatch for CountBatch {
    type Item = ();

    fn empty() -> Self {
        CountBatch { count: 0 }
    }

    fn len(&self) -> usize {
        self.count
    }

    fn take_one(&mut self) -> Option<()> {
        if self.count == 0 {
            None
        } else {
            self.count -= 1;
            Some(())
        }
    }

    fn put_one(&mut self, (): ()) {
        self.count += 1;
    }

    fn append(&mut self, other: Self) {
        self.count += other.count;
    }

    fn from_vec(items: Vec<()>) -> Self {
        // Vec<()> is a bare length (zero-sized elements never allocate).
        CountBatch { count: items.len() }
    }
}

/// Smallest transfer (elements moved, or shell capacity) worth a free-list
/// round trip.
///
/// A recycled container costs two free-list operations per cycle (take on
/// the steal, put on the refill); for a transfer of one or two elements
/// the general allocator's small-size fast path is cheaper than those two
/// synchronized hops, so the vector-based segments only draw and return
/// shells for transfers at least this large. (Block segments are exempt:
/// their currency is the block itself, which must be recycled at any size
/// or block churn would allocate on every local add/remove.)
pub(crate) const SHELL_SPILL_MIN: usize = 8;

/// Largest shell capacity (in elements) the vector-based segments return
/// to a free list.
///
/// The free lists bound the *number* of cached containers, not their
/// size; without this ceiling a single huge `add_batch` would donate its
/// backing buffer to the pool and pin that many bytes for the pool's
/// lifetime. Oversized shells are dropped and the next transfer of that
/// size allocates — a deliberate trade of one allocation for bounded
/// resident memory.
pub(crate) const SHELL_SPILL_MAX: usize = 8192;

/// A bounded lock-free free list of recycled containers.
///
/// Pools of [`BlockSegment`](crate::BlockSegment)s share one list of empty
/// capacity-carrying blocks (plus batch shells); pools of
/// [`VecSegment`](crate::VecSegment)s and keyed pools share a list of spare
/// vector shells. Steals, refills, and batch removes draw containers here
/// instead of the allocator, and consumers return emptied containers
/// instead of dropping them — so the steady-state transfer paths perform
/// zero allocations (verified by `tests/alloc_steal.rs`).
///
/// The list is *bounded*: beyond `cap` recycled containers the put drops
/// its argument, so a burst that inflates the pool cannot hoard memory
/// forever. The bound is structural — the backing ring holds exactly `cap`
/// slots, and a put that finds them full gets its container handed back
/// and drops it — so unlike a counter-guarded cap it cannot be overshot by
/// racing puts.
///
/// Public so third-party [`Segment`](crate::Segment) implementations can
/// build the same recycling discipline; the in-tree segments wire one up
/// per pool through [`Segment::new_family`](crate::Segment::new_family).
pub struct FreeList<T> {
    items: ArrayQueue<T>,
}

impl<T> FreeList<T> {
    /// Creates a list that retains at most `cap` containers (at least one
    /// slot is always provisioned: a zero-capacity free list would be a
    /// wordier way to write "drop everything").
    pub fn new(cap: usize) -> Self {
        FreeList { items: ArrayQueue::new(cap.max(1)) }
    }

    /// Takes a recycled container, if one is available.
    pub fn take(&self) -> Option<T> {
        self.items.pop()
    }

    /// Returns a container to the list; beyond the cap it is dropped.
    pub fn put(&self, item: T) {
        // A full ring hands the container back as the push error; letting
        // it fall out of scope here is the drop the cap promises.
        let _ = self.items.push(item);
    }

    /// Returns a container to the list, handing it back instead of
    /// dropping it when the ring is full.
    ///
    /// [`put`](Self::put) is the right call for *capacity* recycling,
    /// where a dropped shell costs only a future allocation. Callers whose
    /// containers carry *elements* — the magazine depot stashes full
    /// magazines here ([`magazine`](crate::magazine)) — must get the
    /// container back on overflow so the elements can be routed somewhere
    /// visible instead of destroyed.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the ring is at capacity.
    pub fn try_put(&self, item: T) -> Result<(), T> {
        self.items.push(item)
    }

    /// Number of containers currently cached (diagnostic snapshot).
    pub fn cached(&self) -> usize {
        self.items.len()
    }
}

impl<T> std::fmt::Debug for FreeList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FreeList")
            .field("cached", &self.cached())
            .field("cap", &self.items.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_batch_roundtrip() {
        let mut batch: Vec<u32> = TransferBatch::from_vec(vec![1, 2, 3]);
        assert_eq!(TransferBatch::len(&batch), 3);
        assert!(!TransferBatch::is_empty(&batch));
        assert_eq!(batch.take_one(), Some(3), "take_one pops the back");
        batch.put_one(9);
        TransferBatch::append(&mut batch, vec![7]);
        let mut out = TransferBatch::into_vec(batch);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 7, 9]);
    }

    #[test]
    fn count_batch_is_a_bare_count() {
        let mut batch = CountBatch::of(2);
        batch.put_one(());
        batch.append(CountBatch::of(5));
        assert_eq!(batch.len(), 8);
        let mut taken = 0;
        while batch.take_one().is_some() {
            taken += 1;
        }
        assert_eq!(taken, 8);
        assert!(batch.is_empty());
        assert_eq!(batch.take_one(), None);
        assert_eq!(CountBatch::from_vec(vec![(); 4]).len(), 4);
        assert_eq!(CountBatch::of(3).into_vec(), vec![(); 3]);
    }

    #[test]
    fn default_from_vec_and_into_vec_roundtrip() {
        // Exercise the trait defaults through a minimal custom batch.
        struct Pair(Vec<u8>);
        impl TransferBatch for Pair {
            type Item = u8;
            fn empty() -> Self {
                Pair(Vec::new())
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn take_one(&mut self) -> Option<u8> {
                self.0.pop()
            }
            fn put_one(&mut self, item: u8) {
                self.0.push(item);
            }
            fn append(&mut self, mut other: Self) {
                self.0.append(&mut other.0);
            }
        }
        let batch = Pair::from_vec(vec![1, 2, 3]);
        let mut out = batch.into_vec();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn free_list_recycles_and_bounds() {
        let list: FreeList<Vec<u8>> = FreeList::new(2);
        assert!(list.take().is_none());
        list.put(Vec::with_capacity(8));
        list.put(Vec::with_capacity(8));
        list.put(Vec::with_capacity(8)); // over cap: dropped
        assert_eq!(list.cached(), 2);
        assert!(list.take().is_some());
        assert!(list.take().is_some());
        assert!(list.take().is_none());
        assert_eq!(list.cached(), 0);
    }
}
