//! The concurrent pool: segments + search policy + livelock gate.
//!
//! A [`Pool`] owns one segment per processor, a shared search policy, the
//! [`SearchGate`] livelock breaker, and a [`Timing`] cost model. Processes
//! interact with the pool through per-process [`Handle`]s, which carry the
//! policy's per-process state (round number, ring position, RNG) and a
//! private statistics block.
//!
//! The cost model is a type parameter (`Pool<S, P, T: Timing>`, defaulting
//! to [`NullTiming`]): the uninstrumented pool monomorphizes to bare
//! lock/steal code, and runtime-selected models use the
//! [`DynTiming`](crate::timing::DynTiming) adapter — see
//! [`timing`](crate::timing) for choosing between them.
//!
//! # The steal protocol
//!
//! A `remove` first tries the local segment. If that is empty the process
//! registers as *searching* and runs the policy, which probes victim
//! segments through the pool's [`SearchEnv`]: a successful probe atomically
//! takes ⌈n/2⌉ elements from the victim, keeps one to satisfy the remove,
//! and moves the rest into the searcher's own segment ("by stealing half of
//! the elements found at the non-empty segment rather than just enough to
//! satisfy the immediate need, the searching process is trying to balance
//! the available reserves and prevent its next request from also having to
//! perform a search").
//!
//! The steal is two-phase — drain the victim under its own lock, then
//! refill the local segment under its lock — so no two segment locks are
//! ever held at once and thief/thief or thief/owner deadlock is impossible
//! by construction. The protocol itself (registration, lap-counted
//! gate-abort, the two-phase transfer, stats plumbing) lives in the shared
//! `core` engine; this module supplies the element model
//! (a [`Segment`] per processor) and the pluggable [`SearchPolicy`] driver.

use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

use crate::core::{OpTimer, Registry, SearchSession, WaitCtl};
use crate::error::RemoveError;
use crate::future::RemoveFuture;
use crate::gate::SearchGate;
use crate::hints::{HintBoard, HINT_BOARD_RESOURCE};
use crate::ids::{ProcId, SegIdx};
use crate::magazine::{CacheOutcome, Depot, MagazineCache, PopOutcome};
use crate::ops::{PoolOps, SmallDrain, WaitStrategy};
use crate::search::{
    DynPolicy, LinearSearch, NodeStoreKind, PolicyKind, ProbeOutcome, SearchEnv, SearchOutcome,
    SearchPolicy,
};
use crate::segment::Segment;
use crate::stats::{PoolStats, ProcStats};
use crate::timing::{NullTiming, Resource, Timing};
use crate::trace::{TraceEvent, TraceKind, TraceRecorder};
use crate::transfer::TransferBatch;

/// Configures and builds a [`Pool`].
///
/// The builder learns the segment count **once**, in [`new`](Self::new),
/// and wires it into everything that needs it — the segments themselves
/// and the search policy:
///
/// * [`build`](Self::build) — the default policy ([`LinearSearch`]);
/// * [`build_policy`](Self::build_policy) — a runtime-selected
///   [`PolicyKind`], constructed internally for this builder's segment
///   count and [`node_store`](Self::node_store);
/// * [`build_with_policy`](Self::build_with_policy) — a caller-constructed
///   policy instance, for policies the two forms above cannot express.
///
/// The cost model is a *type parameter* (defaulting to the free
/// [`NullTiming`]): [`timing`](Self::timing) rebinds it, so the model you
/// install is statically dispatched on the pool's hot path. Pass a
/// [`DynTiming`](crate::timing::DynTiming) (`Arc<dyn Timing>`) to select
/// the model at runtime instead.
///
/// ```
/// use cpool::prelude::*;
///
/// // The segment count is stated exactly once.
/// let pool: Pool<LockedCounter, DynPolicy> =
///     PoolBuilder::new(16).seed(42).record_trace(true).build_policy(PolicyKind::Tree);
/// assert_eq!(pool.segments(), 16);
/// assert_eq!(pool.policy_name(), "tree");
/// ```
///
/// Runtime-selected model through the adapter:
///
/// ```
/// use cpool::prelude::*;
/// use cpool::DynTiming;
/// use std::sync::Arc;
///
/// let model: DynTiming = Arc::new(NullTiming::new());
/// let pool: Pool<LockedCounter, LinearSearch, DynTiming> =
///     PoolBuilder::new(4).timing(model).build();
/// assert_eq!(pool.segments(), 4);
/// ```
#[must_use = "a PoolBuilder does nothing until one of its build methods is called"]
pub struct PoolBuilder<S, T: Timing = NullTiming> {
    segments: usize,
    seed: u64,
    timing: T,
    node_store: NodeStoreKind,
    record_trace: bool,
    trace_procs: Option<usize>,
    hints: bool,
    hint_procs: Option<usize>,
    add_overhead_ns: u64,
    remove_overhead_ns: u64,
    handle_cache: usize,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<S, T: Timing> std::fmt::Debug for PoolBuilder<S, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolBuilder")
            .field("segments", &self.segments)
            .field("seed", &self.seed)
            .field("record_trace", &self.record_trace)
            .finish_non_exhaustive()
    }
}

impl<S: Segment> PoolBuilder<S> {
    /// Starts building a pool with `segments` segments and the free
    /// [`NullTiming`] cost model.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "pool must have at least one segment");
        PoolBuilder {
            segments,
            seed: 0,
            timing: NullTiming::new(),
            node_store: NodeStoreKind::default(),
            record_trace: false,
            trace_procs: None,
            hints: false,
            hint_procs: None,
            add_overhead_ns: 0,
            remove_overhead_ns: 0,
            handle_cache: 0,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S: Segment, T: Timing> PoolBuilder<S, T> {
    /// Sets the seed from which all per-process randomness derives.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a cost model (defaults to [`NullTiming`]), rebinding the
    /// builder's timing type parameter.
    ///
    /// The model is statically dispatched: pass a concrete type to compile
    /// the charges into the pool, or a [`DynTiming`](crate::timing::DynTiming)
    /// to choose one at runtime.
    pub fn timing<T2: Timing>(self, timing: T2) -> PoolBuilder<S, T2> {
        PoolBuilder {
            segments: self.segments,
            seed: self.seed,
            timing,
            node_store: self.node_store,
            record_trace: self.record_trace,
            trace_procs: self.trace_procs,
            hints: self.hints,
            hint_procs: self.hint_procs,
            add_overhead_ns: self.add_overhead_ns,
            remove_overhead_ns: self.remove_overhead_ns,
            handle_cache: self.handle_cache,
            _marker: std::marker::PhantomData,
        }
    }

    /// Selects the superimposed tree's round-counter synchronization for
    /// policies built through [`build_policy`](Self::build_policy)
    /// (defaults to the paper's [`NodeStoreKind::Locked`]; ignored by the
    /// linear and random policies).
    pub fn node_store(mut self, store: NodeStoreKind) -> Self {
        self.node_store = store;
        self
    }

    /// Enables segment-size trace recording (Figures 3–6 instrumentation).
    pub fn record_trace(mut self, enabled: bool) -> Self {
        self.record_trace = enabled;
        self
    }

    /// Number of processes the trace recorder should accommodate (defaults
    /// to the segment count).
    pub fn trace_procs(mut self, procs: usize) -> Self {
        self.trace_procs = Some(procs);
        self
    }

    /// Enables the search-hint extension (§5 of the paper, answered in
    /// [`hints`](crate::hints)): adds are redirected to processes whose
    /// removes are searching.
    pub fn hints(mut self, enabled: bool) -> Self {
        self.hints = enabled;
        self
    }

    /// Number of mailboxes on the hint board (defaults to the segment
    /// count; processes with higher ids fall back to plain searching).
    pub fn hint_procs(mut self, procs: usize) -> Self {
        self.hint_procs = Some(procs);
        self
    }

    /// Fixed per-operation computation charged (through the cost model) to
    /// every add and every remove *attempt*, on top of the shared-memory
    /// accesses the operation performs. Batched operations pay it once per
    /// batch — that amortization is the point of the batch API.
    ///
    /// This models the base cost of the operation's own code path. Kotz &
    /// Ellis report "typical undelayed segment operation times \[of\]
    /// approximately 70 µsec for add operations and 110 µsec for remove
    /// operations" on the Butterfly; with the default 10 µs segment access
    /// of `numa_sim::LatencyModel::butterfly`, overheads of 60 µs / 100 µs
    /// reproduce those totals. Defaults to zero (raw library speed).
    pub fn op_overhead(mut self, add_ns: u64, remove_ns: u64) -> Self {
        self.add_overhead_ns = add_ns;
        self.remove_overhead_ns = remove_ns;
        self
    }

    /// Gives every registered handle a private two-magazine element cache
    /// of `depth` elements per magazine, exchanged with a shared per-pool
    /// depot (see [`magazine`](crate::magazine)). Zero — the default —
    /// disables the layer entirely.
    ///
    /// Cached elements are invisible to [`total_len`](Pool::total_len),
    /// to other handles, and to per-segment occupancy until they flush, so
    /// enable this only for throughput-oriented flows that tolerate the
    /// relaxed visibility — see the README's "Handle-local caching"
    /// section for the semantics and the cases where the layer should stay
    /// off.
    pub fn handle_cache(mut self, depth: usize) -> Self {
        self.handle_cache = depth;
        self
    }

    /// Builds the pool with the default search policy: [`LinearSearch`],
    /// constructed for this builder's segment count (§5's conclusion that
    /// "the linear or the random search algorithm may suffice and provide
    /// better performance").
    ///
    /// ```
    /// use cpool::prelude::*;
    ///
    /// let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(8).build();
    /// assert_eq!(pool.policy_name(), "linear");
    /// ```
    #[must_use]
    pub fn build(self) -> Pool<S, LinearSearch, T> {
        let segments = self.segments;
        self.build_with_policy(LinearSearch::new(segments))
    }

    /// Builds the pool with a runtime-selected search algorithm.
    ///
    /// The policy is constructed internally for this builder's segment
    /// count (and [`node_store`](Self::node_store), for the tree), so the
    /// count is stated exactly once per pool — the
    /// `PoolBuilder::new(n).build_with_policy(LinearSearch::new(n))`
    /// double-`n` pattern is what this method replaces.
    ///
    /// ```
    /// use cpool::prelude::*;
    ///
    /// for kind in PolicyKind::ALL {
    ///     let pool: Pool<LockedCounter, DynPolicy> = PoolBuilder::new(4).build_policy(kind);
    ///     assert_eq!(pool.policy_name(), kind.to_string());
    /// }
    /// ```
    #[must_use]
    pub fn build_policy(self, kind: PolicyKind) -> Pool<S, DynPolicy, T> {
        let policy = kind.build(self.segments, self.node_store);
        self.build_with_policy(policy)
    }

    /// Builds the pool with a caller-constructed search policy.
    ///
    /// Prefer [`build`](Self::build) or [`build_policy`](Self::build_policy)
    /// where they suffice: both wire the builder's segment count into the
    /// policy themselves, while this method requires the caller to repeat
    /// it (`PoolBuilder::new(n)` *and* `LinearSearch::new(n)`) and panics
    /// later if the two disagree. It remains the escape hatch for policy
    /// instances the other builders cannot express — a concrete policy
    /// type parameter, a pre-built [`DynPolicy`], or a
    /// [`TreeSearch`](crate::search::TreeSearch) with a custom store.
    ///
    /// # Panics
    ///
    /// Panics if the policy was constructed for a different segment count
    /// (checked in debug builds when the first handle searches).
    #[must_use]
    pub fn build_with_policy<P: SearchPolicy>(self, policy: P) -> Pool<S, P, T> {
        // Segments are built as one family so representations with pooled
        // resources (the block segment's block cache, the vec segment's
        // shell cache) share them across the pool.
        let segments: Box<[S]> = S::new_family(self.segments).into();
        let trace = self
            .record_trace
            .then(|| TraceRecorder::new(self.trace_procs.unwrap_or(self.segments)));
        let hints = self.hints.then(|| HintBoard::new(self.hint_procs.unwrap_or(self.segments)));
        // Depot rings sized so every segment's worth of handles can have a
        // magazine in flight plus slack: overflowing the ring is handled
        // (the exchange falls back to the shared path), it just costs the
        // amortization.
        let depot =
            (self.handle_cache > 0).then(|| Depot::new(self.handle_cache, 2 * self.segments + 2));
        Pool {
            shared: Arc::new(Shared {
                segments,
                policy,
                registry: Registry::new(),
                timing: self.timing,
                seed: self.seed,
                trace,
                hints,
                add_overhead_ns: self.add_overhead_ns,
                remove_overhead_ns: self.remove_overhead_ns,
                depot,
                handle_cache: self.handle_cache,
            }),
        }
    }
}

pub(crate) struct Shared<S: Segment, P, T> {
    segments: Box<[S]>,
    policy: P,
    registry: Registry,
    timing: T,
    seed: u64,
    trace: Option<TraceRecorder>,
    hints: Option<HintBoard<S::Item>>,
    add_overhead_ns: u64,
    remove_overhead_ns: u64,
    /// The magazine exchange point, present when the pool was built with a
    /// non-zero [`PoolBuilder::handle_cache`] depth.
    depot: Option<Depot<S::Item>>,
    /// The configured magazine depth (elements per magazine; zero = off).
    handle_cache: usize,
}

impl<S: Segment, P: SearchPolicy, T: Timing> Shared<S, P, T> {
    /// The pool's wakeup channel.
    pub(crate) fn notifier(&self) -> &crate::notify::Notifier {
        self.registry.notifier()
    }

    /// Whether every pool-visible element store is empty right now — all
    /// segments plus the magazine depot's stashed gauge (overstate-only,
    /// so an in-flight exchange can never make this falsely true). This is
    /// the drained snapshot the remove drivers use for their terminal
    /// mapping; elements cached in *handles'* magazines are deliberately
    /// not counted (see [`magazine`](crate::magazine) for why that cannot
    /// strand a waiter).
    pub(crate) fn drained(&self) -> bool {
        self.segments.iter().all(Segment::is_empty)
            && self.depot.as_ref().is_none_or(|d| d.stashed() == 0)
    }

    /// Fresh per-searcher policy state anchored at `home` (what
    /// [`Pool::register`] builds for a handle; futures build their own).
    pub(crate) fn init_state(&self, home: SegIdx) -> P::State {
        self.policy.init_state(home, self.segments.len(), self.seed)
    }

    /// One remove pass: local try, then — if the local segment is empty —
    /// a full policy search with the steal protocol. This is the engine
    /// both `Handle::try_remove` and the async futures drive; the handle
    /// passes `detached: false` (gate-registered search, hint-board
    /// participation), a future `detached: true` (observe the gate without
    /// counting as a searcher — see [`SearchSession::begin_detached`] —
    /// and stay off the hint board, whose mailboxes are per-[`ProcId`] and
    /// would be shared with the handle that created the future).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn remove_pass(
        &self,
        me: ProcId,
        home: SegIdx,
        state: &mut P::State,
        stats: &mut ProcStats,
        detached: bool,
        overhead_ns: u64,
        mut wait: Option<&mut WaitCtl<'_>>,
    ) -> Result<S::Item, RemoveError> {
        let timer = OpTimer::start(&self.timing, me, overhead_ns);
        self.timing.charge(me, Resource::Segment(home));
        if let Some(item) = self.segments[home.index()].try_remove() {
            timer.finish_local_remove(stats);
            self.record_trace(me, home, TraceKind::Remove);
            return Ok(item);
        }

        // Local segment empty: before searching, raid the magazine depot —
        // a full magazine stashed there is closer than any victim segment,
        // and draining it keeps producer-cached elements flowing to
        // consumers that have no magazine of their own (futures, detached
        // removers, plain handles on a cached pool).
        if let Some(depot) = &self.depot {
            if let Some((item, rest)) = depot.raid() {
                if let Some(rest) = rest {
                    // The ring refilled while the magazine was out: bank
                    // the remainder in the home segment so the elements
                    // stay pool-visible, then retire them from the gauge.
                    let n = rest.len();
                    self.timing.charge(me, Resource::Segment(home));
                    self.segments[home.index()].add_bulk_vec(rest);
                    self.registry.notifier().notify_all();
                    depot.unstash(n);
                }
                stats.depot_exchanges += 1;
                timer.finish_depot_remove(stats);
                return Ok(item);
            }
        }

        // Still nothing: search remote segments, guarded by the gate.
        // With hints enabled the searcher posts on the board *after one
        // full fruitless lap* (see `PoolSearchEnv::should_abort`): batch
        // steals remain the first-line mechanism — they balance reserves in
        // a way single-element deliveries cannot — and donations target
        // exactly the long-tail searches that batches cannot satisfy.
        if let Some(ctl) = wait.as_deref_mut() {
            ctl.begin_pass();
        }
        let lap = self.segments.len() as u64;
        let session = if detached {
            SearchSession::begin_detached(&self.timing, self.registry.gate(), me, home, lap)
        } else {
            SearchSession::begin(&self.timing, self.registry.gate(), me, home, lap)
        };
        let hints = if detached { None } else { self.hints.as_ref() };
        let mut env = PoolSearchEnv {
            shared: self,
            session,
            hints,
            stolen: 0,
            taken: None,
            victim: None,
            wait,
        };
        let outcome = self.policy.search(state, &mut env);
        let PoolSearchEnv { session, stolen, mut taken, victim, hints, .. } = env;
        let search_t0 = session.started_ns();
        stats.segments_examined += session.examined();
        stats.tree_nodes_visited += session.nodes_visited();
        // End the search (releasing the gate) before touching the board so
        // a donor's glance cannot deliver into a finished search; then
        // withdraw whatever happened — a donation that raced with the end
        // of the search is recovered here, never lost.
        drop(session);
        let delivery = hints.and_then(|b| b.cancel(me));
        match outcome {
            SearchOutcome::Found => {
                let item = taken.take().expect("search reported Found without an element");
                let victim = victim.expect("search reported Found without a victim");
                if let Some(extra) = delivery {
                    // Both a steal and a donation: keep the stolen element
                    // for the caller and bank the donation locally (and
                    // wake parked waiters — the banked element is fresh
                    // availability they were never signalled about).
                    self.timing.charge(me, Resource::Segment(home));
                    self.segments[home.index()].add(extra);
                    self.registry.notifier().notify_all();
                }
                timer.finish_steal_remove(stats, stolen, search_t0);
                self.record_trace(me, victim, TraceKind::StealFrom);
                self.record_trace(me, home, TraceKind::StealInto);
                Ok(item)
            }
            SearchOutcome::Aborted if delivery.is_some() => {
                // The search saw the delivery (or the gate fired just as a
                // donor came through): the donated element satisfies the
                // remove without any steal.
                let item = delivery.expect("guard checked");
                timer.finish_hinted_remove(stats);
                Ok(item)
            }
            SearchOutcome::Aborted => {
                debug_assert!(taken.is_none());
                timer.finish_aborted(stats);
                Err(self.abort_error())
            }
        }
    }

    /// Maps a search abort to its caller-facing error: an abort on a
    /// closed *and drained* pool is the end of the pool's life
    /// ([`RemoveError::Closed`]); anything else keeps the §3.2
    /// [`RemoveError::Aborted`] semantics (a closed pool that still holds
    /// elements must drain them first).
    fn abort_error(&self) -> RemoveError {
        if self.registry.notifier().is_closed() && self.drained() {
            RemoveError::Closed
        } else {
            RemoveError::Aborted
        }
    }

    fn record_trace(&self, me: ProcId, seg: SegIdx, kind: TraceKind) {
        if let Some(trace) = &self.trace {
            trace.record(TraceEvent {
                t_ns: self.timing.now(me),
                proc: me,
                seg,
                len: self.segments[seg.index()].len() as u32,
                kind,
            });
        }
    }
}

/// A concurrent pool: a distributed, unordered collection of items.
///
/// The third type parameter is the statically-dispatched cost model; the
/// default [`NullTiming`] compiles every charge away (see
/// [`timing`](crate::timing)). Cloning a `Pool` is cheap (it is an `Arc`
/// handle to shared state); all clones refer to the same pool. See the
/// [crate docs](crate) for an end-to-end example.
pub struct Pool<S: Segment, P: SearchPolicy, T: Timing = NullTiming> {
    shared: Arc<Shared<S, P, T>>,
}

impl<S: Segment, P: SearchPolicy, T: Timing> Clone for Pool<S, P, T> {
    fn clone(&self) -> Self {
        Pool { shared: Arc::clone(&self.shared) }
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> std::fmt::Debug for Pool<S, P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("segments", &self.shared.segments.len())
            .field("policy", &self.shared.policy.name())
            .field("registered", &self.shared.registry.gate().registered())
            .finish_non_exhaustive()
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> Pool<S, P, T> {
    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.shared.segments.len()
    }

    /// Name of the search policy in use.
    pub fn policy_name(&self) -> &'static str {
        self.shared.policy.name()
    }

    /// Direct access to the policy (e.g. to inspect tree round counters).
    pub fn policy(&self) -> &P {
        &self.shared.policy
    }

    /// The livelock gate (mainly for diagnostics and tests).
    pub fn gate(&self) -> &SearchGate {
        self.shared.registry.gate()
    }

    /// The pool's cost model.
    pub fn timing(&self) -> &T {
        &self.shared.timing
    }

    /// The trace recorder, if tracing was enabled at build time.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.shared.trace.as_ref()
    }

    /// The hint board, if the hint extension was enabled at build time.
    pub fn hint_board(&self) -> Option<&HintBoard<S::Item>> {
        self.shared.hints.as_ref()
    }

    /// Current size of one segment (snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn segment_len(&self, seg: SegIdx) -> usize {
        self.shared.segments[seg.index()].len()
    }

    /// Total number of elements across all segments (snapshot; exact only
    /// while no operations are in flight).
    ///
    /// Elements cached in handle magazines or stashed in the depot are
    /// **not** counted — see [`depot_len`](Self::depot_len),
    /// [`Handle::cached_len`], and [`magazine`](crate::magazine) for the
    /// visibility semantics.
    pub fn total_len(&self) -> usize {
        self.shared.segments.iter().map(Segment::len).sum()
    }

    /// Elements currently stashed in the magazine depot's full magazines
    /// (snapshot; zero when the pool was built without
    /// [`handle_cache`](PoolBuilder::handle_cache), may briefly overstate
    /// while an exchange is in flight).
    pub fn depot_len(&self) -> usize {
        self.shared.depot.as_ref().map_or(0, Depot::stashed)
    }

    /// Current segment sizes (snapshot).
    pub fn segment_sizes(&self) -> Vec<usize> {
        self.shared.segments.iter().map(Segment::len).collect()
    }

    /// Distributes `count` items round-robin across the segments, producing
    /// each item with `make`. Intended for pre-run initialization (the
    /// paper's "pool initialized with only 320 elements"); accesses are not
    /// charged to any process. Consumers already parked in a
    /// [`Block`](crate::WaitStrategy::Block) remove are woken once.
    pub fn fill_evenly_with(&self, count: usize, mut make: impl FnMut(usize) -> S::Item) {
        let n = self.segments();
        for i in 0..count {
            self.shared.segments[i % n].add(make(i));
        }
        if count > 0 {
            self.shared.registry.notifier().notify_all();
        }
    }

    /// Closes the pool — see [`PoolOps::close`] for the semantics (sticky,
    /// idempotent; blocked and future removers drain the residue and then
    /// observe [`RemoveError::Closed`]).
    ///
    /// ```
    /// use cpool::prelude::*;
    ///
    /// let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(1).build();
    /// let mut h = pool.register();
    /// h.add(7);
    /// pool.close();
    /// assert_eq!(h.remove(WaitStrategy::Block), Ok(7), "residue drains first");
    /// assert_eq!(h.remove(WaitStrategy::Block), Err(RemoveError::Closed));
    /// ```
    pub fn close(&self) {
        self.shared.registry.notifier().close();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.registry.notifier().is_closed()
    }

    /// Registers a new process and returns its handle.
    ///
    /// The `i`-th registration gets process id `i` and home segment
    /// `i mod segments` (the paper runs exactly one process per segment;
    /// over-subscription shares segments round-robin).
    pub fn register(&self) -> Handle<S, P, T> {
        let (me, seg) = self.shared.registry.register(self.segments());
        let state = self.shared.policy.init_state(seg, self.segments(), self.shared.seed);
        let magazine = (self.shared.handle_cache > 0)
            .then(|| std::cell::RefCell::new(MagazineCache::new(self.shared.handle_cache)));
        Handle {
            shared: Arc::clone(&self.shared),
            me,
            seg,
            state,
            stats: ProcStats::default(),
            poll_slot: None,
            magazine,
        }
    }

    /// Statistics gathered from handles that have been dropped so far,
    /// ordered by process id.
    pub fn stats(&self) -> PoolStats {
        self.shared.registry.stats()
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> Pool<S, P, T>
where
    S::Item: Default,
{
    /// Distributes `count` default-valued items round-robin across segments.
    pub fn fill_evenly(&self, count: usize) {
        self.fill_evenly_with(count, |_| S::Item::default());
    }
}

/// A per-process handle to a [`Pool`].
///
/// Handles are `Send` but not `Sync`: exactly one thread drives a process.
/// Dropping the handle deregisters the process from the livelock gate and
/// deposits its statistics with the pool.
pub struct Handle<S: Segment, P: SearchPolicy, T: Timing = NullTiming> {
    shared: Arc<Shared<S, P, T>>,
    me: ProcId,
    seg: SegIdx,
    state: P::State,
    stats: ProcStats,
    /// Armed waker-registration ticket from [`poll_remove`](Self::poll_remove)
    /// (the handle-level poll API; [`RemoveFuture`] keeps its own slot).
    /// Cancelled on drop so a retired handle cannot leave a dangling
    /// registration holding the notifier's waiter count up.
    poll_slot: Option<u64>,
    /// The handle's private two-magazine cache, present when the pool was
    /// built with a non-zero `handle_cache` depth. In a `RefCell` because
    /// [`close`](Handle::close) takes `&self` but must flush the cache
    /// back through the pool.
    magazine: Option<std::cell::RefCell<MagazineCache<S::Item>>>,
}

impl<S: Segment, P: SearchPolicy, T: Timing> std::fmt::Debug for Handle<S, P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle")
            .field("proc", &self.me)
            .field("segment", &self.seg)
            .finish_non_exhaustive()
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> Handle<S, P, T> {
    /// This process's id.
    pub fn proc_id(&self) -> ProcId {
        self.me
    }

    /// This process's home segment.
    pub fn home_segment(&self) -> SegIdx {
        self.seg
    }

    /// Statistics accumulated by this process so far.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Current time for this process, per the pool's clock.
    pub fn now(&self) -> u64 {
        self.shared.timing.now(self.me)
    }

    /// Charges `ns` nanoseconds of application work to this process
    /// (meaningful under a virtual-time cost model; free otherwise).
    pub fn charge_work(&self, ns: u64) {
        self.shared.timing.charge_work(self.me, ns);
    }

    /// Elements currently cached in this handle's private magazines
    /// (zero when the pool was built without
    /// [`handle_cache`](PoolBuilder::handle_cache)).
    pub fn cached_len(&self) -> usize {
        self.magazine.as_ref().map_or(0, |m| m.borrow().len())
    }

    /// Closes the pool — see [`PoolOps::close`]. Any handle (or the
    /// [`Pool`] itself) may close; the transition is pool-wide.
    ///
    /// This handle's magazine cache is flushed back through the pool
    /// first, so blocked and async removers drain the cached residue
    /// before observing [`RemoveError::Closed`]. Other handles flush their
    /// own caches on their next operation or on drop.
    pub fn close(&self) {
        self.flush_magazine();
        self.shared.registry.notifier().close();
    }

    /// Publishes every element cached in this handle's magazines into the
    /// home segment and wakes parked waiters. No-op when the cache is
    /// absent or empty.
    fn flush_magazine(&self) {
        let Some(mag) = &self.magazine else { return };
        let mut mag = mag.borrow_mut();
        if mag.is_empty() {
            return;
        }
        let items = mag.take_all();
        drop(mag);
        self.shared.timing.charge(self.me, Resource::Segment(self.seg));
        self.shared.segments[self.seg.index()].add_bulk_vec(items);
        self.shared.registry.notifier().notify_all();
        self.record_trace(self.seg, TraceKind::Add);
    }

    /// Whether the pool has been [closed](Self::close).
    pub fn is_closed(&self) -> bool {
        self.shared.registry.notifier().is_closed()
    }

    /// Adds an element: to the local segment, or — when the hint extension
    /// is enabled and some process is searching — directly to that searcher
    /// (see [`hints`](crate::hints)), or — when the pool was built with
    /// [`handle_cache`](PoolBuilder::handle_cache) and nobody is waiting —
    /// into this handle's private magazine cache (see
    /// [`magazine`](crate::magazine)).
    ///
    /// After the element is published (segment lock released, or mailbox
    /// delivery done), the pool's notifier is signalled so consumers parked
    /// in a [`Block`](crate::WaitStrategy::Block) remove wake on the add
    /// edge instead of waiting out a backoff. The signal is one fence plus
    /// one load when nobody is parked.
    pub fn add(&mut self, item: S::Item) {
        let mut item = item;
        // Magazine fast path, before the timer even starts: a cached add is
        // a handful of thread-local instructions, and the timer's two clock
        // reads would dominate it (see `ProcStats::record_cached_add`).
        // Hint donation is skipped for cached adds — hint waiters are
        // *searching* (not parked) processes, and a fruitless search aborts
        // rather than blocks; parked/async waiters are what the check below
        // protects.
        if let (Some(depot), Some(mag)) = (&self.shared.depot, &self.magazine) {
            if self.shared.registry.notifier().waiters() > 0 {
                // Parked or async removers are waiting: a cached element
                // would be invisible to them, so publish the whole cache
                // and let this add take the ordinary visible path below.
                let mut mag = mag.borrow_mut();
                if !mag.is_empty() {
                    let items = mag.take_all();
                    drop(mag);
                    self.shared.timing.charge(self.me, Resource::Segment(self.seg));
                    self.shared.segments[self.seg.index()].add_bulk_vec(items);
                    self.stats.flush_on_wait += 1;
                }
            } else {
                match mag.borrow_mut().cache(item, depot) {
                    CacheOutcome::Cached => {
                        // The fast path: a thread-local push, no shared
                        // memory touched (the waiter check above is one
                        // load). Simulated cost models still see the
                        // configured per-op computation.
                        if self.shared.add_overhead_ns > 0 {
                            self.shared.timing.charge_work(self.me, self.shared.add_overhead_ns);
                        }
                        self.stats.record_cached_add();
                        return;
                    }
                    CacheOutcome::Exchanged => {
                        // A full magazine became pool-visible in the depot:
                        // signal it like any other publication.
                        if self.shared.add_overhead_ns > 0 {
                            self.shared.timing.charge_work(self.me, self.shared.add_overhead_ns);
                        }
                        self.stats.depot_exchanges += 1;
                        self.shared.registry.notifier().notify_all();
                        self.stats.record_cached_add();
                        return;
                    }
                    // Depot saturated: fall through to the shared path.
                    CacheOutcome::Full(back) => item = back,
                }
            }
        }
        let timer = OpTimer::start(&self.shared.timing, self.me, self.shared.add_overhead_ns);
        if let Some(board) = &self.shared.hints {
            if board.has_waiters() {
                // The board is a shared structure: charge the donation
                // before touching the mailbox (lock/charge discipline).
                self.shared.timing.charge(self.me, Resource::Shared(HINT_BOARD_RESOURCE));
                match board.try_donate(item) {
                    Ok(_receiver) => {
                        self.shared.registry.notifier().notify_all();
                        timer.finish_add(&mut self.stats, true);
                        return;
                    }
                    // Every waiter raced away; fall through to a local add.
                    Err(back) => item = back,
                }
            }
        }
        self.shared.timing.charge(self.me, Resource::Segment(self.seg));
        self.shared.segments[self.seg.index()].add(item);
        // Signal after releasing the segment lock: the element is already
        // visible to any woken searcher's probe.
        self.shared.registry.notifier().notify_all();
        timer.finish_add(&mut self.stats, false);
        self.record_trace(self.seg, TraceKind::Add);
    }

    /// Removes an arbitrary element: locally if possible, otherwise by
    /// stealing from a remote segment.
    ///
    /// # Errors
    ///
    /// Returns [`RemoveError::Aborted`] when the livelock breaker fired
    /// (every registered process was searching simultaneously) — or
    /// [`RemoveError::Closed`] when, additionally, the pool is
    /// [closed](Self::close) and drained.
    pub fn try_remove(&mut self) -> Result<S::Item, RemoveError> {
        self.try_remove_inner(self.shared.remove_overhead_ns, None)
    }

    /// `try_remove` with an explicit per-operation overhead charge (so the
    /// batched paths — which already paid the overhead for the whole batch
    /// — can fall back to a search without charging it twice) and an
    /// optional blocking-wait controller (threaded into the search by
    /// [`remove_bounded`](PoolOps::remove_bounded), which parks the search
    /// at lap boundaries instead of letting it poll).
    fn try_remove_inner(
        &mut self,
        overhead_ns: u64,
        wait: Option<&mut WaitCtl<'_>>,
    ) -> Result<S::Item, RemoveError> {
        // Serve from the private magazines first: a hit is a thread-local
        // pop, a refill claims one full magazine from the depot for this
        // and the next `cap - 1` removes.
        if let (Some(depot), Some(mag)) = (&self.shared.depot, &self.magazine) {
            let outcome = mag.borrow_mut().pop(depot);
            match outcome {
                // Clock-free like the cached add: the configured per-op
                // computation is still charged to simulated cost models,
                // but no wall-clock reads price the thread-local pop.
                PopOutcome::Hit(item) => {
                    if overhead_ns > 0 {
                        self.shared.timing.charge_work(self.me, overhead_ns);
                    }
                    self.stats.record_cached_remove();
                    return Ok(item);
                }
                PopOutcome::Refilled(item) => {
                    if overhead_ns > 0 {
                        self.shared.timing.charge_work(self.me, overhead_ns);
                    }
                    self.stats.depot_exchanges += 1;
                    self.stats.record_cached_remove();
                    return Ok(item);
                }
                PopOutcome::Miss => {}
            }
        }
        self.shared.remove_pass(
            self.me,
            self.seg,
            &mut self.state,
            &mut self.stats,
            false,
            overhead_ns,
            wait,
        )
    }

    fn record_trace(&self, seg: SegIdx, kind: TraceKind) {
        self.shared.record_trace(self.me, seg, kind);
    }

    /// Returns a future that resolves to a removed element, driving the
    /// same local-first search passes as [`remove`](PoolOps::remove) with
    /// [`WaitStrategy::Block`] — but pending instead of parked between
    /// passes, its waker registered on the pool's notifier. See
    /// [`future`](crate::future) for the protocol and executor helpers.
    ///
    /// The future searches from this handle's home segment but runs
    /// *detached*: it does not count as a searching process on the
    /// livelock gate (it cannot add, so §3.2's reasoning does not need
    /// it), and its per-search statistics stay private to the future. It
    /// resolves terminally with [`RemoveError::Closed`] once the pool is
    /// closed and drained, and with [`RemoveError::Aborted`] when the
    /// registered fleet proves the pool unreachable-empty (§3.2).
    pub fn remove_async(&self) -> RemoveFuture<S, P, T> {
        RemoveFuture::new(Arc::clone(&self.shared), self.me, self.seg, None)
    }

    /// [`remove_async`](Self::remove_async) with a deadline: the future
    /// resolves with [`RemoveError::Timeout`] if no element arrives within
    /// `timeout`.
    ///
    /// The deadline is checked inside `poll`, so an executor must re-poll
    /// for it to fire; the bundled [`exec`](crate::future::exec) drivers
    /// wake on a coarse tick while tasks are pending exactly for this
    /// (timer-wheel runtimes would instead race their own sleep against
    /// the plain [`remove_async`](Self::remove_async) future).
    pub fn remove_timeout_async(&self, timeout: Duration) -> RemoveFuture<S, P, T> {
        RemoveFuture::new(
            Arc::clone(&self.shared),
            self.me,
            self.seg,
            Some(Instant::now() + timeout),
        )
    }

    /// Polls for a removed element without constructing a future: the
    /// low-level form of [`remove_async`](Self::remove_async) for callers
    /// that embed the pool in a hand-written `Future::poll` (a server
    /// connection state machine, a custom executor). Runs search passes
    /// until an element or a terminal outcome arrives; on `Poll::Pending`
    /// a registration for `cx`'s waker stays armed on the pool's notifier
    /// and fires on the next add edge, close, or gate transition.
    ///
    /// Unlike the detached future, this polls *as* the registered process:
    /// passes count as searching on the livelock gate, participate in the
    /// hint board, and record into this handle's [`stats`](Self::stats),
    /// exactly like [`try_remove`](Self::try_remove).
    pub fn poll_remove(&mut self, cx: &mut Context<'_>) -> Poll<Result<S::Item, RemoveError>> {
        let shared = Arc::clone(&self.shared);
        let mut slot = self.poll_slot.take();
        if let Some(ticket) = slot.take() {
            // A re-poll may carry a different waker: retire the previous
            // registration so the current task is the one that wakes.
            shared.notifier().cancel_waker(ticket);
        }
        let mut overhead = shared.remove_overhead_ns;
        let mut ctl = WaitCtl::new_poll(shared.notifier(), None, cx.waker(), &mut slot);
        let out = crate::core::drive_poll_remove(
            &mut ctl,
            |ctl| self.try_remove_inner(std::mem::take(&mut overhead), Some(ctl)),
            || shared.drained(),
            || shared.notifier().is_closed(),
        );
        self.poll_slot = slot;
        out
    }
}

/// The unified operation vocabulary (blocking [`remove`](PoolOps::remove),
/// batch operations) — see [`ops`](crate::ops).
///
/// Batch paths take each segment lock once per batch: `add_batch` performs
/// one bulk insert into the local segment, `try_remove_batch` drains the
/// local segment under a single lock (falling back to one steal search when
/// it is empty), and `drain` sweeps every segment once. The cost model is
/// charged one probe per batch plus the per-element transfer work.
impl<S: Segment, P: SearchPolicy, T: Timing> PoolOps for Handle<S, P, T> {
    type Item = S::Item;
    type Batch = S::Batch;
    type RemoveFuture = RemoveFuture<S, P, T>;

    fn add(&mut self, item: S::Item) {
        Handle::add(self, item);
    }

    fn remove_async(&self) -> RemoveFuture<S, P, T> {
        Handle::remove_async(self)
    }

    fn remove_timeout_async(&self, timeout: Duration) -> RemoveFuture<S, P, T> {
        Handle::remove_timeout_async(self, timeout)
    }

    fn try_remove(&mut self) -> Result<S::Item, RemoveError> {
        Handle::try_remove(self)
    }

    fn is_drained(&self) -> bool {
        // Pool-visible stores plus this handle's own cache; other handles'
        // magazines are invisible by design (see `cpool::magazine`).
        self.shared.drained() && self.cached_len() == 0
    }

    fn close(&self) {
        Handle::close(self);
    }

    fn is_closed(&self) -> bool {
        Handle::is_closed(self)
    }

    fn remove_bounded(
        &mut self,
        wait: WaitStrategy,
        attempts: usize,
        deadline: Option<Instant>,
    ) -> Result<S::Item, RemoveError> {
        assert!(attempts > 0, "a blocking remove needs at least one attempt");
        // The controller and the driver's snapshots borrow from a local Arc
        // clone so the handle itself stays mutably borrowable for the
        // searches.
        let shared = Arc::clone(&self.shared);
        let mut ctl = WaitCtl::new(shared.registry.notifier(), wait, attempts, deadline);
        // The per-op overhead is paid by the first pass only; retry passes
        // must not charge it twice.
        let mut overhead = self.shared.remove_overhead_ns;
        crate::core::drive_blocking_remove(
            &mut ctl,
            |ctl| self.try_remove_inner(std::mem::take(&mut overhead), Some(ctl)),
            || shared.drained(),
            || shared.registry.notifier().is_closed(),
        )
    }

    fn add_batch<I: IntoIterator<Item = S::Item>>(&mut self, items: I) {
        // Materialize before starting the timer so an empty batch is a
        // true no-op: no overhead charge, no time attributed.
        let mut batch: Vec<S::Item> = items.into_iter().collect();
        let n = batch.len();
        if n == 0 {
            return;
        }
        let timer = OpTimer::start(&self.shared.timing, self.me, self.shared.add_overhead_ns);
        let mut donated = 0usize;
        if let Some(board) = &self.shared.hints {
            // With the hint extension on, searching processes are exactly
            // the ones a batch parked locally cannot feed — donate to them
            // first (same reasoning and charge as `add`), bulk-insert the
            // rest.
            let mut kept = Vec::with_capacity(batch.len());
            for item in batch {
                if board.has_waiters() {
                    self.shared.timing.charge(self.me, Resource::Shared(HINT_BOARD_RESOURCE));
                    match board.try_donate(item) {
                        Ok(_receiver) => donated += 1,
                        Err(back) => kept.push(back),
                    }
                } else {
                    kept.push(item);
                }
            }
            batch = kept;
        }
        if !batch.is_empty() {
            // One probe charge and one lock acquisition for the whole
            // batch — this is the amortization the batch API exists for.
            // The segment converts the vector to its native transfer
            // currency itself (block segments chunk it straight into
            // recycled blocks under the same lock).
            self.shared.timing.charge(self.me, Resource::Segment(self.seg));
            self.shared.segments[self.seg.index()].add_bulk_vec(batch);
            self.record_trace(self.seg, TraceKind::Add);
        }
        // One wakeup per batch (covering mailbox donations too): the
        // elements are published, so every woken waiter's next probe round
        // can find them.
        self.shared.registry.notifier().notify_all();
        timer.finish_add_batch(&mut self.stats, n, donated);
    }

    fn try_remove_batch(&mut self, n: usize) -> SmallDrain<S::Batch> {
        if n == 0 {
            return SmallDrain::new(S::Batch::empty());
        }
        let timer = OpTimer::start(&self.shared.timing, self.me, self.shared.remove_overhead_ns);
        self.shared.timing.charge(self.me, Resource::Segment(self.seg));
        let mut got = self.shared.segments[self.seg.index()].remove_up_to(n);
        if !got.is_empty() {
            timer.finish_remove_batch(&mut self.stats, got.len());
            self.record_trace(self.seg, TraceKind::Remove);
            return SmallDrain::new(got);
        }
        // Local segment empty: run one ordinary steal search for the first
        // element (its two-phase transfer already refills the local segment
        // with a batch), then top up locally under one more lock. The
        // search accounts itself through its own timer — with zero
        // overhead, since this batch already paid `remove_overhead_ns`.
        timer.finish_remove_batch(&mut self.stats, 0);
        if let Ok(first) = self.try_remove_inner(0, None) {
            if n > 1 {
                let top_up = OpTimer::start(&self.shared.timing, self.me, 0);
                self.shared.timing.charge(self.me, Resource::Segment(self.seg));
                let extra = self.shared.segments[self.seg.index()].remove_up_to(n - 1);
                top_up.finish_remove_batch(&mut self.stats, extra.len());
                got.append(extra);
            }
            // After the append, so the element rides the batch's existing
            // containers instead of minting a fresh one.
            got.put_one(first);
        }
        SmallDrain::new(got)
    }

    fn drain(&mut self) -> SmallDrain<S::Batch> {
        let timer = OpTimer::start(&self.shared.timing, self.me, self.shared.remove_overhead_ns);
        let mut all = S::Batch::empty();
        // Sweep this handle's own magazines and every depot magazine along
        // with the segments: drain is the "give me everything" lifecycle
        // op, so the cached layers are part of "everything". Other
        // handles' caches remain theirs.
        if let Some(mag) = &mut self.magazine {
            for item in mag.get_mut().take_all() {
                all.put_one(item);
            }
        }
        if let Some(depot) = &self.shared.depot {
            while let Some(mut mag) = depot.take_full() {
                let n = mag.len();
                for item in mag.drain(..) {
                    all.put_one(item);
                }
                depot.put_shell(mag);
                depot.unstash(n);
            }
        }
        for (i, seg) in self.shared.segments.iter().enumerate() {
            self.shared.timing.charge(self.me, Resource::Segment(SegIdx::new(i)));
            all.append(seg.drain_all());
        }
        timer.finish_remove_batch(&mut self.stats, all.len());
        SmallDrain::new(all)
    }
}

impl<S: Segment, P: SearchPolicy, T: Timing> Drop for Handle<S, P, T> {
    fn drop(&mut self) {
        if let Some(ticket) = self.poll_slot.take() {
            self.shared.notifier().cancel_waker(ticket);
        }
        // A retiring handle returns its cached elements to the pool — the
        // magazine layer must never leak elements with the handle.
        self.flush_magazine();
        self.shared.registry.retire(self.me, std::mem::take(&mut self.stats));
    }
}

/// The pool-side implementation of [`SearchEnv`]: adapts the policy's probe
/// requests to the shared engine's [`SearchSession`] (which performs the
/// two-phase steal, charges costs, and tracks search statistics) and layers
/// the hint-board interplay — and, for blocking removes, the lap-boundary
/// waiting of [`WaitCtl`] — on top of the engine's abort rule.
struct PoolSearchEnv<'a, 'w, 'n, S: Segment, P, T: Timing> {
    shared: &'a Shared<S, P, T>,
    session: SearchSession<'a, T>,
    /// The hint board when this search participates in it (`None` for
    /// detached future searches, whose [`ProcId`] aliases the creating
    /// handle's mailbox — see [`Shared::remove_pass`]).
    hints: Option<&'a HintBoard<S::Item>>,
    stolen: usize,
    taken: Option<S::Item>,
    victim: Option<SegIdx>,
    /// Present on blocking removes: what to do at each fruitless lap
    /// boundary (pause, park, give up) instead of polling straight through.
    wait: Option<&'w mut WaitCtl<'n>>,
}

impl<S: Segment, P: SearchPolicy, T: Timing> SearchEnv for PoolSearchEnv<'_, '_, '_, S, P, T> {
    fn segments(&self) -> usize {
        self.shared.segments.len()
    }

    fn my_segment(&self) -> SegIdx {
        self.session.home()
    }

    fn try_steal(&mut self, victim: SegIdx) -> ProbeOutcome {
        let segments = &self.shared.segments;
        let home = self.session.home();
        match self.session.probe(
            victim,
            || {
                let seg = &segments[victim.index()];
                // Emptiness fast path: the in-tree segments keep a lock-free
                // occupancy mirror, so a probe of an empty victim observes
                // it without contending for the victim's lock. The probe is
                // still charged and counted — examining a segment is the
                // cost the paper's model measures — and the mirror is a
                // snapshot, exactly like the length read `steal_half` would
                // have made under the lock a few instructions later.
                if seg.is_empty() {
                    S::Batch::empty()
                } else {
                    seg.steal_half()
                }
            },
            |rest| segments[home.index()].add_bulk(rest),
        ) {
            Some((item, stolen)) => {
                self.stolen = stolen;
                self.taken = Some(item);
                self.victim = Some(victim);
                ProbeOutcome::Stolen { stolen }
            }
            None => ProbeOutcome::Empty,
        }
    }

    fn charge_tree_node(&mut self, node: usize) {
        self.session.charge_tree_node(node);
    }

    fn should_abort(&mut self) -> bool {
        // A hint delivery ends the search through the same exit as the
        // livelock breaker; `Handle::try_remove` then tells the two cases
        // apart by checking the mailbox. The searcher only *posts* for
        // donations once a full lap found nothing: earlier posting would
        // siphon adds away from segments one element at a time and starve
        // the batch-steal mechanism the pool's load balancing relies on
        // (measurably worse: more probes, not fewer).
        if let Some(board) = self.hints {
            if board.delivered(self.session.proc()) {
                return true;
            }
            if self.session.examined() == self.session.lap() {
                board.post(self.session.proc());
            }
        }
        // The engine's full-lap starvation rule (§3.2); see
        // [`SearchSession::should_abort`].
        if self.session.should_abort() {
            return true;
        }
        // A closed pool ends fruitless searches at the first lap boundary
        // even when not everyone is searching (an idle registrant on a
        // closed pool is not a reason to keep polling); `abort_error` then
        // distinguishes drained (Closed) from residue (retryable Aborted).
        let notifier = self.shared.registry.notifier();
        if self.session.full_lap_done() && notifier.is_closed() {
            return true;
        }
        // Blocking removes wait at lap boundaries instead of polling on.
        if let Some(ctl) = self.wait.as_deref_mut() {
            let shared = self.shared;
            let hints = self.hints;
            let proc = self.session.proc();
            return ctl.on_probe(
                &self.session,
                // Work = any non-empty segment or a stashed depot magazine
                // (the next pass's raid will claim it).
                || !shared.drained(),
                || hints.is_some_and(|b| b.delivered(proc)),
            );
        }
        false
    }
}

/// A report combining merged and per-process statistics (convenience alias
/// used by the experiment harness).
pub type PoolReport = PoolStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WaitStrategy;
    use crate::search::{RandomSearch, TreeSearch};
    use crate::segment::{LockedCounter, VecSegment};
    use std::thread;

    fn counting_pool<P: SearchPolicy>(n: usize, policy: P) -> Pool<LockedCounter, P> {
        PoolBuilder::new(n).seed(1).build_with_policy(policy)
    }

    #[test]
    fn local_add_remove_roundtrip() {
        let pool = counting_pool(4, LinearSearch::new(4));
        let mut h = pool.register();
        h.add(());
        h.add(());
        assert_eq!(pool.segment_len(h.home_segment()), 2);
        assert!(h.try_remove().is_ok());
        assert!(h.try_remove().is_ok());
        assert_eq!(pool.total_len(), 0);
        assert_eq!(h.stats().adds, 2);
        assert_eq!(h.stats().removes, 2);
        assert_eq!(h.stats().steals, 0, "local removes never steal");
    }

    #[test]
    fn remove_from_empty_single_process_aborts() {
        let pool = counting_pool(4, LinearSearch::new(4));
        let mut h = pool.register();
        assert_eq!(h.try_remove(), Err(RemoveError::Aborted));
        assert_eq!(h.stats().aborted_removes, 1);
    }

    #[test]
    fn steal_moves_half_and_returns_one() {
        let pool = counting_pool(2, LinearSearch::new(2));
        let mut a = pool.register(); // home 0
        let mut b = pool.register(); // home 1
        for _ in 0..20 {
            b.add(());
        }
        // a's segment empty: it must steal ceil(20/2)=10, keep 1, deposit 9.
        assert!(a.try_remove().is_ok());
        assert_eq!(a.stats().steals, 1);
        assert_eq!(a.stats().elements_stolen, 10);
        assert_eq!(pool.segment_len(SegIdx::new(0)), 9);
        assert_eq!(pool.segment_len(SegIdx::new(1)), 10);
        // Next removes are local.
        assert!(a.try_remove().is_ok());
        assert_eq!(a.stats().steals, 1, "reserve made the next remove local");
    }

    #[test]
    fn conservation_under_concurrency() {
        // N threads each add K then remove K; the pool must end empty with
        // adds == removes globally, whatever interleaving and stealing did.
        let n = 8;
        let k = 500;
        let pool: Pool<LockedCounter, RandomSearch> = counting_pool(n, RandomSearch::new(n));
        thread::scope(|s| {
            for _ in 0..n {
                let mut h = pool.register();
                s.spawn(move || {
                    for _ in 0..k {
                        h.add(());
                    }
                    let mut removed = 0;
                    while removed < k {
                        match h.try_remove() {
                            Ok(()) => removed += 1,
                            Err(_) => thread::yield_now(),
                        }
                    }
                });
            }
        });
        assert_eq!(pool.total_len(), 0);
        let merged = pool.stats().merged();
        assert_eq!(merged.adds, (n * k) as u64);
        assert_eq!(merged.removes, (n * k) as u64);
    }

    #[test]
    fn all_policies_survive_producer_consumer() {
        for kind in PolicyKind::ALL {
            let policy = kind.build(4, NodeStoreKind::Locked);
            let pool: Pool<LockedCounter, _> = PoolBuilder::new(4).build_with_policy(policy);
            thread::scope(|s| {
                // One producer, three consumers; 300 elements flow through.
                let mut p = pool.register();
                s.spawn(move || {
                    for _ in 0..300 {
                        p.add(());
                    }
                });
                for _ in 0..3 {
                    let mut c = pool.register();
                    s.spawn(move || {
                        let mut got = 0;
                        while got < 100 {
                            match c.try_remove() {
                                Ok(()) => got += 1,
                                Err(_) => thread::yield_now(),
                            }
                        }
                    });
                }
            });
            assert_eq!(pool.total_len(), 0, "policy {kind}");
        }
    }

    #[test]
    fn element_pool_preserves_values() {
        let pool: Pool<VecSegment<u64>, TreeSearch> =
            PoolBuilder::new(4).build_with_policy(TreeSearch::new(4));
        pool.fill_evenly_with(100, |i| i as u64);
        let mut seen = [false; 100];
        let mut h = pool.register();
        let mut consumers: Vec<_> = (0..3).map(|_| pool.register()).collect();
        for _ in 0..25 {
            let v = h.try_remove().unwrap();
            seen[v as usize] = true;
        }
        for c in &mut consumers {
            for _ in 0..25 {
                let v = c.try_remove().unwrap();
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every value came out exactly once");
    }

    #[test]
    fn stats_collected_on_drop() {
        let pool = counting_pool(2, LinearSearch::new(2));
        {
            let mut h = pool.register();
            h.add(());
            let _ = h.try_remove();
        }
        let stats = pool.stats();
        assert_eq!(stats.per_proc.len(), 1);
        assert_eq!(stats.merged().adds, 1);
        assert_eq!(stats.merged().removes, 1);
    }

    #[test]
    fn trace_records_steal_events() {
        let pool: Pool<LockedCounter, LinearSearch> =
            PoolBuilder::new(2).record_trace(true).build_with_policy(LinearSearch::new(2));
        let mut a = pool.register();
        let mut b = pool.register();
        for _ in 0..10 {
            b.add(());
        }
        a.try_remove().unwrap();
        let trace = pool.trace().unwrap();
        let events = trace.snapshot_sorted();
        use crate::trace::TraceKind::*;
        assert!(events.iter().any(|e| e.kind == StealFrom && e.seg == SegIdx::new(1)));
        assert!(events.iter().any(|e| e.kind == StealInto && e.seg == SegIdx::new(0)));
    }

    #[test]
    fn oversubscribed_handles_share_segments() {
        let pool = counting_pool(2, LinearSearch::new(2));
        let handles: Vec<_> = (0..5).map(|_| pool.register()).collect();
        assert_eq!(handles[4].home_segment(), SegIdx::new(0));
        assert_eq!(handles[3].home_segment(), SegIdx::new(1));
        assert_eq!(pool.gate().registered(), 5);
        drop(handles);
        assert_eq!(pool.gate().registered(), 0);
    }

    #[test]
    fn fill_evenly_distributes() {
        let pool = counting_pool(4, LinearSearch::new(4));
        pool.fill_evenly(10);
        assert_eq!(pool.segment_sizes(), vec![3, 3, 2, 2]);
        assert_eq!(pool.total_len(), 10);
    }

    #[test]
    fn pool_debug_shows_policy() {
        let pool = counting_pool(4, LinearSearch::new(4));
        let dbg = format!("{pool:?}");
        assert!(dbg.contains("linear"), "{dbg}");
    }

    #[test]
    fn build_defaults_to_linear() {
        let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(4).build();
        assert_eq!(pool.policy_name(), "linear");
        assert_eq!(pool.segments(), 4);
    }

    #[test]
    fn build_policy_wires_segment_count() {
        for kind in PolicyKind::ALL {
            let pool: Pool<LockedCounter, DynPolicy> = PoolBuilder::new(6).build_policy(kind);
            assert_eq!(pool.policy_name(), kind.to_string());
            // The policy really was constructed for 6 segments: a steal
            // across the ring must find the remote elements.
            let mut a = pool.register();
            let mut b = pool.register();
            for _ in 0..8 {
                b.add(());
            }
            assert!(a.try_remove().is_ok(), "{kind}");
            assert_eq!(a.stats().steals, 1, "{kind}");
        }
    }

    #[test]
    fn add_batch_counts_every_element_once() {
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        let mut h = pool.register();
        h.add_batch([1, 2, 3, 4, 5]);
        assert_eq!(pool.segment_len(h.home_segment()), 5);
        assert_eq!(h.stats().adds, 5);
        assert_eq!(h.stats().add_hist.count(), 1, "one batch, one latency sample");
        h.add_batch(std::iter::empty());
        assert_eq!(h.stats().adds, 5, "empty batches are no-ops");
    }

    #[test]
    fn try_remove_batch_serves_locally_under_one_probe() {
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        let mut h = pool.register();
        h.add_batch(0..10);
        let examined_before = h.stats().segments_examined;
        let batch = h.try_remove_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(h.stats().removes, 4);
        assert_eq!(h.stats().segments_examined, examined_before, "no search ran");
        assert_eq!(pool.total_len(), 6);
        let rest = h.try_remove_batch(100);
        assert_eq!(rest.len(), 6, "bounded by occupancy");
        assert!(h.try_remove_batch(0).is_empty());
    }

    #[test]
    fn try_remove_batch_steals_when_local_is_empty() {
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        let mut thief = pool.register(); // home 0
        let mut victim = pool.register(); // home 1
        victim.add_batch(0..20);
        // The steal takes ceil(20/2) = 10; the batch asks for 6 of them.
        let batch = thief.try_remove_batch(6);
        assert_eq!(batch.len(), 6);
        assert_eq!(thief.stats().steals, 1);
        assert_eq!(thief.stats().elements_stolen, 10);
        assert_eq!(thief.stats().removes, 6);
        assert_eq!(pool.segment_len(SegIdx::new(0)), 4, "steal residue stays local");
        assert_eq!(pool.total_len(), 14);
    }

    #[test]
    fn try_remove_batch_on_empty_pool_returns_empty() {
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        let mut h = pool.register();
        let batch = h.try_remove_batch(5);
        assert!(batch.is_empty());
        assert_eq!(h.stats().aborted_removes, 1, "the fallback search aborted");
    }

    #[test]
    fn drain_sweeps_every_segment() {
        let pool: Pool<VecSegment<u64>, TreeSearch> =
            PoolBuilder::new(4).build_with_policy(TreeSearch::new(4));
        pool.fill_evenly_with(10, |i| i as u64);
        let mut h = pool.register();
        let mut all: Vec<u64> = h.drain().into_vec();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert_eq!(pool.total_len(), 0);
        assert_eq!(h.stats().removes, 10);
        assert!(h.drain().is_empty(), "second drain finds nothing");
    }

    #[test]
    fn blocking_remove_returns_elements_and_terminal_aborts() {
        let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(2).build();
        let mut h = pool.register();
        h.add(());
        assert_eq!(h.remove(WaitStrategy::Spin), Ok(()));
        // Drained pool, lone registrant: the abort is terminal and the
        // blocking remove must not spin its whole budget.
        assert_eq!(h.remove(WaitStrategy::Spin), Err(RemoveError::Aborted));
        assert_eq!(h.stats().aborted_removes, 1, "one attempt, not the full budget");
    }

    #[test]
    fn batch_ops_charge_op_overhead_once_per_batch() {
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Counts `charge_work` nanoseconds (the op-overhead channel).
        #[derive(Debug, Default)]
        struct WorkCounter {
            work_ns: AtomicU64,
        }
        impl Timing for WorkCounter {
            fn charge(&self, _proc: ProcId, _resource: Resource) {}
            fn charge_work(&self, _proc: ProcId, ns: u64) {
                self.work_ns.fetch_add(ns, Ordering::Relaxed);
            }
            fn now(&self, _proc: ProcId) -> u64 {
                0
            }
        }

        let pool: Pool<VecSegment<u32>, LinearSearch, WorkCounter> =
            PoolBuilder::new(2).timing(WorkCounter::default()).op_overhead(5, 7).build();
        let mut thief = pool.register();
        let mut victim = pool.register();

        victim.add_batch(0..10);
        assert_eq!(pool.timing().work_ns.load(Ordering::Relaxed), 5, "one add overhead per batch");

        // Thief's local segment is empty: the batch falls back to a steal
        // search, which must NOT charge the remove overhead a second time.
        let got = thief.try_remove_batch(4);
        assert_eq!(got.len(), 4);
        assert_eq!(
            pool.timing().work_ns.load(Ordering::Relaxed),
            5 + 7,
            "one remove overhead per batch, fallback search included"
        );

        // Empty batches are true no-ops: no overhead, no time attributed.
        thief.add_batch(std::iter::empty());
        assert_eq!(pool.timing().work_ns.load(Ordering::Relaxed), 5 + 7);
    }

    #[test]
    fn block_remove_wakes_on_the_add_edge() {
        // The consumer parks (no element, producer idle); the producer's
        // add must wake it. A lost wakeup hangs this test.
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        let total = 50;
        thread::scope(|s| {
            let mut producer = pool.register();
            let mut consumer = pool.register();
            s.spawn(move || {
                for i in 0..total {
                    // Let the consumer actually park between elements.
                    thread::sleep(std::time::Duration::from_micros(200));
                    producer.add(i);
                }
            });
            s.spawn(move || {
                for _ in 0..total {
                    consumer.remove(WaitStrategy::Block).expect("producer still registered");
                }
            });
        });
        assert_eq!(pool.total_len(), 0);
        assert_eq!(pool.stats().merged().removes, total as u64);
    }

    #[test]
    fn close_wakes_blocked_removers_with_closed() {
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        thread::scope(|s| {
            let mut producer = pool.register();
            let mut consumer = pool.register();
            s.spawn(move || {
                // Elements added before the close must all come out first.
                producer.add_batch([1, 2, 3]);
                producer.close();
            });
            s.spawn(move || {
                let mut got = 0;
                let err = loop {
                    match consumer.remove(WaitStrategy::Block) {
                        Ok(_) => got += 1,
                        Err(err) => break err,
                    }
                };
                assert_eq!(got, 3, "residue drained before Closed");
                assert_eq!(err, RemoveError::Closed);
            });
        });
        assert!(pool.is_closed());
    }

    #[test]
    fn remove_timeout_expires_on_a_quiet_live_pool() {
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        let mut consumer = pool.register();
        // A second registrant that never searches keeps the gate from
        // firing: without it the remove would be a terminal abort, not a
        // wait.
        let _idle = pool.register();
        let t0 = std::time::Instant::now();
        let err = consumer.remove_timeout(std::time::Duration::from_millis(20));
        assert_eq!(err, Err(RemoveError::Timeout));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));

        // The timeout left the pool fully usable.
        consumer.add(9);
        assert_eq!(consumer.try_remove(), Ok(9));
    }

    #[test]
    fn try_remove_on_closed_drained_pool_reports_closed() {
        let pool: Pool<VecSegment<u32>, LinearSearch> = PoolBuilder::new(2).build();
        let mut h = pool.register();
        h.add(5);
        pool.close();
        assert_eq!(h.try_remove(), Ok(5), "closed pools still drain");
        assert_eq!(h.try_remove(), Err(RemoveError::Closed));
        assert_eq!(
            h.remove(WaitStrategy::Block),
            Err(RemoveError::Closed),
            "blocking removers see Closed too"
        );
    }

    #[test]
    fn block_remove_takes_terminal_abort_when_everyone_waits() {
        // All registered processes block on an empty pool: the gate's
        // all-searching transition must wake the parked ones so at least
        // the transition's witness escapes; escaping consumers drop their
        // handles, which cascades the deregister edge to the rest. No
        // close() needed — this is the §3.2 terminal path, event-driven.
        let n = 4;
        let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(n).build();
        thread::scope(|s| {
            for _ in 0..n {
                let mut h = pool.register();
                s.spawn(move || {
                    assert_eq!(h.remove(WaitStrategy::Block), Err(RemoveError::Aborted));
                });
            }
        });
        assert_eq!(pool.gate().registered(), 0);
    }

    #[test]
    fn blocking_remove_outlasts_transient_droughts() {
        let pool: Pool<LockedCounter, LinearSearch> = PoolBuilder::new(2).build();
        let total = 200;
        thread::scope(|s| {
            let mut producer = pool.register();
            let mut consumer = pool.register();
            s.spawn(move || {
                for _ in 0..total {
                    producer.add(());
                    thread::yield_now();
                }
            });
            s.spawn(move || {
                for _ in 0..total {
                    // No hand-rolled abort loop: `remove` retries while the
                    // producer keeps the pool alive.
                    while consumer.remove(WaitStrategy::Yield).is_err() {}
                }
            });
        });
        assert_eq!(pool.total_len(), 0);
        assert_eq!(pool.stats().merged().removes, total);
    }
}
